"""Plan-cache benches: repeated-burst VPIC planning, cache on vs off.

The standalone report (``python benchmarks/perf_report.py``) is the CI
regression gate; these benches expose the same workload to
pytest-benchmark so the cached and uncached paths show up in the
comparison tables alongside the other engine benches.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_report import (  # noqa: E402
    DEFAULT_WORKLOAD,
    MIN_SPEEDUP,
    generate_report,
    run_plan_workload,
)

SMOKE_WORKLOAD = dict(DEFAULT_WORKLOAD, ranks=32, bursts=8)


@pytest.mark.parametrize("cached", [False, True], ids=["uncached", "cached"])
def test_plan_burst_throughput(benchmark, seed, cached) -> None:
    """Plan throughput over a repeated VPIC burst, one cache mode."""

    def run():
        return run_plan_workload(seed, enabled=cached, workload=SMOKE_WORKLOAD)

    metrics, _ = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info.update(metrics)
    if cached:
        assert metrics["plan_cache_hit_rate"] > 0.9


def test_plan_cache_speedup_and_exactness(benchmark) -> None:
    """The acceptance criterion: >= 5x cached-plan speedup on the
    repeated burst, with byte-identical schemas cache on/off."""

    report = benchmark.pedantic(
        generate_report, args=(SMOKE_WORKLOAD,), rounds=1, iterations=1
    )
    benchmark.extra_info["speedup"] = report["speedup"]
    benchmark.extra_info["cached_hit_rate"] = (
        report["cached"]["plan_cache_hit_rate"]
    )
    assert report["identical_schemas"]
    assert report["speedup"] >= MIN_SPEEDUP
