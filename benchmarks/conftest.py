"""Shared benchmark fixtures: the profiler seed and standard buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompressProfiler
from repro.datagen import synthetic_buffer
from repro.units import KiB


@pytest.fixture(scope="session")
def seed() -> SeedData:
    """One profiler seed shared by every bench."""
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


@pytest.fixture(scope="session")
def gamma_buffer() -> bytes:
    return synthetic_buffer(
        "float64", "gamma", 256 * KiB, np.random.default_rng(0)
    )


def table_to_extra_info(benchmark, table) -> None:
    """Attach an experiment table to the benchmark record and print it."""
    benchmark.extra_info["table"] = table.to_markdown()
    print()
    print(table.to_markdown())
