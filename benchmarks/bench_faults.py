"""Chaos bench: a VPIC-style checkpoint workload under fault injection.

The experiment the resilience layer exists for: the fault plan kills the
NVMe tier mid-run (recovering later), makes NVMe/burst-buffer/PFS devices
flaky, and corrupts burst-buffer reads. HC completes the workload with
every buffer byte-identical — riding on retry, write-failover,
degraded-mode planning, and checksum read-repair — while the no-retry
BASE and MTNC baselines die on their first transient error.
"""

from __future__ import annotations

from repro.faults import ChaosConfig, default_chaos_plan, run_chaos


def test_chaos_vpic_outage(benchmark, seed) -> None:
    config = ChaosConfig()
    plan = default_chaos_plan(config)

    outcomes = benchmark.pedantic(
        lambda: {
            backend: run_chaos(backend, plan=plan, config=config, seed=seed)
            for backend in ("HC", "BASE", "MTNC")
        },
        rounds=1,
        iterations=1,
    )
    print()
    for outcome in outcomes.values():
        print(outcome.summary())
    benchmark.extra_info["summaries"] = [
        o.summary() for o in outcomes.values()
    ]

    hc, base, mtnc = outcomes["HC"], outcomes["BASE"], outcomes["MTNC"]
    # HC survives the outage with every buffer intact...
    assert hc.all_data_intact
    assert hc.tasks_written == config.ranks * config.steps
    # ...and actually exercised the resilient paths to do it.
    assert hc.retries > 0
    assert hc.failovers + hc.replans + hc.degraded_plans > 0
    assert hc.read_repairs > 0 or hc.corruption_detected == 0
    # The baselines have no retry/failover/checksum story: first transient
    # error kills them.
    assert not base.all_data_intact
    assert not mtnc.all_data_intact
