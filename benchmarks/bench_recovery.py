"""Recovery bench: checkpoint and restore budgets at fig-7 burst scale.

A journaled engine absorbs a 64-rank VPIC burst (64 x 64 KiB particle
buffers, spills and journal commits included), then the bench pins the
durability round trip: `checkpoint()` must snapshot-and-compact, and
`HCompress.restore()` must rebuild a byte-identical engine from the
snapshot plus journal suffix, each within a wall-clock budget loose
enough for shared CI runners but tight enough to catch an accidental
O(catalog^2) regression.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import HCompress, HCompressConfig, RecoveryConfig, ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads.vpic import vpic_sample

RANKS = 64
TASK_BYTES = 64 * KiB

CHECKPOINT_BUDGET_S = 2.0
RESTORE_BUDGET_S = 10.0


def _journaled_engine(directory: str, seed) -> tuple[HCompress, dict[str, bytes]]:
    hierarchy = ares_hierarchy(8 * MiB, 64 * MiB, 1 * GiB, nodes=1)
    engine = HCompress(
        hierarchy,
        HCompressConfig(
            recovery=RecoveryConfig(enabled=True, directory=directory, fsync=False)
        ),
        seed=seed,
    )
    rng = np.random.default_rng(0)
    buffers = {
        f"fig7/r{rank}": vpic_sample(TASK_BYTES, rng) for rank in range(RANKS)
    }
    for task_id, data in buffers.items():
        engine.compress(data, task_id=task_id)
    return engine, buffers


def test_checkpoint_fig7_burst(benchmark, seed) -> None:
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as workdir:
        engine, _ = _journaled_engine(workdir, seed)

        path = benchmark.pedantic(engine.checkpoint, rounds=5, iterations=1)

        snapshot_bytes = Path(path).stat().st_size
        benchmark.extra_info["snapshot_bytes"] = snapshot_bytes
        benchmark.extra_info["tasks"] = RANKS
        print(f"\nsnapshot: {snapshot_bytes / KiB:.1f} KiB for {RANKS} tasks")
        assert path.name == "snapshot.json"
        assert benchmark.stats["max"] < CHECKPOINT_BUDGET_S
        engine.close()


def test_restore_fig7_burst(benchmark, seed) -> None:
    with tempfile.TemporaryDirectory(prefix="bench-restore-") as workdir:
        engine, buffers = _journaled_engine(workdir, seed)
        engine.checkpoint()
        # Half the burst lands after the snapshot: restore must replay it
        # from the journal suffix, not just load the snapshot.
        rng = np.random.default_rng(1)
        for rank in range(RANKS // 2):
            task_id = f"fig7/post/r{rank}"
            buffers[task_id] = vpic_sample(TASK_BYTES, rng)
            engine.compress(buffers[task_id], task_id=task_id)
        engine.journal.sync()
        hierarchy = engine.hierarchy

        restored = benchmark.pedantic(
            lambda: HCompress.restore(workdir, hierarchy, seed=seed),
            rounds=3,
            iterations=1,
        )

        report = restored.recovery_report
        benchmark.extra_info["records_replayed"] = report.records_replayed
        benchmark.extra_info["tasks"] = len(buffers)
        print(
            f"\nrestore: {len(buffers)} tasks, "
            f"{report.records_replayed} journal records replayed"
        )
        assert report.records_replayed == RANKS // 2
        assert not report.journal_truncated
        for task_id, data in buffers.items():
            assert restored.decompress(task_id).data == data
        assert benchmark.stats["max"] < RESTORE_BUDGET_S
        restored.close()
        engine.close()
