"""QoS overhead + latency bench: disabled must be free, admitted must be fast.

Two gates (docs/RESILIENCE.md):

* **Disabled is (near) free.** With ``QosConfig.enabled`` False — the
  default — the request path pays only ``qos is None`` / ``deadline is
  None`` identity checks. There is no pre-QoS code path left to A/B
  against, so the bench bounds it from above: an *enabled but idle*
  governor (huge backlog, no faults, brownout off) does strictly more
  work per call than the disabled path, and its measured overhead over
  the disabled engine on the fig-7-style compress burst must stay small.
  Whatever the disabled checks cost, it is less than that.

* **Admitted tasks stay fast under overload.** At 2x the drain rate with
  a flapping tier, every task the admission controller accepts either
  completes or fails typed — and the completed ones must be *quick*: the
  p99 of modeled service time (compress + I/O) stays within the per-task
  deadline budget. Load shedding is only worth its sheds if the survivors
  keep their latency.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro.core import HCompress, HCompressConfig
from repro.faults import OverloadConfig, run_overload
from repro.qos import QosConfig
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import vpic_sample

#: Idle-enabled overhead gate; the disabled path does strictly less.
MAX_IDLE_ENABLED_OVERHEAD = 0.30

BURSTS = 3
RANKS = 32


def _burst_seconds(seed, qos: QosConfig) -> float:
    """One fig-7-style repeated burst (32 ranks x 3 steps, 8 MiB modeled
    tasks); returns wall seconds for the compress loop."""
    engine = HCompress(
        ares_hierarchy(64 * MiB, 128 * MiB, 4 * GiB, nodes=2),
        HCompressConfig(qos=qos),
        seed=seed,
    )
    data = vpic_sample(64 * KiB, np.random.default_rng(0))
    wall = time.perf_counter()
    for step in range(BURSTS):
        for rank in range(RANKS):
            engine.compress(
                data, modeled_size=8 * MiB, task_id=f"qos.{step}.{rank}"
            )
    return time.perf_counter() - wall


def _median_burst(seed, qos: QosConfig, rounds: int = 5) -> float:
    return statistics.median(_burst_seconds(seed, qos) for _ in range(rounds))


def _idle_qos() -> QosConfig:
    """Enabled governor that never interferes: the backlog bound dwarfs
    the burst, nothing flaps, the ladder is off."""
    return QosConfig(
        enabled=True,
        max_backlog_bytes=1 << 50,
        drain_bytes_per_s=1e12,
        brownout_enabled=False,
    )


def test_disabled_overhead_is_negligible(benchmark, seed) -> None:
    """Idle-enabled vs disabled on the compress burst — an upper bound on
    what the disabled identity checks can possibly cost."""
    idle = _median_burst(seed, _idle_qos())
    disabled = benchmark.pedantic(
        lambda: _median_burst(seed, QosConfig()),
        rounds=1, iterations=1,
    )
    overhead = idle / disabled - 1.0
    benchmark.extra_info.update(
        {
            "disabled_seconds": round(disabled, 6),
            "idle_enabled_seconds": round(idle, 6),
            "idle_enabled_overhead": round(overhead, 4),
        }
    )
    assert overhead < MAX_IDLE_ENABLED_OVERHEAD, (
        f"an idle QoS governor costs {overhead:.1%} on the compress burst "
        f"(gate: <{MAX_IDLE_ENABLED_OVERHEAD:.0%}); the disabled path "
        f"must be cheaper still"
    )


def test_disabled_engine_has_no_governor(seed) -> None:
    engine = HCompress(
        ares_hierarchy(64 * MiB, 128 * MiB, 4 * GiB, nodes=2), seed=seed
    )
    assert engine.qos is None


def test_p99_latency_budget_under_2x_load(benchmark, seed) -> None:
    """2x offered load + flapping tier: admitted-and-completed tasks keep
    their modeled p99 within the per-task deadline budget."""
    config = OverloadConfig(tasks=64, load_factor=2.0, deadline=8.0)
    outcome = benchmark.pedantic(
        lambda: run_overload(config, seed=seed), rounds=1, iterations=1
    )
    assert outcome.holds, outcome.summary()
    assert outcome.completed >= 16, outcome.summary()
    ordered = sorted(outcome.latencies)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    benchmark.extra_info.update(
        {
            "completed": outcome.completed,
            "shed": outcome.shed,
            "p50_modeled_s": round(ordered[len(ordered) // 2], 6),
            "p99_modeled_s": round(p99, 6),
            "deadline_s": config.deadline,
        }
    )
    assert p99 <= config.deadline, (
        f"p99 modeled latency {p99:.3f}s blew the {config.deadline}s "
        f"deadline budget — shedding is not protecting the survivors"
    )
