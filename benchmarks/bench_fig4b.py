"""Fig. 4(b) regeneration bench: cost-predictor accuracy + feedback rate.

Paper claim: ~95.5% model accuracy across all four data distributions with
the feedback engine ingesting ~20K events/s (native); accuracy is the
comparable number, the rate differs by the language constant.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig4b

from conftest import table_to_extra_info


def test_fig4b_predictor(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig4b(
            tasks_per_distribution=4000, seed=seed,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    accuracies = table.column("accuracy_r2")
    assert len(accuracies) == 4
    assert min(accuracies) > 0.85  # paper: ~95.5%
    rates = table.column("events_per_s")
    # Throughput flat across distributions. This is a wall-clock rate of
    # the Python feedback path, so the bound is generous (same order of
    # magnitude) to stay robust on loaded machines; the paper's flatness
    # claim is about the *distribution* axis, which this still checks.
    assert max(rates) / min(rates) < 4.0
