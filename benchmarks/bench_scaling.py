"""Scaling sweep (the paper's stated future work: "larger-scale
supercomputers").

Holds per-node data constant and sweeps the compute-node count: node-local
tiers scale with the machine while the shared burst buffer and PFS do not,
so HCompress's advantage over Hermes should *grow* with scale — the
weak-scaling projection of Fig. 7.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HCompress, HCompressConfig
from repro.experiments.fig7_vpic import WRITE_PRIORITY
from repro.hermes import HermesBuffering
from repro.tiers import ares_hierarchy
from repro.units import GB, MiB
from repro.workloads import (
    HCompressBackend,
    HermesBackend,
    VpicConfig,
    run_vpic,
)

# Per-node budgets at bench scale (1/64 of the paper's Fig. 7 figures).
_RAM_PER_NODE = 12_500_000_000 // 64
_NVME_PER_NODE = 25 * GB // 64
_BB_TOTAL = 2_000 * GB // 64
_RANKS_PER_NODE = 40  # 2560 ranks / 64 nodes


def _run(nodes: int, backend_name: str, seed) -> tuple[float, float]:
    hierarchy = ares_hierarchy(
        ram_capacity=_RAM_PER_NODE * nodes,
        nvme_capacity=_NVME_PER_NODE * nodes,
        bb_capacity=_BB_TOTAL,
        nodes=nodes,
    )
    config = VpicConfig(
        nprocs=_RANKS_PER_NODE * nodes,
        timesteps=10,
        bytes_per_rank_per_step=4 * MiB,
        compute_seconds=60.0 / 64,
    )
    if backend_name == "HC":
        engine = HCompress(
            hierarchy, HCompressConfig(priority=WRITE_PRIORITY), seed=seed
        )
        backend = HCompressBackend(engine)
    else:
        backend = HermesBackend(HermesBuffering(hierarchy))
    result = run_vpic(
        backend, config, hierarchy, rng=np.random.default_rng(0)
    )
    return result.io_seconds, result.achieved_ratio


@pytest.mark.parametrize("nodes", [16, 64, 128])
def test_weak_scaling_hc_vs_hermes(benchmark, seed, nodes) -> None:
    def sweep() -> dict:
        hermes_io, _ = _run(nodes, "MTNC", seed)
        hc_io, hc_ratio = _run(nodes, "HC", seed)
        return {
            "nodes": nodes,
            "hermes_io_s": hermes_io,
            "hc_io_s": hc_io,
            "hc_ratio": hc_ratio,
            "hc_over_hermes": hermes_io / hc_io if hc_io else float("inf"),
        }

    info = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update(info)
    # HCompress never loses to Hermes, at any machine size.
    assert info["hc_io_s"] <= info["hermes_io_s"] * 1.05
