"""Micro-benchmarks of the engine's hot paths (not figure regenerations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor, ObservationKey
from repro.codecs import CompressionLibraryPool
from repro.datagen import synthetic_buffer
from repro.hcdp import HcdpEngine, IOTask, PlanCacheConfig
from repro.monitor import SystemMonitor
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB


@pytest.fixture()
def planning_stack(seed):
    def build(cache_enabled: bool = True):
        predictor = CompressionCostPredictor()
        predictor.fit_seed(seed.observations)
        hierarchy = ares_hierarchy(64 * MiB, 128 * MiB, 1 * GiB, nodes=4)
        engine = HcdpEngine(
            predictor, SystemMonitor(hierarchy), CompressionLibraryPool(),
            plan_cache=PlanCacheConfig(enabled=cache_enabled),
        )
        sample = synthetic_buffer(
            "float64", "gamma", 64 * KiB, np.random.default_rng(0)
        )
        analysis = InputAnalyzer().analyze(sample)
        return engine, analysis

    return build


@pytest.mark.parametrize("cached", [False, True], ids=["uncached", "cached"])
def test_plan_single_tier_task(benchmark, planning_stack, cached) -> None:
    engine, analysis = planning_stack(cached)
    counter = iter(range(10**9))
    task_rates: list[float] = []

    def plan():
        schema = engine.plan(IOTask(f"b{next(counter)}", 1 * MiB, analysis))
        lookups = schema.memo_hits + schema.memo_misses
        task_rates.append(schema.memo_hits / lookups if lookups else 1.0)
        return schema

    schema = benchmark(plan)
    assert len(schema.pieces) >= 1
    benchmark.extra_info["plan_cache"] = cached
    benchmark.extra_info["per_task_memo_hit_rate"] = round(
        float(np.mean(task_rates)), 4
    )
    benchmark.extra_info["plan_cache_hit_rate"] = round(
        engine.stats.plan_cache_hit_rate, 4
    )


def test_candidate_table(benchmark, planning_stack) -> None:
    """The batched ECC table build (uncached path) for one feature key."""
    engine, _ = planning_stack(True)
    codec_names = engine.pool.names[1:]

    def table():
        engine.predictor._cache.clear()
        engine.predictor._table_cache.clear()
        return engine.predictor.candidate_table(
            "float64", "binary", "gamma", 1 * MiB, codec_names
        )

    eccs = benchmark(table)
    assert len(eccs) == len(codec_names)


def test_predict_ecc(benchmark, planning_stack) -> None:
    engine, _ = planning_stack(True)
    key = ObservationKey("float64", "binary", "gamma", "zlib", 1 * MiB)

    def predict():
        engine.predictor._cache.clear()  # measure the uncached path
        return engine.predictor.predict(key)

    ecc = benchmark(predict)
    assert ecc.ratio > 0


def test_analyze_buffer(benchmark) -> None:
    analyzer = InputAnalyzer(cache_size=0)
    data = synthetic_buffer(
        "float64", "normal", 1 * MiB, np.random.default_rng(0)
    )
    analysis = benchmark(analyzer.analyze, data)
    assert analysis.dtype.value == "float64"


def test_monitor_sample(benchmark) -> None:
    hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 4 * MiB, nodes=4)
    monitor = SystemMonitor(hierarchy)
    status = benchmark(monitor.sample)
    assert len(status.tiers) == 4
