"""Integrity-overhead bench: the fig-7 burst with scrubbing fully armed.

Drives the fig-7-shaped VPIC checkpoint burst twice over one shared
profiler seed — once with the integrity subsystem absent (the baseline)
and once fully armed: content digests recorded per piece, every decode
digest-verified, and the background scrubber stepped throughout the
burst (``force=True``, so rate-limiting never hides the cost). Each
round writes the burst, steps the scrubber every ``scrub_every`` tasks,
and reads a sample back, so the measurement window pays the digest at
write time, the verify at read time, and the scrub re-reads — the whole
foreground bill of docs/INTEGRITY.md.

The acceptance gate (ISSUE 10) is the wall-clock ratio armed/off on the
same machine — rounds interleaved, trimmed total wall per mode — and it
must stay within **1.15x**. The committed ``BENCH_scrub.json`` baseline
additionally gates CI against creeping regression of the measured
overhead.

Usage::

    python benchmarks/bench_scrub.py --output BENCH_scrub.json
    python benchmarks/bench_scrub.py --check BENCH_scrub.json \
        --tolerance 0.3   # also fail if overhead grew > 30% vs committed
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompress, HCompressProfiler
from repro.core.config import HCompressConfig, ScrubConfig
from repro.tiers import ares_hierarchy
from repro.units import KiB, MiB, TiB
from repro.workloads import vpic_sample
from repro.workloads.vpic import VPIC_HINTS

__all__ = [
    "DEFAULT_WORKLOAD",
    "MAX_OVERHEAD",
    "check_report",
    "generate_report",
    "run_burst",
]

#: Fig-7 burst, sized so three rounds per mode finish in CI seconds.
#: Tasks are *real* (no representative-sample modeled scaling): the
#: scrubber verifies payload-bearing extents, and modeled-only pieces
#: would leave it nothing to re-read. ``read_every`` reads one task back
#: per N writes inside the window (decode-side verify); ``scrub_every``
#: steps the armed scrubber.
DEFAULT_WORKLOAD = {
    "warmup": 256,
    "tasks": 2048,
    "rounds": 7,
    "sample_kib": 64,
    "read_every": 8,
    "scrub_every": 64,
}

#: The ISSUE 10 acceptance criterion: fully-armed foreground overhead.
MAX_OVERHEAD = 1.15

#: Everything on — digests at write, verify at decode, daemon armed with
#: a deployment-shaped re-read budget (the default 8 MiB/step would let
#: the *background* walk dominate a foreground wall-clock measurement;
#: the budget knob exists precisely to bound that interference).
ARMED = ScrubConfig(
    enabled=True, content_digests=True, verify_reads=True,
    scan_interval=0.0, bytes_per_step=64 * KiB,
)


def _bench_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def _build(seed: SeedData, armed: bool) -> HCompress:
    # Upper tiers sized far beyond the burst: capacity pressure would
    # make the modes diverge for non-integrity reasons (the armed mode's
    # scrub steps advance the modeled clock, which drains the flusher).
    hierarchy = ares_hierarchy(512 * MiB, 1024 * MiB, 1 * TiB, nodes=2)
    config = replace(
        HCompressConfig(scrub=ARMED if armed else ScrubConfig()),
        feedback_every_n=10**6,
    )
    return HCompress(hierarchy, config, seed=seed)


def _items(workload: dict, count: int, tag: str) -> list[dict]:
    sample = vpic_sample(
        workload["sample_kib"] * KiB, np.random.default_rng(0)
    )
    return [
        {
            "data": sample,
            "hints": VPIC_HINTS,
            "task_id": f"{tag}.{i}",
        }
        for i in range(count)
    ]


def run_burst(seed: SeedData, armed: bool, workload: dict, r: int) -> tuple[float, int]:
    """One round of one mode: wall clock over the write+read burst."""
    engine = _build(seed, armed)
    for item in _items(workload, workload["warmup"], "warm"):
        engine.compress(**item)
    burst = _items(workload, workload["tasks"], f"burst{r}")
    # GC pauses land at arbitrary points and are the dominant noise in a
    # ~300 ms window; collect up front, then keep the collector out of
    # the measured region (both modes allocate alike, so this biases
    # neither).
    gc.collect()
    gc.disable()
    start = time.perf_counter()
    for index, item in enumerate(burst):
        engine.compress(**item)
        if index % workload["read_every"] == 0:
            engine.decompress(item["task_id"])
        if armed and index % workload["scrub_every"] == 0:
            engine.scrub.step(force=True)
    wall = time.perf_counter() - start
    gc.enable()
    pieces_scanned = 0
    if armed:
        # The armed run must have actually verified data at rest — an
        # idle scrubber would make the ratio a trivial lie — and a
        # clean store must stay clean.
        stats = engine.scrub.stats
        assert stats.pieces_scanned > 0
        assert stats.corruptions == 0
        pieces_scanned = stats.pieces_scanned
    engine.close()
    # Reference cycles keep each round's engine (and its tier payloads)
    # alive; without an explicit collection the process balloons by
    # ~150 MiB per round and allocator churn wrecks later rounds' walls.
    del engine, burst
    gc.collect()
    return wall, pieces_scanned


def _mode_record(mode: str, walls: list[float], workload: dict) -> dict:
    wall = min(walls)
    tasks = workload["tasks"]
    return {
        "mode": mode,
        "tasks": tasks,
        "rounds": workload["rounds"],
        "wall_seconds": round(wall, 6),
        "us_per_task": round(wall / tasks * 1e6, 2),
        "tasks_per_second": round(tasks / wall, 1),
    }


def generate_report(workload: dict | None = None) -> dict:
    """Run both modes round-robin and build the overhead report.

    Rounds are interleaved (off, armed, off, armed, ...) so both modes
    sample the same machine conditions; best-of-rounds per mode then
    cancels shared-runner noise out of the ratio.
    """
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    seed = _bench_seed()
    off_walls, armed_walls = [], []
    pieces_scanned = 0
    # Round -1 is an unrecorded process warmup: the very first burst
    # pays import/codec/allocator warmup (~2x) that neither mode should
    # inherit.
    for r in range(-1, workload["rounds"]):
        wall, _ = run_burst(seed, armed=False, workload=workload, r=r)
        if r >= 0:
            off_walls.append(wall)
        wall, scanned = run_burst(seed, armed=True, workload=workload, r=r)
        if r >= 0:
            armed_walls.append(wall)
            pieces_scanned = max(pieces_scanned, scanned)
    off = _mode_record("off", off_walls, workload)
    armed = _mode_record("armed", armed_walls, workload)
    armed["pieces_scanned"] = pieces_scanned
    # The gate is the ratio of per-mode *trimmed* totals: scheduler
    # noise on a shared runner is one-sided (a preempted round is only
    # ever slower), so each mode drops its slowest rounds and sums the
    # rest — spikes can land on either mode without electing the
    # estimator (per-round ratios are kept in the report for
    # diagnostics).
    ratios = sorted(a / o for a, o in zip(armed_walls, off_walls))
    keep = max(1, workload["rounds"] - 2)
    overhead = sum(sorted(armed_walls)[:keep]) / sum(sorted(off_walls)[:keep])
    return {
        "benchmark": "scrub_foreground_overhead",
        "workload": workload,
        "runs": {"off": off, "armed": armed},
        "round_ratios": [round(r, 4) for r in ratios],
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
    }


def check_report(
    report: dict, baseline: dict | None, tolerance: float
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    overhead = float(report["overhead"])
    if overhead > MAX_OVERHEAD:
        errors.append(
            f"armed overhead {overhead:.3f}x exceeds the "
            f"{MAX_OVERHEAD:.2f}x acceptance ceiling"
        )
    if baseline is not None:
        committed = float(baseline["overhead"])
        ceiling = committed * (1.0 + tolerance)
        if overhead > ceiling:
            errors.append(
                f"overhead regressed: {overhead:.3f}x vs committed "
                f"{committed:.3f}x (ceiling {ceiling:.3f}x at tolerance "
                f"{tolerance:.0%})"
            )
    return errors


# -- pytest-benchmark wrappers ------------------------------------------------


def test_scrub_overhead_gate(benchmark) -> None:
    """The ISSUE 10 gate: fully-armed burst within 1.15x of scrub-off."""
    report = benchmark.pedantic(generate_report, rounds=1, iterations=1)
    benchmark.extra_info["overhead"] = report["overhead"]
    assert check_report(report, None, 0.3) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_scrub.json)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to gate against (fails on >tolerance regression)",
    )
    parser.add_argument("--tolerance", type=float, default=0.3)
    parser.add_argument(
        "--tasks", type=int, default=DEFAULT_WORKLOAD["tasks"]
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_WORKLOAD["rounds"]
    )
    args = parser.parse_args(argv)

    workload = dict(DEFAULT_WORKLOAD, tasks=args.tasks, rounds=args.rounds)
    report = generate_report(workload)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
