"""Scale-out throughput bench: modeled makespan, 1 vs 4 vs 8 shards.

Drives the same multi-tenant burst through :class:`ShardedHCompress`
deployments of 1, 4, and 8 shards. Each deployment scales its hardware
with the shard count (``nodes`` grows linearly, so every shard's
``split_tier_specs`` slice matches the single-engine budget — scale-out
means adding servers, not slicing one server thinner) and the metric is
the **modeled makespan**: the max over shards of accumulated modeled
service seconds (compress + I/O). Consistent hashing spreads the
tenants, so the makespan shrinks with the shard count up to the ring's
imbalance — the committed floor is >= 3x at 8 shards.

The ratio is machine-independent (modeled seconds, not wall clock), so
the committed baseline in ``BENCH_shard.json`` gates CI on any runner.

Usage::

    python benchmarks/bench_shard.py --output BENCH_shard.json
    python benchmarks/bench_shard.py --check BENCH_shard.json \
        --tolerance 0.3   # fail if 8-shard scaling regressed > 30%
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompressConfig, HCompressProfiler
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import ares_specs
from repro.units import KiB, MiB
from repro.workloads import vpic_sample

__all__ = [
    "DEFAULT_WORKLOAD",
    "MIN_SCALING",
    "SHARD_COUNTS",
    "check_report",
    "generate_report",
    "run_shard_workload",
]

#: Multi-tenant burst: enough tenants that the ring spreads them well
#: (128 tenants over 8 shards lands within ~2x of perfect balance).
DEFAULT_WORKLOAD = {
    "tasks": 256,
    "tenants": 128,
    "sample_kib": 64,
    "modeled_mib": 4,
}

SHARD_COUNTS = (1, 4, 8)

#: Acceptance floor (ISSUE 6): modeled throughput at 8 shards must be at
#: least this multiple of the single-shard deployment's.
MIN_SCALING = 3.0

#: Compute nodes per shard; the deployment passes ``nodes * shards`` so
#: each shard's slice of the node-local tiers matches the base budget.
BASE_NODES = 4


def _bench_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def run_shard_workload(
    seed: SeedData, shards: int, workload: dict
) -> dict:
    """One deployment, one burst; returns the per-deployment metrics."""
    tasks = workload["tasks"]
    tenants = workload["tenants"]
    modeled = workload["modeled_mib"] * MiB
    total = tasks * modeled
    # Capacity 4x the burst keeps even the hottest shard's slice roomy,
    # so placement (and thus per-task modeled time) stays comparable
    # across deployments.
    specs = ares_specs(
        4 * total, 4 * total, 4 * total, nodes=BASE_NODES * shards
    )
    sharded = ShardedHCompress(
        specs, HCompressConfig(), ShardConfig(shards=shards), seed=seed
    )
    sample = vpic_sample(
        workload["sample_kib"] * KiB, np.random.default_rng(0)
    )
    wall = time.perf_counter()
    for index in range(tasks):
        sharded.compress(
            sample,
            modeled_size=modeled,
            task_id=f"bench/t{index}",
            tenant=f"tenant-{index % tenants}",
        )
    wall = time.perf_counter() - wall
    busy = dict(sharded.busy_seconds)
    tasks_by_shard = sharded.task_count_by_shard()
    sharded.close()
    makespan = max(busy.values())
    return {
        "shards": shards,
        "tasks": tasks,
        "modeled_bytes": total,
        "wall_seconds": round(wall, 6),
        "makespan_seconds": round(makespan, 6),
        "modeled_mib_per_second": (
            round(total / MiB / makespan, 1) if makespan else None
        ),
        "busy_by_shard": {
            str(shard_id): round(seconds, 6)
            for shard_id, seconds in sorted(busy.items())
        },
        "tasks_by_shard": {
            str(shard_id): count
            for shard_id, count in sorted(tasks_by_shard.items())
        },
    }


def generate_report(workload: dict | None = None) -> dict:
    """Run the burst at every shard count and build the scaling report."""
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    seed = _bench_seed()
    runs = {
        shards: run_shard_workload(seed, shards, workload)
        for shards in SHARD_COUNTS
    }
    base = runs[SHARD_COUNTS[0]]["makespan_seconds"]
    scaling = {
        str(shards): (
            round(base / run["makespan_seconds"], 2)
            if run["makespan_seconds"]
            else None
        )
        for shards, run in runs.items()
    }
    return {
        "benchmark": "shard_scaleout_burst",
        "workload": workload,
        "runs": {str(shards): run for shards, run in runs.items()},
        "scaling": scaling,
        "min_scaling_at_8": MIN_SCALING,
    }


def check_report(
    report: dict, baseline: dict | None, tolerance: float
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    scaling8 = float(report["scaling"].get("8") or 0.0)
    if scaling8 < MIN_SCALING:
        errors.append(
            f"8-shard scaling {scaling8:.2f}x below the "
            f"{MIN_SCALING:.0f}x acceptance floor"
        )
    if baseline is not None:
        base = float(baseline["scaling"].get("8") or 0.0)
        floor = base * (1.0 - tolerance)
        if scaling8 < floor:
            errors.append(
                f"8-shard scaling regressed: {scaling8:.2f}x vs baseline "
                f"{base:.2f}x (floor {floor:.2f}x at tolerance "
                f"{tolerance:.0%})"
            )
    return errors


# -- pytest-benchmark wrappers ------------------------------------------------

SMOKE_WORKLOAD = dict(DEFAULT_WORKLOAD, tasks=128)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_shard_burst_throughput(benchmark, seed, shards) -> None:
    """Wall-clock burst throughput of one deployment size."""
    run = benchmark.pedantic(
        run_shard_workload,
        args=(seed, shards, SMOKE_WORKLOAD),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: run[k] for k in ("makespan_seconds", "modeled_mib_per_second")}
    )
    assert run["tasks"] == sum(run["tasks_by_shard"].values())


def test_shard_scaling_floor(benchmark) -> None:
    """The acceptance criterion: >= 3x modeled throughput at 8 shards."""
    report = benchmark.pedantic(
        generate_report, args=(SMOKE_WORKLOAD,), rounds=1, iterations=1
    )
    benchmark.extra_info["scaling"] = report["scaling"]
    assert float(report["scaling"]["8"]) >= MIN_SCALING
    assert float(report["scaling"]["4"]) > 1.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_shard.json)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to gate against (fails on >tolerance regression)",
    )
    parser.add_argument("--tolerance", type=float, default=0.3)
    parser.add_argument(
        "--tasks", type=int, default=DEFAULT_WORKLOAD["tasks"]
    )
    parser.add_argument(
        "--tenants", type=int, default=DEFAULT_WORKLOAD["tenants"]
    )
    args = parser.parse_args(argv)

    workload = dict(
        DEFAULT_WORKLOAD, tasks=args.tasks, tenants=args.tenants
    )
    report = generate_report(workload)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
