"""Fig. 3 regeneration bench: anatomy of HCompress operations.

Paper claim: ~98% of both paths is I/O + (de)compression; engine overheads
(HCDP, library selection, feedback, metadata parsing) stay ~2% combined.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig3

from conftest import table_to_extra_info


def test_fig3_anatomy(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig3(n_tasks=1000, seed=seed,
                         rng=np.random.default_rng(0)),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rows = {(r["path"], r["component"]): r["fraction"]
            for r in table.row_dicts()}
    write_overhead = (
        rows[("write", "hcdp_engine")]
        + rows[("write", "library_selection")]
        + rows[("write", "feedback")]
    )
    assert write_overhead < 0.05  # paper: ~2%
    assert rows[("write", "compression")] + rows[("write", "write")] > 0.9
