"""Observability overhead bench: the disabled path must stay free.

The contract (docs/OBSERVABILITY.md): with ``ObservabilityConfig.enabled``
False — the default — every instrumented hot path pays exactly one
``obs is None`` identity check. This bench measures that cost directly by
A/B-ing the public wrapper (``HcdpEngine.plan``, instrumentation check
included) against the private implementation (``HcdpEngine._plan``, the
pre-instrumentation code path) over the repeated-burst planning workload
of ``BENCH_plan_cache.json``, and bounds the enabled mode too.

The committed plan-cache baseline stays the cross-machine gate
(``perf_report.py --check``): its speedup ratio would collapse first if
the disabled wrapper grew real work, because cached plans are the
cheapest operation the wrapper wraps.
"""

from __future__ import annotations

import statistics
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_report import DEFAULT_WORKLOAD, _build_engine  # noqa: E402

from repro.analyzer import InputAnalyzer  # noqa: E402
from repro.hcdp import IOTask  # noqa: E402
from repro.obs import Observability, ObservabilityConfig  # noqa: E402
from repro.workloads import vpic_sample  # noqa: E402
from repro.workloads.vpic import VPIC_HINTS  # noqa: E402

WORKLOAD = dict(DEFAULT_WORKLOAD, ranks=32, bursts=8)

#: The documented contract is < 2% disabled overhead; the gate adds
#: headroom for shared-runner timer noise at sub-second workloads.
MAX_DISABLED_OVERHEAD = 0.05


def _plan_seconds(seed, *, obs, use_wrapper: bool) -> float:
    """One cached-burst pass; returns wall seconds for the plan loop."""
    engine = _build_engine(seed, enabled=True)
    if obs is not None:
        engine.obs = obs
    sample = vpic_sample(WORKLOAD["sample_bytes"], np.random.default_rng(0))
    analysis = InputAnalyzer().analyze(sample, VPIC_HINTS)
    plan = engine.plan if use_wrapper else engine._plan
    wall = time.perf_counter()
    for step in range(WORKLOAD["bursts"]):
        for rank in range(WORKLOAD["ranks"]):
            plan(IOTask(f"vpic.{step}.{rank}", WORKLOAD["task_bytes"], analysis))
    return time.perf_counter() - wall


def _median_seconds(seed, *, obs, use_wrapper: bool, rounds: int = 5) -> float:
    return statistics.median(
        _plan_seconds(seed, obs=obs, use_wrapper=use_wrapper)
        for _ in range(rounds)
    )


def test_disabled_overhead_is_negligible(benchmark, seed) -> None:
    """The public plan() wrapper with obs=None vs the bare _plan() path."""
    bare = _median_seconds(seed, obs=None, use_wrapper=False)
    wrapped = benchmark.pedantic(
        lambda: _median_seconds(seed, obs=None, use_wrapper=True),
        rounds=1, iterations=1,
    )
    overhead = wrapped / bare - 1.0
    benchmark.extra_info.update(
        {
            "bare_seconds": round(bare, 6),
            "wrapped_seconds": round(wrapped, 6),
            "disabled_overhead": round(overhead, 4),
        }
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability wrapper costs {overhead:.1%} on the cached "
        f"plan path (contract: <2%, gate: <{MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_enabled_overhead_is_bounded(benchmark, seed) -> None:
    """Enabled telemetry pays for spans + counters, but must stay in the
    same order of magnitude as the uninstrumented path."""
    disabled = _median_seconds(seed, obs=None, use_wrapper=True, rounds=3)
    obs = Observability(ObservabilityConfig(enabled=True))
    enabled = benchmark.pedantic(
        lambda: _median_seconds(seed, obs=obs, use_wrapper=True, rounds=3),
        rounds=1, iterations=1,
    )
    ratio = enabled / disabled
    benchmark.extra_info.update(
        {
            "disabled_seconds": round(disabled, 6),
            "enabled_seconds": round(enabled, 6),
            "enabled_over_disabled": round(ratio, 3),
        }
    )
    assert ratio < 10.0, f"enabled telemetry is {ratio:.1f}x the disabled path"
    # And it really recorded: one plans_total increment per task per pass.
    assert obs.m_plans.value == 3 * WORKLOAD["ranks"] * WORKLOAD["bursts"]


@pytest.mark.parametrize("mode", ["disabled", "enabled"])
def test_compress_path_overhead(benchmark, seed, mode) -> None:
    """End-to-end compress() with telemetry off vs on (informative)."""
    from repro.core import HCompress, HCompressConfig
    from repro.tiers import ares_hierarchy
    from repro.units import GiB, KiB, MiB

    config = HCompressConfig(
        observability=ObservabilityConfig(enabled=(mode == "enabled"))
    )
    engine = HCompress(
        ares_hierarchy(64 * MiB, 128 * MiB, 4 * GiB, nodes=2), config, seed=seed
    )
    data = vpic_sample(64 * KiB, np.random.default_rng(0))
    counter = [0]

    def burst():
        for _ in range(32):
            engine.compress(
                data, modeled_size=8 * MiB, task_id=f"obs-{counter[0]}"
            )
            counter[0] += 1

    benchmark.pedantic(burst, rounds=3, iterations=1)
    if mode == "enabled":
        assert engine.obs is not None
        assert engine.obs.m_tasks.value == counter[0]
    else:
        assert engine.obs is None
