"""Lifecycle tiering bench: modeled TCO bill vs write-time placement.

Replays the seeded zipfian trace of :mod:`repro.lifecycle.workload`
twice — once with write-time HCDP placement alone (the baseline) and
once with the background lifecycle daemon stepping on the simulated
clock — and compares the **empirical bill** (storage + access +
migration dollars) and the modeled hot-read wait. Both runs share one
profiling seed and one seeded trace, so the only difference is the
daemon's migrations.

The acceptance gate (ISSUE 8) is two-sided: the lifecycle run's total
bill must come in *strictly below* the baseline's, and its mean hot-read
wait must be *no worse*. Everything is modeled seconds and modeled
dollars, so the committed baseline in ``BENCH_lifecycle.json`` gates CI
on any runner.

Usage::

    python benchmarks/bench_lifecycle.py --output BENCH_lifecycle.json
    python benchmarks/bench_lifecycle.py --check BENCH_lifecycle.json \
        --tolerance 0.3   # fail if the cost saving regressed > 30%
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompressProfiler
from repro.lifecycle.workload import ZipfTraceConfig, ZipfTraceResult, run_zipf_trace
from repro.units import KiB

__all__ = [
    "DEFAULT_WORKLOAD",
    "check_report",
    "generate_report",
    "run_trace_pair",
]

#: The committed trace: 48 blobs, zipf(1.4) reads — hot ranks absorb
#: most reads while write-time placement (seeded-shuffled write order)
#: has parked them wherever capacity allowed.
DEFAULT_WORKLOAD = {
    "tasks": 48,
    "task_kib": 4,
    "reads": 384,
    "zipf_s": 1.4,
    "rng_seed": 0,
}


def _bench_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(4 * KiB, 16 * KiB))


def _run_record(result: ZipfTraceResult) -> dict:
    record = {
        "lifecycle": result.lifecycle_enabled,
        "total_dollars": round(result.total_dollars, 6),
        "storage_dollars": round(result.storage_dollars, 6),
        "access_dollars": round(result.access_dollars, 6),
        "migration_dollars": round(result.migration_dollars, 6),
        "mean_hot_read_seconds": round(result.mean_hot_read_seconds, 9),
        "mean_read_seconds": round(result.mean_read_seconds, 9),
        "tier_residency": result.tier_residency,
    }
    if result.status is not None:
        record["promotions"] = result.promotions
        record["demotions"] = result.demotions
        record["bytes_moved"] = result.status["bytes_moved"]
    return record


def run_trace_pair(seed: SeedData, workload: dict) -> dict:
    """Baseline and lifecycle runs over the same seeded trace."""
    config = ZipfTraceConfig(**workload)
    wall = time.perf_counter()
    baseline = run_zipf_trace(config, lifecycle=False, seed=seed)
    lifecycle = run_zipf_trace(config, lifecycle=True, seed=seed)
    wall = time.perf_counter() - wall
    return {
        "wall_seconds": round(wall, 6),
        "baseline": _run_record(baseline),
        "lifecycle": _run_record(lifecycle),
    }


def generate_report(workload: dict | None = None) -> dict:
    """Run the trace pair and build the cost/latency report."""
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    runs = run_trace_pair(_bench_seed(), workload)
    base = runs["baseline"]
    life = runs["lifecycle"]
    saving = (
        1.0 - life["total_dollars"] / base["total_dollars"]
        if base["total_dollars"]
        else 0.0
    )
    return {
        "benchmark": "lifecycle_zipf_trace",
        "workload": workload,
        "runs": runs,
        "cost_saving": round(saving, 4),
        "hot_read_speedup": (
            round(
                base["mean_hot_read_seconds"] / life["mean_hot_read_seconds"],
                3,
            )
            if life["mean_hot_read_seconds"]
            else None
        ),
    }


def check_report(
    report: dict, baseline: dict | None, tolerance: float
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    base = report["runs"]["baseline"]
    life = report["runs"]["lifecycle"]
    if life["total_dollars"] >= base["total_dollars"]:
        errors.append(
            f"lifecycle bill ${life['total_dollars']:.4f} not below the "
            f"baseline's ${base['total_dollars']:.4f}"
        )
    if life["mean_hot_read_seconds"] > base["mean_hot_read_seconds"] * (
        1.0 + 1e-9
    ):
        errors.append(
            f"hot-read wait regressed: {life['mean_hot_read_seconds']:.3e}s "
            f"vs baseline {base['mean_hot_read_seconds']:.3e}s"
        )
    if baseline is not None:
        committed = float(baseline["cost_saving"])
        floor = committed * (1.0 - tolerance)
        if float(report["cost_saving"]) < floor:
            errors.append(
                f"cost saving regressed: {report['cost_saving']:.1%} vs "
                f"committed {committed:.1%} (floor {floor:.1%} at "
                f"tolerance {tolerance:.0%})"
            )
    return errors


# -- pytest-benchmark wrappers ------------------------------------------------


def test_lifecycle_trace_pair(benchmark, seed) -> None:
    """Wall clock of the committed trace, both runs."""
    runs = benchmark.pedantic(
        run_trace_pair,
        args=(seed, dict(DEFAULT_WORKLOAD)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "baseline_dollars": runs["baseline"]["total_dollars"],
            "lifecycle_dollars": runs["lifecycle"]["total_dollars"],
        }
    )
    assert runs["lifecycle"]["total_dollars"] < runs["baseline"]["total_dollars"]


def test_lifecycle_acceptance_gate(benchmark) -> None:
    """The ISSUE 8 gate: cost strictly lower, hot reads no worse."""
    report = benchmark.pedantic(
        generate_report, rounds=1, iterations=1
    )
    benchmark.extra_info["cost_saving"] = report["cost_saving"]
    assert check_report(report, None, 0.3) == []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_lifecycle.json)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to gate against (fails on >tolerance regression)",
    )
    parser.add_argument("--tolerance", type=float, default=0.3)
    parser.add_argument(
        "--tasks", type=int, default=DEFAULT_WORKLOAD["tasks"]
    )
    parser.add_argument(
        "--reads", type=int, default=DEFAULT_WORKLOAD["reads"]
    )
    args = parser.parse_args(argv)

    workload = dict(DEFAULT_WORKLOAD, tasks=args.tasks, reads=args.reads)
    report = generate_report(workload)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
