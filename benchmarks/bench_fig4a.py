"""Fig. 4(a) regeneration bench: HCDP engine planning throughput.

Paper claim: throughput is flat while tasks fit single tiers (their C
engine ran at ~2.44e9 trivial plans/s) and drops a few percent once tasks
split. We benchmark the Python engine's true planning rate and assert the
flat-then-drop shape.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig4a
from repro.units import KiB, MiB

from conftest import table_to_extra_info

SIZES = (4 * KiB, 64 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB)


def test_fig4a_engine_throughput(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig4a(
            plans_per_size=2000, sizes=SIZES, seed=seed,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    relative = table.column("relative_to_smallest")
    # Flat region: within-one-tier sizes stay within 2x of the smallest.
    assert min(relative[:4]) > 0.5
    # Split region: beyond-tier sizes are measurably slower.
    assert relative[-1] < relative[0]
