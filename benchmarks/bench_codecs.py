"""Micro-benchmarks: real wall-clock throughput of every pool codec.

These measure OUR pure-Python implementations (the simulator charges time
from the nominal profile table instead — see DESIGN.md §2); they exist to
track regressions in the from-scratch codecs and to document the measured/
nominal gap.
"""

from __future__ import annotations

import pytest

from repro.codecs import codec_names, get_codec


@pytest.mark.parametrize("codec_name", codec_names(include_identity=False))
def test_compress_throughput(benchmark, codec_name, gamma_buffer) -> None:
    codec = get_codec(codec_name)
    payload = benchmark(codec.compress, gamma_buffer)
    benchmark.extra_info["ratio"] = len(gamma_buffer) / max(len(payload), 1)
    benchmark.extra_info["input_bytes"] = len(gamma_buffer)


@pytest.mark.parametrize("codec_name", codec_names(include_identity=False))
def test_decompress_throughput(benchmark, codec_name, gamma_buffer) -> None:
    codec = get_codec(codec_name)
    payload = codec.compress(gamma_buffer)
    restored = benchmark(codec.decompress, payload)
    assert restored == gamma_buffer


def test_subtask_header_wrap(benchmark, gamma_buffer) -> None:
    from repro.codecs import wrap_payload

    benchmark(wrap_payload, gamma_buffer[:4096], 0, "lz4")


def test_subtask_header_unwrap(benchmark, gamma_buffer) -> None:
    from repro.codecs import unwrap_payload, wrap_payload

    blob, _ = wrap_payload(gamma_buffer[:4096], 0, "lz4")
    benchmark(unwrap_payload, blob)
