"""Ablation benches for the design choices DESIGN.md calls out.

1. Split grain: the paper's 4096-byte alignment vs finer/coarser grains —
   memoization effectiveness is the claimed benefit.
2. "No compression" in the choice set (§IV-F1): forcing compression on
   incompressible data must hurt.
3. The reinforcement feedback loop (§IV-D): disabling it leaves the cost
   model wrong on drifted data.
4. The capacity-pressure (drain) term: without it the per-task greedy
   optimizer stops compressing into roomy fast tiers and the Fig. 7
   speedup collapses (DESIGN.md's documented modeling extension).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor, ObservationKey
from repro.codecs import CompressionLibraryPool
from repro.core import HCompress, HCompressConfig
from repro.experiments.fig7_vpic import (
    WRITE_PRIORITY,
    fig7_hierarchy,
    fig7_vpic_config,
)
from repro.hcdp import HcdpEngine, IOTask, Priority
from repro.monitor import SystemMonitor
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB
from repro.workloads import HCompressBackend, run_vpic


# -- 1. split grain ----------------------------------------------------------


@pytest.mark.parametrize("grain", [512, 4096, 65536])
def test_ablation_alignment_grain(benchmark, seed, grain) -> None:
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    rng = np.random.default_rng(0)
    from repro.datagen import synthetic_buffer

    sample = synthetic_buffer("float64", "gamma", 64 * KiB, rng)
    analysis = InputAnalyzer().analyze(sample)
    sizes = rng.integers(1, 64, size=200) * 256 * KiB

    def plan_stream() -> tuple[float, float]:
        hierarchy = ares_hierarchy(4 * MiB, 8 * MiB, 16 * MiB, nodes=4)
        engine = HcdpEngine(
            predictor, SystemMonitor(hierarchy), CompressionLibraryPool(),
            grain=grain,
        )
        task_rates = []
        for i, size in enumerate(sizes):
            schema = engine.plan(IOTask(f"g{i}", int(size), analysis))
            lookups = schema.memo_hits + schema.memo_misses
            task_rates.append(
                schema.memo_hits / lookups if lookups else 1.0
            )
        return engine.stats.hit_rate, float(np.mean(task_rates))

    hit_rate, per_task = benchmark.pedantic(plan_stream, rounds=1, iterations=1)
    benchmark.extra_info["memo_hit_rate"] = hit_rate
    benchmark.extra_info["per_task_memo_hit_rate"] = round(per_task, 4)
    benchmark.extra_info["grain"] = grain


# -- 2. the no-compression choice ---------------------------------------------


@pytest.mark.parametrize("allow_identity", [True, False])
def test_ablation_identity_choice(benchmark, seed, allow_identity) -> None:
    """Incompressible data: keeping c=0 in the choice set avoids paying
    compression time for nothing (paper: 'compression might hurt')."""
    rng = np.random.default_rng(1)
    sample = rng.integers(0, 256, 64 * KiB, dtype=np.uint8).tobytes()

    def run() -> float:
        hierarchy = ares_hierarchy(512 * KiB, 1 * MiB, 4 * GiB, nodes=2)
        engine = HCompress(hierarchy, seed=seed)
        engine.engine.allow_identity = allow_identity
        total_cpu = 0.0
        for i in range(50):
            result = engine.compress(
                sample, modeled_size=1 * MiB, task_id=f"t{i}"
            )
            total_cpu += result.compress_seconds
        return total_cpu

    cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["compression_cpu_seconds"] = cpu
    benchmark.extra_info["allow_identity"] = allow_identity
    if allow_identity:
        assert cpu < 1.0  # the engine declines to compress noise


# -- 3. the feedback loop ------------------------------------------------------


@pytest.mark.parametrize("feedback_on", [True, False])
def test_ablation_feedback_loop(benchmark, seed, feedback_on) -> None:
    """VPIC data drifts from the seed corpus; with feedback the ratio
    head converges to the measured value, without it the error persists."""
    from repro.workloads import vpic_sample
    from repro.workloads.vpic import VPIC_HINTS

    rng = np.random.default_rng(2)
    sample = vpic_sample(64 * KiB, rng)

    def run() -> float:
        hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 4 * GiB, nodes=2)
        engine = HCompress(
            hierarchy,
            HCompressConfig(
                priority=Priority(0.0, 1.0, 0.0),
                feedback_every_n=1 if feedback_on else 10**9,
            ),
            seed=seed,
        )
        measured = None
        codec = None
        for i in range(40):
            result = engine.compress(
                sample, hints=VPIC_HINTS, modeled_size=1 * MiB,
                task_id=f"t{i}",
            )
            piece = result.pieces[0]
            if piece.plan.codec != "none":
                measured = piece.actual_ratio
                codec = piece.plan.codec
        assert codec is not None
        analysis = engine.analyzer.analyze(sample, VPIC_HINTS)
        predicted = engine.predictor.predict(
            ObservationKey(*analysis.feature_key(), codec, 1 * MiB)
        ).ratio
        return abs(np.log2(predicted) - np.log2(measured))

    error = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["log2_ratio_error"] = error
    benchmark.extra_info["feedback_on"] = feedback_on
    if feedback_on:
        assert error < 0.2


# -- 4. the capacity-pressure (drain) term --------------------------------------


@pytest.mark.parametrize("drain_penalty", [0.0, 1.0])
def test_ablation_drain_penalty(benchmark, seed, drain_penalty) -> None:
    config = fig7_vpic_config(1280, scale=32)

    def run() -> tuple[float, float]:
        hierarchy = fig7_hierarchy(32)
        engine = HCompress(
            hierarchy,
            HCompressConfig(
                priority=WRITE_PRIORITY, drain_penalty=drain_penalty
            ),
            seed=seed,
        )
        result = run_vpic(
            HCompressBackend(engine), config, hierarchy,
            rng=np.random.default_rng(0),
        )
        return result.io_seconds, result.achieved_ratio

    io_seconds, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["io_seconds"] = io_seconds
    benchmark.extra_info["achieved_ratio"] = ratio
    benchmark.extra_info["drain_penalty"] = drain_penalty
    if drain_penalty:
        assert ratio > 1.2
