"""Fig. 8 regeneration bench: the VPIC + BD-CATS workflow.

Paper claims: STWC ~1.5x and MTNC ~2.5x over BASE; HCompress ~7x over both
individual optimizations for the read-after-write workflow.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig8

from conftest import table_to_extra_info


def test_fig8_workflow(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig8(
            process_counts=(320, 2560),
            scale=64,
            seed=seed,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rows = {(r["nprocs"], r["backend"]): r for r in table.row_dicts()}
    base = rows[(2560, "BASE")]["total_s"]
    assert base / rows[(2560, "HC")]["total_s"] > 3.0
    assert rows[(2560, "HC")]["total_s"] < rows[(2560, "MTNC")]["total_s"]
    assert rows[(2560, "HC")]["total_s"] < rows[(2560, "STWC")]["total_s"]
    # Reads specifically benefit (compressed data sits higher).
    assert rows[(2560, "HC")]["read_s"] < rows[(2560, "MTNC")]["read_s"]
