"""Batched hot-path bench: compress_batch vs the cached per-task path.

Drives the fig-7-shaped VPIC checkpoint burst (one shared 64 KiB sample,
8 MiB modeled slabs) through one engine per submission mode, both warmed
to steady state (plan cache hot, burst lane established, feedback
cadence pushed out of the measurement window). The metric is wall-clock
tasks/second over the burst; each mode takes the **best of several
rounds** because the per-task figure is allocator/CPU-noise sensitive at
tens of microseconds per task.

The committed baseline in ``BENCH_batch.json`` gates CI: the batch path
must stay >= ``MIN_SPEEDUP_CI`` (3x) over per-task on any runner, and
>= ``MIN_SPEEDUP`` (5x) locally / in the committed baseline. The report
also records a cache-line-codec selection trace: with the extended
library roster, HCDP must pick ``bdi``/``fpc`` for RAM-tier pieces.

Usage::

    python benchmarks/bench_batch.py --output BENCH_batch.json --strict
    python benchmarks/bench_batch.py --check BENCH_batch.json \
        --tolerance 0.3   # CI: 3x floor + regression gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.codecs import EXTENDED_LIBRARIES, CompressionLibraryPool
from repro.core import HCompress, HCompressProfiler
from repro.core.config import HCompressConfig
from repro.tiers import ares_hierarchy
from repro.units import KiB, MiB, TiB
from repro.workloads import vpic_sample
from repro.workloads.vpic import VPIC_HINTS

__all__ = [
    "DEFAULT_WORKLOAD",
    "MIN_SPEEDUP",
    "MIN_SPEEDUP_CI",
    "cacheline_selection",
    "check_report",
    "generate_report",
    "run_burst",
]

#: Fig-7 burst in steady state. ``feedback_every_n`` is pushed beyond the
#: burst so neither path pays a model refit inside the measurement window
#: (both paths would pay it identically; it just adds variance).
DEFAULT_WORKLOAD = {
    "warmup": 256,
    "tasks": 2048,
    "rounds": 5,
    "sample_kib": 64,
    "modeled_mib": 8,
}

#: Local / committed-baseline target (ISSUE 7 acceptance criterion).
MIN_SPEEDUP = 5.0
#: CI floor: shared runners are noisy; the gate stays meaningful without
#: flaking on a slow neighbour.
MIN_SPEEDUP_CI = 3.0


def _bench_seed(libraries: tuple[str, ...] | None = None) -> SeedData:
    pool = (
        CompressionLibraryPool(libraries) if libraries is not None else None
    )
    profiler = HCompressProfiler(pool, rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def _build(seed: SeedData, workload: dict) -> HCompress:
    # PFS capacity far beyond the burst: steady state must not drift into
    # spill territory mid-measurement.
    hierarchy = ares_hierarchy(64 * MiB, 128 * MiB, 1 * TiB, nodes=2)
    config = replace(HCompressConfig(), feedback_every_n=10**6)
    return HCompress(hierarchy, config, seed=seed)


def _items(workload: dict, count: int, tag: str) -> list[dict]:
    sample = vpic_sample(
        workload["sample_kib"] * KiB, np.random.default_rng(0)
    )
    return [
        {
            "data": sample,
            "hints": VPIC_HINTS,
            "modeled_size": workload["modeled_mib"] * MiB,
            "task_id": f"{tag}.{i}",
        }
        for i in range(count)
    ]


def run_burst(seed: SeedData, batched: bool, workload: dict) -> dict:
    """One submission mode: best-of-rounds wall clock over the burst."""
    tasks = workload["tasks"]
    rounds = workload["rounds"]
    walls = []
    for r in range(rounds):
        engine = _build(seed, workload)
        warm = _items(workload, workload["warmup"], "warm")
        burst = _items(workload, tasks, f"burst{r}")
        if batched:
            engine.compress_batch(warm)
            start = time.perf_counter()
            results = engine.compress_batch(burst)
            walls.append(time.perf_counter() - start)
        else:
            for item in warm:
                engine.compress(**item)
            start = time.perf_counter()
            results = [engine.compress(**item) for item in burst]
            walls.append(time.perf_counter() - start)
        assert len(results) == tasks
    wall = min(walls)
    return {
        "mode": "batch" if batched else "per_task",
        "tasks": tasks,
        "rounds": rounds,
        "batch_size": tasks if batched else 1,
        "wall_seconds": round(wall, 6),
        "us_per_task": round(wall / tasks * 1e6, 2),
        "tasks_per_second": round(tasks / wall, 1),
    }


def cacheline_selection(workload: dict) -> dict:
    """HCDP's codec choices with the extended roster on a short burst.

    The acceptance trace: at least one RAM-tier piece must be planned
    onto a cache-line-class codec (``bdi``/``fpc``) — the ~GB/s nominal
    profiles exist precisely so the DP stops bottlenecking the top tier
    on byte-LZ.
    """
    seed = _bench_seed(EXTENDED_LIBRARIES)
    config = replace(HCompressConfig(), libraries=EXTENDED_LIBRARIES)
    engine = HCompress(
        ares_hierarchy(64 * MiB, 128 * MiB, 1 * TiB, nodes=2),
        config,
        seed=seed,
    )
    by_tier: Counter = Counter()
    for item in _items(workload, 128, "sel"):
        result = engine.compress(**item)
        for piece in result.schema.pieces:
            by_tier[(piece.tier, piece.codec)] += 1
    ram_codecs = sorted(
        {codec for (tier, codec) in by_tier if tier == "ram"}
    )
    return {
        "libraries": list(EXTENDED_LIBRARIES),
        "ram_codecs": ram_codecs,
        "cacheline_on_ram": bool(set(ram_codecs) & {"bdi", "fpc"}),
        "pieces_by_tier_codec": {
            f"{tier}/{codec}": count
            for (tier, codec), count in sorted(by_tier.items())
        },
    }


def generate_report(workload: dict | None = None) -> dict:
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    seed = _bench_seed()
    per_task = run_burst(seed, batched=False, workload=workload)
    batch = run_burst(seed, batched=True, workload=workload)
    speedup = (
        per_task["wall_seconds"] / batch["wall_seconds"]
        if batch["wall_seconds"]
        else None
    )
    return {
        "benchmark": "batch_hot_path_burst",
        "workload": workload,
        "per_task": per_task,
        "batch": batch,
        "speedup": round(speedup, 2) if speedup else None,
        "min_speedup": MIN_SPEEDUP,
        "min_speedup_ci": MIN_SPEEDUP_CI,
        "cacheline_selection": cacheline_selection(workload),
    }


def check_report(
    report: dict,
    baseline: dict | None,
    tolerance: float,
    strict: bool = False,
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    floor = MIN_SPEEDUP if strict else MIN_SPEEDUP_CI
    speedup = float(report["speedup"] or 0.0)
    if speedup < floor:
        errors.append(
            f"batch speedup {speedup:.2f}x below the {floor:.0f}x floor"
        )
    if not report["cacheline_selection"]["cacheline_on_ram"]:
        errors.append(
            "HCDP never chose a cache-line codec (bdi/fpc) for a RAM-tier "
            f"piece; ram codecs: "
            f"{report['cacheline_selection']['ram_codecs']}"
        )
    if baseline is not None:
        base = float(baseline["speedup"] or 0.0)
        regress_floor = base * (1.0 - tolerance)
        if speedup < regress_floor:
            errors.append(
                f"batch speedup regressed: {speedup:.2f}x vs baseline "
                f"{base:.2f}x (floor {regress_floor:.2f}x at tolerance "
                f"{tolerance:.0%})"
            )
    return errors


# -- pytest-benchmark wrappers ------------------------------------------------

SMOKE_WORKLOAD = dict(DEFAULT_WORKLOAD, warmup=128, tasks=512, rounds=3)


@pytest.mark.parametrize("batched", [False, True], ids=["per_task", "batch"])
def test_burst_throughput(benchmark, seed, batched) -> None:
    """Tasks/second of one submission mode over the smoke burst."""
    run = benchmark.pedantic(
        run_burst, args=(seed, batched, SMOKE_WORKLOAD), rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: run[k] for k in ("us_per_task", "tasks_per_second", "batch_size")}
    )
    assert run["tasks"] == SMOKE_WORKLOAD["tasks"]


def test_batch_speedup_floor(benchmark) -> None:
    """CI criterion on the smoke burst: >= 3x and bdi/fpc on RAM."""
    report = benchmark.pedantic(
        generate_report, args=(SMOKE_WORKLOAD,), rounds=1, iterations=1
    )
    benchmark.extra_info["speedup"] = report["speedup"]
    assert check_report(report, None, 1.0) == []


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline report to gate against")
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="allowed fractional regression vs baseline")
    parser.add_argument("--strict", action="store_true",
                        help=f"enforce the {MIN_SPEEDUP:.0f}x local target "
                             f"instead of the {MIN_SPEEDUP_CI:.0f}x CI floor")
    parser.add_argument("--tasks", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args(argv)

    workload = dict(DEFAULT_WORKLOAD)
    if args.tasks:
        workload["tasks"] = args.tasks
    if args.rounds:
        workload["rounds"] = args.rounds

    report = generate_report(workload)
    print(
        f"per-task: {report['per_task']['us_per_task']}us/task "
        f"({report['per_task']['tasks_per_second']:,.0f}/s)  "
        f"batch: {report['batch']['us_per_task']}us/task "
        f"({report['batch']['tasks_per_second']:,.0f}/s)  "
        f"speedup {report['speedup']}x  "
        f"ram codecs {report['cacheline_selection']['ram_codecs']}"
    )
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance, args.strict)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
