"""Fig. 1 regeneration bench: the VPIC motivation experiment.

Reproduces the paper's opening figure — single-tier vs multi-tier storage
crossed with static codecs, plus the combined engine — and records the
full series in the benchmark's extra info.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig1

from conftest import table_to_extra_info


def test_fig1_motivation(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig1(
            scale=64, nprocs=640, seed=seed, rng=np.random.default_rng(0)
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rows = {(r["scenario"], r["codec"]): r for r in table.row_dicts()}
    base = rows[("Single Tier (PFS)", "none")]["total_s"]
    combined = rows[("Multi-Comp Multi-Tiered", "dynamic")]["total_s"]
    # The figure's claim: the combined engine beats the vanilla PFS and
    # each individual optimization's best configuration.
    assert combined < base
