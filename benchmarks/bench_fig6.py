"""Fig. 6 regeneration bench: multi-tiered storage's impact on compression.

Paper claims: CPU-bound codecs (bsc, brotli, zlib) hold a flat task rate
across tiers; I/O-bound codecs (pithy, snappy, lz4, huffman, lzo) track
tier bandwidth; HCompress beats every static codec on the multi-tier
stack by 1.4-3x by matching libraries to tiers.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig6

from conftest import table_to_extra_info


def test_fig6_tiers_on_compression(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig6(
            scale=32, nprocs=64, seed=seed, rng=np.random.default_rng(0)
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rates = {
        (r["codec"], r["tier"]): r["tasks_per_s"] for r in table.row_dicts()
    }
    # Heavy codecs flat, light codecs tier-sensitive.
    assert rates[("bsc", "ram")] / rates[("bsc", "burst_buffer")] < 3.0
    assert rates[("lz4", "ram")] / rates[("lz4", "burst_buffer")] > 5.0
    # HCompress on top of every static multi-tier configuration.
    hc = rates[("HCompress", "multi-tiered")]
    statics = [
        rate for (codec, tier), rate in rates.items()
        if tier == "multi-tiered" and codec != "HCompress"
    ]
    assert hc > max(statics)
    benchmark.extra_info["hc_over_best_static"] = hc / max(statics)
