"""Replication cost/recovery bench: write overhead and time-to-recovery.

Two questions gate the replication subsystem (ISSUE 9):

* **Write overhead** — synchronous WAL shipping persists every journal
  record on K standbys before the ack. The same write burst runs over
  two identical deployments, replication off and on, and the committed
  ceiling is a <= 30% wall-clock overhead at K=1 (the overhead is a
  *ratio* of the same machine's two runs, so the gate is
  machine-independent to first order).
* **Time-to-recovery** — one kill-and-promote storm on the modeled
  clock. The DOWN -> UP window is fully deterministic (promotion window
  + one arrival for the next dispatch to notice), so the committed
  baseline gates it exactly, on any runner.

Usage::

    python benchmarks/bench_failover.py --output BENCH_failover.json
    python benchmarks/bench_failover.py --check BENCH_failover.json \
        --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.ccp import SeedData
from repro.core import HCompressConfig, HCompressProfiler
from repro.core.config import RecoveryConfig
from repro.faults import FailoverChaosConfig, run_failover_chaos
from repro.replication import ReplicationConfig
from repro.shard import ShardConfig, ShardedHCompress
from repro.tiers import ares_specs
from repro.units import KiB, MiB
from repro.workloads import vpic_sample

__all__ = [
    "DEFAULT_WORKLOAD",
    "MAX_WRITE_OVERHEAD",
    "check_report",
    "generate_report",
    "run_write_burst",
]

DEFAULT_WORKLOAD = {
    "shards": 2,
    "tasks": 96,
    "tenants": 16,
    "sample_kib": 16,
    "replicas": 1,
    "fsync_every": 8,
    "promotion_seconds": 0.25,
}

#: Acceptance ceiling (ISSUE 9): replication-on wall seconds per write
#: must stay within this multiple of replication-off.
MAX_WRITE_OVERHEAD = 1.30


def _bench_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def run_write_burst(
    seed: SeedData, workload: dict, replicated: bool, rounds: int = 1
) -> dict:
    """One directory-backed deployment per round, one write burst each;
    wall metrics of the best round.

    Both arms journal durably (recovery on, group commit); the only
    difference is synchronous shipping to K standbys, so the wall delta
    is the price of replication alone. ``rounds > 1`` takes the fastest
    round, shedding first-run import/allocator warm-up that would
    otherwise swamp the ~10% shipping cost being measured.
    """
    runs = [
        _one_write_burst(seed, workload, replicated)
        for _ in range(max(1, rounds))
    ]
    return min(runs, key=lambda run: run["wall_seconds"])


def _one_write_burst(
    seed: SeedData, workload: dict, replicated: bool
) -> dict:
    shards = workload["shards"]
    replication = (
        ReplicationConfig(
            enabled=True,
            replicas=workload["replicas"],
            promotion_seconds=workload["promotion_seconds"],
        )
        if replicated
        else ReplicationConfig()
    )
    sample = vpic_sample(
        workload["sample_kib"] * KiB, np.random.default_rng(0)
    )
    with tempfile.TemporaryDirectory(prefix="hcompress-bench-repl-") as tmp:
        sharded = ShardedHCompress(
            ares_specs(64 * MiB, 128 * MiB, 4096 * MiB, nodes=shards),
            HCompressConfig(
                recovery=RecoveryConfig(
                    fsync=False, fsync_every=workload["fsync_every"]
                ),
            ),
            ShardConfig(shards=shards, directory=tmp,
                        replication=replication),
            seed=seed,
        )
        wall = time.perf_counter()
        for index in range(workload["tasks"]):
            sharded.compress(
                sample,
                task_id=f"bench/t{index}",
                tenant=f"tenant-{index % workload['tenants']}",
            )
        wall = time.perf_counter() - wall
        shipped = (
            sum(sharded.replication.shipped_records.values())
            if sharded.replication is not None
            else 0
        )
        sharded.close()
    return {
        "replicated": replicated,
        "tasks": workload["tasks"],
        "wall_seconds": round(wall, 6),
        "wall_us_per_task": round(wall / workload["tasks"] * 1e6, 1),
        "shipped_records": shipped,
    }


def run_recovery(workload: dict) -> dict:
    """One kill-and-promote storm; the modeled-clock recovery metrics."""
    outcome = run_failover_chaos(FailoverChaosConfig(
        shards=workload["shards"],
        tasks=workload["tasks"] // 2,
        tenants=workload["tenants"],
        task_kib=workload["sample_kib"],
        kill_shard=0,
        kill_after=workload["tasks"] // 6,
        checkpoint_after=workload["tasks"] // 12,
        replicas=workload["replicas"],
        promotion_seconds=workload["promotion_seconds"],
        fsync_every=workload["fsync_every"],
    ))
    if not outcome.holds:
        raise RuntimeError(
            f"failover contract violated in bench: {outcome.summary()}"
        )
    return {
        "recovery_seconds": round(outcome.unavailability_seconds, 6),
        "recovery_bound_seconds": round(outcome.unavailability_bound, 6),
        "promotion_seconds": workload["promotion_seconds"],
        "failovers": outcome.failovers,
        "lost_local_tail": outcome.lost_local_tail,
        "missing_acked": outcome.missing_acked,
        "mismatched": outcome.mismatched,
    }


def generate_report(workload: dict | None = None) -> dict:
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    seed = _bench_seed()
    # Warm-up: the first deployment ever constructed pays import and
    # allocator costs that would otherwise be charged to the "off" arm.
    run_write_burst(seed, dict(workload, tasks=8), replicated=True)
    off = run_write_burst(seed, workload, replicated=False, rounds=3)
    on = run_write_burst(seed, workload, replicated=True, rounds=3)
    overhead = (
        on["wall_seconds"] / off["wall_seconds"]
        if off["wall_seconds"]
        else None
    )
    return {
        "benchmark": "replication_failover",
        "workload": workload,
        "write_burst": {"off": off, "on": on},
        "write_overhead": round(overhead, 3) if overhead else None,
        "max_write_overhead": MAX_WRITE_OVERHEAD,
        "recovery": run_recovery(workload),
    }


def check_report(
    report: dict, baseline: dict | None, tolerance: float
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    overhead = float(report["write_overhead"] or 0.0)
    if overhead > MAX_WRITE_OVERHEAD:
        errors.append(
            f"replication write overhead {overhead:.2f}x exceeds the "
            f"{MAX_WRITE_OVERHEAD:.2f}x acceptance ceiling"
        )
    recovery = report["recovery"]
    if recovery["recovery_seconds"] > recovery["recovery_bound_seconds"]:
        errors.append(
            f"time-to-recovery {recovery['recovery_seconds']:.3f}s exceeds "
            f"the modeled bound {recovery['recovery_bound_seconds']:.3f}s"
        )
    if recovery["missing_acked"] or recovery["mismatched"]:
        errors.append(
            f"acked-write loss in the recovery storm: "
            f"{recovery['missing_acked']} missing, "
            f"{recovery['mismatched']} mismatched"
        )
    if baseline is not None:
        base = baseline["recovery"]["recovery_seconds"]
        # Modeled clock: deterministic, so any drift is a real change.
        if abs(recovery["recovery_seconds"] - base) > 1e-6:
            errors.append(
                f"modeled recovery window drifted: "
                f"{recovery['recovery_seconds']:.6f}s vs committed "
                f"{base:.6f}s"
            )
        base_overhead = float(baseline.get("write_overhead") or 0.0)
        if base_overhead and overhead > base_overhead * (1.0 + tolerance):
            errors.append(
                f"write overhead regressed: {overhead:.2f}x vs baseline "
                f"{base_overhead:.2f}x (+{tolerance:.0%} allowed)"
            )
    return errors


# -- pytest-benchmark wrappers ------------------------------------------------

SMOKE_WORKLOAD = dict(DEFAULT_WORKLOAD, tasks=48)


@pytest.mark.parametrize("replicated", (False, True))
def test_write_burst(benchmark, seed, replicated) -> None:
    """Wall cost of one write burst, with and without shipping."""
    run = benchmark.pedantic(
        run_write_burst,
        args=(seed, SMOKE_WORKLOAD, replicated),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: run[k] for k in ("wall_us_per_task", "shipped_records")}
    )
    if replicated:
        assert run["shipped_records"] > 0
    else:
        assert run["shipped_records"] == 0


def test_recovery_window(benchmark) -> None:
    """The acceptance criterion: bounded modeled time-to-recovery."""
    recovery = benchmark.pedantic(
        run_recovery, args=(SMOKE_WORKLOAD,), rounds=1, iterations=1
    )
    benchmark.extra_info["recovery_seconds"] = recovery["recovery_seconds"]
    assert recovery["recovery_seconds"] \
        <= recovery["recovery_bound_seconds"]
    assert recovery["missing_acked"] == 0
    assert recovery["mismatched"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_failover.json)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to gate against (fails on >tolerance regression)",
    )
    parser.add_argument("--tolerance", type=float, default=0.3)
    parser.add_argument(
        "--tasks", type=int, default=DEFAULT_WORKLOAD["tasks"]
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_WORKLOAD["replicas"]
    )
    args = parser.parse_args(argv)

    workload = dict(
        DEFAULT_WORKLOAD, tasks=args.tasks, replicas=args.replicas
    )
    report = generate_report(workload)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance)
    for error in errors:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
