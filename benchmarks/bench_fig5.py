"""Fig. 5 regeneration bench: compression's impact on tiered storage.

Paper claims: HCompress up to 8x over Hermes-without-compression and at
least 1.72x over every static library; Hermes + static codecs leave the
upper tiers under-utilised because placement happens before compression.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig5

from conftest import table_to_extra_info


def test_fig5_compression_on_tiers(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig5(
            scale=16, nprocs=256, seed=seed, rng=np.random.default_rng(0)
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rows = {r["scenario"]: r for r in table.row_dicts()}
    hc = rows["HCompress"]["elapsed_s"]
    none = rows["None (Hermes)"]["elapsed_s"]
    statics = [
        r["elapsed_s"] for s, r in rows.items()
        if s.startswith("Hermes+")
    ]
    assert none / hc > 2.0  # paper: up to 8x
    assert min(statics) / hc > 1.0  # paper: >= 1.72x over every library
    # Under-utilisation claim: with lz4, Hermes's reserved RAM holds far
    # fewer compressed bytes than its capacity share.
    assert rows["Hermes+lz4"]["ram_gib"] < rows["None (Hermes)"]["ram_gib"]
