"""Fig. 7 regeneration bench: VPIC-IO scaling, the headline result.

Paper claims at 2560 processes: STWC ~1.5x, MTNC ~2x, HC ~12x over the
vanilla-PFS baseline (7x average over the individual optimizations).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig7

from conftest import table_to_extra_info


def test_fig7_vpic_scaling(benchmark, seed) -> None:
    table = benchmark.pedantic(
        lambda: run_fig7(
            process_counts=(320, 640, 1280, 2560),
            scale=64,
            seed=seed,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    table_to_extra_info(benchmark, table)
    rows = {
        (r["nprocs"], r["backend"]): r for r in table.row_dicts()
    }
    top = rows[(2560, "HC")]
    assert top["speedup_vs_base"] > 5.0  # paper: ~12x
    assert rows[(2560, "MTNC")]["speedup_vs_base"] > 1.5  # paper: ~2x
    assert rows[(2560, "STWC")]["speedup_vs_base"] > 1.3  # paper: ~1.5x
    # HC beats both individual optimizations at the largest scale.
    assert top["io_s"] < rows[(2560, "MTNC")]["io_s"]
    assert top["io_s"] < rows[(2560, "STWC")]["io_s"]
