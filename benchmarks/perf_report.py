"""Standalone perf report for the hot-path plan cache.

Drives a repeated-burst, VPIC-shaped planning workload (every rank dumps
an identical-shape particle buffer each timestep — the paper's Fig. 7
checkpoint pattern) through the HCDP engine twice, plan cache off then
on, and reports plan throughput, cache counters, and the speedup ratio.

The speedup ratio is the regression metric: it is machine-independent
(both runs execute on the same host, same interpreter, back to back), so
the committed baseline in ``BENCH_plan_cache.json`` can gate CI on any
runner.

Usage::

    python benchmarks/perf_report.py --output BENCH_plan_cache.json
    python benchmarks/perf_report.py --check BENCH_plan_cache.json \
        --tolerance 0.2   # fail if speedup regressed > 20% vs baseline

The run also asserts the exactness contract: the schemas produced with
the cache on are byte-identical to the schemas produced with it off.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analyzer import InputAnalyzer
from repro.ccp import CompressionCostPredictor, SeedData
from repro.codecs import CompressionLibraryPool
from repro.core import HCompressProfiler
from repro.hcdp import HcdpEngine, IOTask, PlanCacheConfig
from repro.monitor import SystemMonitor
from repro.tiers import ares_hierarchy
from repro.units import KiB, MiB
from repro.workloads import vpic_sample
from repro.workloads.vpic import VPIC_HINTS

__all__ = [
    "DEFAULT_WORKLOAD",
    "check_report",
    "generate_report",
    "plan_burst_workload",
    "run_plan_workload",
]

#: Fig.7-shaped repeated burst: every rank writes the same-size particle
#: dump each timestep (256 MiB / scale 32 = 8 MiB modeled per task).
DEFAULT_WORKLOAD = {
    "ranks": 64,
    "bursts": 16,
    "task_bytes": 8 * MiB,
    "sample_bytes": 64 * KiB,
}

#: Acceptance floor (ISSUE 2): repeated-burst plan throughput with the
#: cache on must be at least this multiple of the uncached throughput.
MIN_SPEEDUP = 5.0


def _build_engine(seed: SeedData, enabled: bool) -> HcdpEngine:
    predictor = CompressionCostPredictor()
    predictor.fit_seed(seed.observations)
    # Small bounded capacity relative to the burst so the drain term's
    # quantized pressure saturates early in the run (steady-state keys).
    hierarchy = ares_hierarchy(8 * MiB, 16 * MiB, 64 * MiB, nodes=2)
    return HcdpEngine(
        predictor,
        SystemMonitor(hierarchy),
        CompressionLibraryPool(),
        plan_cache=PlanCacheConfig(enabled=enabled),
    )


def plan_burst_workload(
    engine: HcdpEngine,
    analysis,
    *,
    ranks: int,
    bursts: int,
    task_bytes: int,
) -> list[tuple]:
    """Plan ``bursts`` timesteps of ``ranks`` identical dumps; return the
    schema fingerprints (pieces + expected cost) for the exactness check."""
    fingerprints = []
    for step in range(bursts):
        for rank in range(ranks):
            schema = engine.plan(
                IOTask(f"vpic.{step}.{rank}", task_bytes, analysis)
            )
            fingerprints.append(
                (tuple(schema.pieces), round(schema.expected_cost, 12))
            )
    return fingerprints


def run_plan_workload(
    seed: SeedData, *, enabled: bool, workload: dict
) -> tuple[dict, list[tuple]]:
    """One timed pass; returns (metrics, schema fingerprints)."""
    engine = _build_engine(seed, enabled)
    rng = np.random.default_rng(0)
    sample = vpic_sample(workload["sample_bytes"], rng)
    analysis = InputAnalyzer().analyze(sample, VPIC_HINTS)
    tasks = workload["ranks"] * workload["bursts"]

    wall = time.perf_counter()
    fingerprints = plan_burst_workload(
        engine,
        analysis,
        ranks=workload["ranks"],
        bursts=workload["bursts"],
        task_bytes=workload["task_bytes"],
    )
    seconds = time.perf_counter() - wall

    stats = engine.stats
    metrics = {
        "plan_cache_enabled": enabled,
        "tasks": tasks,
        "seconds": round(seconds, 6),
        "tasks_per_second": round(tasks / seconds, 1) if seconds else None,
        "plan_cache_hits": stats.plan_cache_hits,
        "plan_cache_misses": stats.plan_cache_misses,
        "plan_cache_invalidations": stats.plan_cache_invalidations,
        "plan_cache_hit_rate": round(stats.plan_cache_hit_rate, 4),
        "memo_hits": stats.memo_hits,
        "memo_misses": stats.memo_misses,
    }
    return metrics, fingerprints


def generate_report(workload: dict | None = None) -> dict:
    """Run the workload cache-off then cache-on and build the report."""
    workload = dict(DEFAULT_WORKLOAD if workload is None else workload)
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    seed = profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))

    uncached, baseline_fp = run_plan_workload(
        seed, enabled=False, workload=workload
    )
    cached, cached_fp = run_plan_workload(
        seed, enabled=True, workload=workload
    )
    identical = baseline_fp == cached_fp
    speedup = (
        uncached["seconds"] / cached["seconds"] if cached["seconds"] else None
    )
    return {
        "benchmark": "plan_cache_repeated_burst",
        "workload": workload,
        "uncached": uncached,
        "cached": cached,
        "speedup": round(speedup, 2) if speedup else None,
        "min_speedup": MIN_SPEEDUP,
        "identical_schemas": identical,
    }


def check_report(
    report: dict, baseline: dict | None, tolerance: float
) -> list[str]:
    """Return regression errors (empty list = pass)."""
    errors = []
    if not report["identical_schemas"]:
        errors.append(
            "exactness contract violated: cached schemas differ from uncached"
        )
    speedup = report["speedup"] or 0.0
    if speedup < MIN_SPEEDUP:
        errors.append(
            f"cached-plan speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.0f}x acceptance floor"
        )
    if baseline is not None:
        base = float(baseline.get("speedup") or 0.0)
        floor = base * (1.0 - tolerance)
        if speedup < floor:
            errors.append(
                f"cached-plan speedup regressed: {speedup:.2f}x vs baseline "
                f"{base:.2f}x (floor {floor:.2f}x at tolerance {tolerance:.0%})"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_plan_cache.json)",
    )
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline JSON to gate against (fails on >tolerance regression)",
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--ranks", type=int, default=DEFAULT_WORKLOAD["ranks"])
    parser.add_argument(
        "--bursts", type=int, default=DEFAULT_WORKLOAD["bursts"]
    )
    args = parser.parse_args(argv)

    workload = dict(
        DEFAULT_WORKLOAD, ranks=args.ranks, bursts=args.bursts
    )
    report = generate_report(workload)
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)

    baseline = None
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
    errors = check_report(report, baseline, args.tolerance)
    for error in errors:
        print(f"REGRESSION: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
