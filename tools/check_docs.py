#!/usr/bin/env python
"""Documentation checks: links, runnable snippets, CLI help drift.

Run from the repository root (CI's docs job does)::

    PYTHONPATH=src python tools/check_docs.py            # run every check
    PYTHONPATH=src python tools/check_docs.py --update-golden

Three checks, each also importable for the pytest wrapper
(``tests/test_docs.py``):

* **check_links** — every relative markdown link in the repo's ``*.md``
  files (root + ``docs/``) resolves to an existing file or directory.
* **check_snippets** — every ```` ```pycon ```` block in README.md and
  ``docs/*.md`` runs under doctest (so the documented telemetry examples
  cannot rot), and every ```` ```python ```` block at least compiles.
* **check_cli_help** — ``hcompress --help`` (and each subcommand's help)
  matches the committed golden files in ``tests/golden/`` at a fixed
  80-column width. Regenerate with ``--update-golden`` after an
  intentional CLI change; unexplained drift means README/docs and the
  parser disagree.
* **check_orphans** — every page under ``docs/`` is reachable from
  README.md (directly, or via a page README links). An orphan page is a
  page nobody can discover; link it or delete it.
"""

from __future__ import annotations

import argparse
import contextlib
import doctest
import io
import os
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO / "tests" / "golden"

#: Markdown files whose links are checked.
DOC_FILES = sorted(REPO.glob("*.md")) + sorted((REPO / "docs").glob("*.md"))

#: Files whose ```pycon blocks must pass doctest.
SNIPPET_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

#: CLI help surfaces pinned by golden files ("" is the top-level parser).
HELP_SUBCOMMANDS = (
    "", "profile", "codecs", "report", "demo", "chaos", "checkpoint",
    "recover", "fsck", "lifecycle", "replication", "stats", "metrics",
    "trace",
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def check_links() -> list[str]:
    """Every relative link target in the doc set exists on disk."""
    errors = []
    for doc in DOC_FILES:
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def _fences(text: str, language: str) -> list[str]:
    return [body for lang, body in _FENCE_RE.findall(text) if lang == language]


def check_snippets() -> list[str]:
    """```pycon blocks pass doctest; ```python blocks compile."""
    errors = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    for doc in SNIPPET_FILES:
        text = doc.read_text()
        rel = doc.relative_to(REPO)
        for i, block in enumerate(_fences(text, "pycon")):
            test = parser.get_doctest(block, {}, f"{rel}[pycon #{i}]", str(rel), 0)
            out = io.StringIO()
            result = runner.run(test, out=out.write)
            if result.failed:
                errors.append(
                    f"{rel}: pycon block #{i} failed doctest:\n{out.getvalue()}"
                )
        for i, block in enumerate(_fences(text, "python")):
            try:
                compile(block, f"{rel}[python #{i}]", "exec")
            except SyntaxError as exc:
                errors.append(f"{rel}: python block #{i} does not compile: {exc}")
    return errors


def _render_help(subcommand: str) -> str:
    """The CLI's help text at a deterministic 80-column width."""
    os.environ["COLUMNS"] = "80"
    from repro.cli import build_parser

    argv = [subcommand, "--help"] if subcommand else ["--help"]
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        try:
            build_parser().parse_args(argv)
        except SystemExit:
            pass
    return out.getvalue()


def _golden_path(subcommand: str) -> Path:
    return GOLDEN_DIR / f"help_{subcommand or 'hcompress'}.txt"


def check_cli_help() -> list[str]:
    """Live ``--help`` output matches the committed golden files."""
    errors = []
    for sub in HELP_SUBCOMMANDS:
        golden = _golden_path(sub)
        if not golden.exists():
            errors.append(f"missing golden file {golden.relative_to(REPO)}")
            continue
        live = _render_help(sub)
        if live != golden.read_text():
            errors.append(
                f"CLI help drift for {sub or 'top-level'!r}: update docs, "
                f"then regenerate with tools/check_docs.py --update-golden"
            )
    return errors


def check_orphans() -> list[str]:
    """Every ``docs/*.md`` page is reachable from README.md."""
    reachable: set[Path] = set()
    frontier = [REPO / "README.md"]
    while frontier:
        doc = frontier.pop()
        if doc in reachable or not doc.exists():
            continue
        reachable.add(doc)
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path or not path.endswith(".md"):
                continue
            frontier.append((doc.parent / path).resolve())
    return [
        f"docs/{page.name}: orphan page — not linked (even transitively) "
        "from README.md"
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.resolve() not in reachable
    ]


def update_golden() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for sub in HELP_SUBCOMMANDS:
        path = _golden_path(sub)
        path.write_text(_render_help(sub))
        print(f"wrote {path.relative_to(REPO)}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-golden", action="store_true",
        help="regenerate the CLI help golden files and exit",
    )
    args = parser.parse_args(argv)
    if args.update_golden:
        update_golden()
        return 0
    failures = 0
    for check in (check_links, check_snippets, check_cli_help, check_orphans):
        errors = check()
        status = "ok" if not errors else f"{len(errors)} problem(s)"
        print(f"{check.__name__}: {status}")
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        failures += len(errors)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
