#!/usr/bin/env python
"""Exception-hygiene lint: no silently swallowed errors.

Run from the repository root (CI's lint job does)::

    python tools/check_exceptions.py

Walks every ``*.py`` file under ``src/``, ``tools/``, ``benchmarks/``,
and ``tests/`` and flags, via the AST:

* **bare handlers** — ``except:`` with no exception type, always
  (they catch ``KeyboardInterrupt``/``SystemExit`` too);
* **silent broad handlers** — ``except Exception`` /
  ``except BaseException`` (alone or in a tuple) whose body neither
  re-``raise``s nor assigns/returns/calls anything — i.e. ``pass``-only
  suppression. A broad handler that records the error, converts it, or
  re-raises is fine; one that makes it vanish is not (the robustness
  postmortem classic: a typed failure the caller was owed, eaten).

Known-justified sites live in ``tools/exception_allowlist.txt`` as
``path:lineno  # why`` lines (paths relative to the repo root). The
allowlist is part of the review surface: adding a line means arguing the
swallow is correct, in the diff.

Importable for the pytest wrapper (``tests/test_tools.py``):
:func:`check_file` returns the violations for one source text,
:func:`main` runs the repo-wide pass.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Directories scanned (relative to the repo root).
SCAN_DIRS = ("src", "tools", "benchmarks", "tests")

ALLOWLIST_FILE = REPO / "tools" / "exception_allowlist.txt"

_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True when the handler catches Exception/BaseException (or a tuple
    containing one). A bare ``except:`` is reported separately."""
    node = handler.type
    if node is None:
        return False
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    return any(
        isinstance(e, ast.Name) and e.id in _BROAD_NAMES for e in elts
    )


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body only suppresses: no raise, no call, no
    assignment, no return/continue/break — nothing the error influenced."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(
                node,
                (
                    ast.Raise, ast.Call, ast.Assign, ast.AugAssign,
                    ast.AnnAssign, ast.Return, ast.Continue, ast.Break,
                    ast.Yield, ast.YieldFrom,
                ),
            ):
                return False
    return True


def check_file(source: str, path: str = "<string>") -> list[tuple[int, str]]:
    """Lint one source text; returns ``[(lineno, message), ...]``."""
    tree = ast.parse(source, filename=path)
    violations: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            violations.append(
                (node.lineno,
                 "bare 'except:' (catches KeyboardInterrupt/SystemExit; "
                 "name the exceptions)")
            )
        elif _is_broad(node) and _is_silent(node):
            violations.append(
                (node.lineno,
                 "broad handler silently swallows the error (no raise, "
                 "no logging, no conversion)")
            )
    return violations


def load_allowlist(path: Path = ALLOWLIST_FILE) -> set[tuple[str, int]]:
    """Parse ``path:lineno`` entries; blank lines and ``#`` comments skip."""
    entries: set[tuple[str, int]] = set()
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        file_part, _, lineno = line.rpartition(":")
        entries.add((file_part, int(lineno)))
    return entries


def iter_sources(repo: Path = REPO):
    for base in SCAN_DIRS:
        root = repo / base
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))


def main(argv: list[str] | None = None) -> int:
    allow = load_allowlist()
    failures = 0
    for path in iter_sources():
        rel = path.relative_to(REPO).as_posix()
        try:
            found = check_file(path.read_text(), rel)
        except SyntaxError as exc:
            print(f"{rel}: unparseable: {exc}")
            failures += 1
            continue
        for lineno, message in found:
            if (rel, lineno) in allow:
                continue
            print(f"{rel}:{lineno}: {message}")
            failures += 1
    if failures:
        print(f"\n{failures} exception-hygiene violation(s); "
              f"fix them or justify in {ALLOWLIST_FILE.name}")
        return 1
    print("check_exceptions: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
