#!/usr/bin/env python3
"""Quickstart: compress-and-place a buffer on a tiered hierarchy.

Builds an Ares-style RAM/NVMe/burst-buffer/PFS stack, feeds HCompress a
compressible scientific buffer, and shows the schema the HCDP engine chose
before reading the data back bit-exact.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HCompress, ares_hierarchy
from repro.units import GiB, MiB, fmt_bytes, fmt_seconds


def main() -> None:
    # A small hierarchy: 4 MiB RAM, 8 MiB NVMe, 1 GiB burst buffer, PFS.
    hierarchy = ares_hierarchy(
        ram_capacity=4 * MiB,
        nvme_capacity=8 * MiB,
        bb_capacity=1 * GiB,
        nodes=4,
    )
    print("Storage hierarchy:")
    print(hierarchy.describe())

    # Bootstrap the engine (runs the inline profiler to seed the cost model).
    print("\nBootstrapping HCompress (profiling the codec pool)...")
    engine = HCompress(hierarchy)

    # A gamma-distributed float64 buffer, quantised like real measurements.
    rng = np.random.default_rng(7)
    values = np.round(rng.gamma(2.0, 60.0, 1_000_000) * 4096) / 4096
    data = values.astype(np.float64).tobytes()
    print(f"\nInput: {fmt_bytes(len(data))} of float64 gamma data")

    result = engine.compress(data, task_id="demo")
    analysis = result.task.analysis
    print(
        f"Analyzer: dtype={analysis.dtype.value} "
        f"format={analysis.data_format.value} "
        f"distribution={analysis.distribution.value}"
    )
    print("\nSchema (one line per sub-task):")
    for piece in result.pieces:
        print(
            f"  offset={piece.plan.offset:>9}  {fmt_bytes(piece.plan.length):>10}"
            f"  tier={piece.tier:<12} codec={piece.plan.codec:<8}"
            f"  stored={fmt_bytes(piece.stored_size):>10}"
            f"  ratio={piece.actual_ratio:5.2f}"
        )
    print(
        f"\nStored {fmt_bytes(result.total_stored)} "
        f"(achieved ratio {result.achieved_ratio:.2f}); modeled "
        f"compression time {fmt_seconds(result.compress_seconds)}, "
        f"I/O time {fmt_seconds(result.io_seconds)}"
    )

    read = engine.decompress("demo")
    assert read.data == data, "round-trip mismatch!"
    print(
        f"Read back OK: {fmt_bytes(len(read.data))}, modeled decompression "
        f"{fmt_seconds(read.decompress_seconds)} + I/O "
        f"{fmt_seconds(read.io_seconds)}"
    )

    print("\nPer-tier footprint:", {
        name: fmt_bytes(used)
        for name, used in hierarchy.footprint_by_tier().items()
    })


if __name__ == "__main__":
    main()
