#!/usr/bin/env python3
"""VPIC checkpointing under the paper's four configurations (Fig. 7).

Simulates the VPIC-IO kernel — every rank writes a checkpoint per timestep
with CPU work in between — against BASE (vanilla PFS), STWC (static zlib
before the PFS), MTNC (Hermes buffering), and HC (HCompress), and prints
the resulting I/O times and speedups.

Run:  python examples/vpic_checkpoint.py [nprocs] [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import HCompressProfiler
from repro.experiments.fig7_vpic import (
    WRITE_PRIORITY,
    fig7_hierarchy,
    fig7_vpic_config,
)
from repro.experiments.common import make_backend
from repro.units import fmt_bytes
from repro.workloads import run_vpic


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 640
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    config = fig7_vpic_config(nprocs, scale)
    print(
        f"VPIC-IO: {nprocs} ranks x {config.timesteps} steps x "
        f"{fmt_bytes(config.bytes_per_rank_per_step)} "
        f"(paper config scaled 1/{scale})"
    )

    print("Profiling codec pool once (shared across configurations)...")
    seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed()
    rng = np.random.default_rng(1)

    results = {}
    for name in ("BASE", "STWC", "MTNC", "HC"):
        hierarchy = fig7_hierarchy(scale)
        backend = make_backend(
            name, hierarchy, priority=WRITE_PRIORITY, seed=seed
        )
        result = run_vpic(backend, config, hierarchy, rng=rng)
        results[name] = result
        footprint = {
            tier: fmt_bytes(used)
            for tier, used in result.footprint_by_tier.items()
            if used
        }
        print(
            f"  {name:5s} io={result.io_seconds:8.2f}s "
            f"elapsed={result.elapsed_seconds:8.2f}s "
            f"ratio={result.achieved_ratio:5.2f}  footprint={footprint}"
        )

    base = results["BASE"].io_seconds
    print("\nSpeedup over BASE (I/O time, the paper's Fig. 7 metric):")
    for name in ("STWC", "MTNC", "HC"):
        print(f"  {name:5s} {base / results[name].io_seconds:6.2f}x")
    print("\nPaper bands at 2560 ranks: STWC ~1.5x, MTNC ~2x, HC ~12x.")


if __name__ == "__main__":
    main()
