#!/usr/bin/env python3
"""Producer-consumer workflow: VPIC writes, BD-CATS reads (Fig. 8).

Shows why read-after-write patterns benefit most from hierarchical
compression: the consumer finds compressed data sitting higher in the
hierarchy, so both the bytes moved and the tier they come from improve.

Run:  python examples/workflow_analysis.py [nprocs] [scale]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import HCompressProfiler
from repro.experiments.common import make_backend
from repro.experiments.fig7_vpic import fig7_hierarchy, fig7_vpic_config
from repro.hcdp import EQUAL
from repro.units import fmt_bytes
from repro.workloads import BdcatsConfig, WorkflowConfig, run_workflow


def main() -> None:
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 640
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    vpic = fig7_vpic_config(nprocs, scale)
    config = WorkflowConfig(
        vpic=vpic,
        bdcats=BdcatsConfig(
            nprocs=nprocs,
            timesteps=vpic.timesteps,
            cluster_seconds=30.0 / scale,
        ),
    )
    print(
        f"Workflow: VPIC writes {vpic.timesteps} steps, BD-CATS reads them "
        f"back ({nprocs} ranks, scaled 1/{scale})"
    )
    seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed()
    rng = np.random.default_rng(1)

    rows = {}
    for name in ("BASE", "STWC", "MTNC", "HC"):
        hierarchy = fig7_hierarchy(scale)
        backend = make_backend(name, hierarchy, priority=EQUAL, seed=seed)
        result = run_workflow(backend, config, hierarchy, rng=rng)
        rows[name] = result
        print(
            f"  {name:5s} write={result.write.elapsed_seconds:8.2f}s "
            f"read={result.read.elapsed_seconds:8.2f}s "
            f"total={result.elapsed_seconds:8.2f}s"
        )
        by_tier = result.read.read_by_tier
        if by_tier:
            print(
                "         consumer read from: "
                + ", ".join(
                    f"{tier}={fmt_bytes(n)}" for tier, n in by_tier.items()
                )
            )

    base = rows["BASE"].elapsed_seconds
    print("\nWorkflow speedup over BASE:")
    for name in ("STWC", "MTNC", "HC"):
        print(f"  {name:5s} {base / rows[name].elapsed_seconds:6.2f}x")
    print("\nPaper: STWC ~1.5x, MTNC ~2.5x; HCompress ~7x over both.")


if __name__ == "__main__":
    main()
