#!/usr/bin/env python3
"""The profiler-seed lifecycle (paper §IV-A): profile once, reuse forever.

Runs the HCompress Profiler over the predefined corpus, writes the JSON
seed, bootstraps an engine from the file, does some work, and finalizes —
which writes the evolved model state back for the next run.

Run:  python examples/profiler_seed.py [seed.json]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro.ccp import load_seed, save_seed
from repro.core import HCompress, HCompressConfig, HCompressProfiler
from repro.core.api import hcompress_session
from repro.datagen import synthetic_buffer
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB


def main() -> None:
    seed_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/tmp/hcompress_seed.json")
    hierarchy = ares_hierarchy(1 * MiB, 2 * MiB, 1 * GiB, nodes=2)

    if not seed_path.exists():
        print("No seed on disk: running the profiler (HP) ...")
        t0 = time.perf_counter()
        profiler = HCompressProfiler(rng=np.random.default_rng(0))
        seed = profiler.generate_seed(
            hierarchy=hierarchy, sizes=(8 * KiB, 32 * KiB)
        )
        save_seed(seed, seed_path)
        print(
            f"  profiled {len(seed.observations)} observations in "
            f"{time.perf_counter() - t0:.1f}s -> {seed_path}"
        )
    else:
        print(f"Reusing existing seed {seed_path}")

    seed = load_seed(seed_path)
    print(
        f"Seed: {len(seed.observations)} observations, system signature "
        f"covers {sorted(seed.system_signature) or 'nothing yet'}"
    )

    t0 = time.perf_counter()
    engine = HCompress(
        hierarchy, HCompressConfig(seed_path=seed_path)
    )
    print(f"Engine bootstrap from file took {time.perf_counter() - t0:.2f}s")

    rng = np.random.default_rng(5)
    with hcompress_session(engine, seed_path=seed_path) as session:
        for i in range(8):
            data = synthetic_buffer("float64", "gamma", 64 * KiB, rng)
            session.compress(data, task_id=f"work-{i}")
        accuracy = session.accuracy()
        print(
            "Model accuracy after this run:",
            f"{accuracy:.3f}" if accuracy is not None else "warming up",
        )
    print(f"Session finalized; evolved seed written back to {seed_path}")


if __name__ == "__main__":
    main()
