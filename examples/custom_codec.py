#!/usr/bin/env python3
"""Extending the pool: register a custom codec and let the engine use it.

The paper's Compression Library Pool is explicitly extensible (§IV-G1:
"easily add new libraries ... without changing existing code of the
caller"). This example registers a delta-transform + zlib codec that is
strong on smooth time series, profiles it alongside the stock roster, and
shows the HCDP engine weighing it in its choice set. The pool only
supplies options — the engine still optimises: pure-archival priority
picks whatever squeezes hardest, and balanced weights on a roomy fast
tier may legitimately skip compression altogether.

Run:  python examples/custom_codec.py
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.codecs import Codec, CodecMeta, CompressionLibraryPool, register_codec
from repro.codecs.profiles import NOMINAL_PROFILES, CodecProfile
from repro.core import HCompress, HCompressConfig, HCompressProfiler
from repro.errors import CorruptDataError
from repro.hcdp import ARCHIVAL_IO
from repro.tiers import ares_hierarchy
from repro.units import GiB, MiB


@register_codec
class DeltaZlibCodec(Codec):
    """Byte-wise delta transform followed by DEFLATE.

    Smooth numeric series turn into near-constant byte deltas, which
    DEFLATE then crushes — a classic trick for sensor/time-series data.
    """

    meta = CodecMeta(name="deltazlib", codec_id=64, family="dictionary")

    def compress(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8)
        # Prepend zero so the first delta carries arr[0]; uint8 wraparound
        # is inverted exactly by the uint8 cumulative sum on decode.
        delta = np.diff(arr, prepend=np.uint8(0)).astype(np.uint8)
        return zlib.compress(delta.tobytes(), 6)

    def decompress(self, payload: bytes) -> bytes:
        try:
            delta = np.frombuffer(zlib.decompress(payload), dtype=np.uint8)
        except zlib.error as exc:
            raise CorruptDataError(f"deltazlib: {exc}") from exc
        return np.cumsum(delta, dtype=np.uint8).tobytes()


def main() -> None:
    # Nominal performance for the simulator's time accounting.
    NOMINAL_PROFILES["deltazlib"] = CodecProfile(
        "deltazlib", compress_mbps=80.0, decompress_mbps=300.0,
        ratio_hints={"normal": 4.0, "gamma": 4.0, "uniform": 1.2},
    )

    # A pool containing the paper's roster plus our codec.
    roster = CompressionLibraryPool().names[1:] + ("deltazlib",)
    pool = CompressionLibraryPool(roster)
    print(f"Pool roster: {', '.join(pool.names)}")

    # Smooth time-series data: a slow sine with measurement noise.
    rng = np.random.default_rng(3)
    t = np.linspace(0, 60, 500_000)
    series = (np.sin(t) * 100 + rng.normal(0, 0.5, t.size)).astype(np.float32)
    quantised = (np.round(series * 64) / 64).astype(np.float32)
    data = quantised.tobytes()

    print("\nMeasured ratios on the time series:")
    for name in ("zlib", "lz4", "deltazlib"):
        print(f"  {name:10s} {pool.measure(name, data).ratio:6.2f}")

    # Profile the extended pool and drive the engine with it.
    profiler = HCompressProfiler(pool, rng=np.random.default_rng(0))
    seed = profiler.quick_seed()
    hierarchy = ares_hierarchy(2 * MiB, 4 * MiB, 1 * GiB, nodes=2)
    engine = HCompress(
        hierarchy,
        HCompressConfig(priority=ARCHIVAL_IO, libraries=roster),
        seed=seed,
    )
    from repro.hcdp import Priority

    for label, priority in (
        ("archival (pure ratio)", ARCHIVAL_IO),
        ("balanced write", Priority(1.0, 1.0, 0.0)),
    ):
        engine.set_priority(priority)
        result = engine.compress(data, task_id=f"series-{label[:4]}")
        choice = ", ".join(
            f"{p.plan.codec}@{p.tier} (ratio {p.actual_ratio:.2f})"
            for p in result.pieces
        )
        print(f"  {label:22s} -> {choice}")
        restored = engine.decompress(result.task.task_id).data
        assert restored == data, "round-trip mismatch!"
    print("Round-trips OK.")


if __name__ == "__main__":
    main()
