#!/usr/bin/env python3
"""Workload priorities (Table II) steering the engine at runtime.

The same buffer, the same hierarchy, four different priorities — watch the
HCDP engine trade compression speed against ratio against decompression
speed, and swap priorities mid-run through the public API.

Run:  python examples/priority_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HCompress, HCompressProfiler
from repro.datagen import synthetic_buffer
from repro.hcdp import ARCHIVAL_IO, ASYNC_IO, EQUAL, READ_AFTER_WRITE
from repro.tiers import ares_hierarchy
from repro.units import GiB, KiB, MiB

PRIORITIES = [
    ("Asynchronous I/O  (wc=1, wr=0, wd=0)", ASYNC_IO),
    ("Archival I/O      (wc=0, wr=1, wd=0)", ARCHIVAL_IO),
    ("Read after write  (wc=.3, wr=.4, wd=.3)", READ_AFTER_WRITE),
    ("Equal             (wc=1, wr=1, wd=1)", EQUAL),
]


def main() -> None:
    rng = np.random.default_rng(11)
    data = synthetic_buffer("float64", "exponential", 512 * KiB, rng)
    seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed()

    # A tight fast tier over a slow shared tier: the regime where the
    # priority weights actually bite.
    hierarchy = ares_hierarchy(
        ram_capacity=256 * KiB, nvme_capacity=None, bb_capacity=64 * MiB,
        nodes=1,
    )
    engine = HCompress(hierarchy, seed=seed)

    print(f"Input: 512 KiB float64 exponential data\n")
    for label, priority in PRIORITIES:
        engine.set_priority(priority)
        result = engine.compress(data)
        pieces = ", ".join(
            f"{p.plan.codec}@{p.tier}" for p in result.pieces
        )
        print(
            f"{label}\n"
            f"    schema: {pieces}\n"
            f"    achieved ratio {result.achieved_ratio:5.2f}, modeled "
            f"compress {result.compress_seconds * 1e3:7.2f} ms\n"
        )
    print(
        "Async priority favours the fastest codecs (or none); archival "
        "chases pure footprint; the balanced presets land in between — "
        "exactly Table II's intent."
    )


if __name__ == "__main__":
    main()
