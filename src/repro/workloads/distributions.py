"""Re-export of :mod:`repro.datagen` under its historical location."""

from ..datagen import (
    DISTRIBUTIONS,
    DTYPES,
    corpus,
    synthetic_buffer,
    synthetic_text,
    synthetic_values,
)

__all__ = [
    "DISTRIBUTIONS",
    "DTYPES",
    "corpus",
    "synthetic_buffer",
    "synthetic_text",
    "synthetic_values",
]
