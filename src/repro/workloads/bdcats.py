"""BD-CATS-IO: the paper's analysis-read kernel (§V-C2).

BD-CATS reads the particle properties VPIC produced and runs a parallel
clustering algorithm over them. The I/O kernel is read-dominated: every
rank reads back the datasets of every timestep, then spends CPU time in
clustering. Sequenced after VPIC-IO it forms the paper's read-after-write
workflow (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import WorkloadError
from ..sim import IO, Delay, RankContext, Simulation, spawn_ranks
from .backends import IOBackend
from .vpic import vpic_task_id

__all__ = ["BdcatsConfig", "BdcatsRunResult", "run_bdcats"]


@dataclass(frozen=True)
class BdcatsConfig:
    """BD-CATS-IO parameters.

    Attributes:
        nprocs: Reader process count (matches the producer's in the paper).
        timesteps: Timesteps to read back.
        cluster_seconds: CPU time of the clustering pass per timestep.
        barrier_per_step: Synchronise between timesteps.
    """

    nprocs: int
    timesteps: int = 10
    cluster_seconds: float = 30.0
    barrier_per_step: bool = True

    def __post_init__(self) -> None:
        if self.nprocs < 1 or self.timesteps < 1:
            raise WorkloadError("nprocs and timesteps must be >= 1")


@dataclass
class BdcatsRunResult:
    """Outcome of one simulated BD-CATS-IO run."""

    config: BdcatsConfig
    backend_name: str
    elapsed_seconds: float
    tasks_read: int
    bytes_read: int
    read_by_tier: dict[str, int] = field(default_factory=dict)


def run_bdcats(
    backend: IOBackend,
    config: BdcatsConfig,
    hierarchy,
    trace=None,
    flush: bool = True,
) -> BdcatsRunResult:
    """Simulate BD-CATS reading the VPIC output through one backend.

    Assumes :func:`repro.workloads.vpic.run_vpic` already populated the
    backend with ``vpic/r{rank}/s{step}`` tasks for the same (nprocs,
    timesteps) grid.
    """
    from ..hermes.flusher import TierFlusher

    sim = Simulation(hierarchy, trace=trace)
    if flush and len(hierarchy) > 1:
        sim.add_process(TierFlusher(hierarchy).process(), daemon=True)
    tasks = [0]
    bytes_read = [0]
    read_by_tier: dict[str, int] = {}

    def program(ctx: RankContext):
        for step in range(config.timesteps):
            charge = backend.read(vpic_task_id(ctx.rank, step))
            tasks[0] += 1
            bytes_read[0] += charge.io_bytes
            for piece in charge.pieces:
                read_by_tier[piece.tier] = (
                    read_by_tier.get(piece.tier, 0) + piece.nbytes
                )
                yield IO(piece.tier, piece.nbytes, "read")
            if charge.cpu_seconds:
                yield Delay(charge.cpu_seconds)
            if config.cluster_seconds:
                yield Delay(config.cluster_seconds)
            if config.barrier_per_step:
                yield from ctx.barrier()

    spawn_ranks(sim, config.nprocs, program)
    elapsed = sim.run()
    return BdcatsRunResult(
        config=config,
        backend_name=backend.name,
        elapsed_seconds=elapsed,
        tasks_read=tasks[0],
        bytes_read=bytes_read[0],
        read_by_tier=read_by_tier,
    )
