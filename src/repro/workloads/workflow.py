"""Producer-consumer workflow: VPIC-IO followed by BD-CATS-IO (Fig. 8).

The paper sequences BD-CATS after VPIC finishes, both at 10 timesteps,
with HCompress configured to weight all three compression metrics equally
(the workflow both writes and reads). Total workflow time is the sum of the
two phases' simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .backends import IOBackend
from .bdcats import BdcatsConfig, BdcatsRunResult, run_bdcats
from .vpic import VpicConfig, VpicRunResult, run_vpic

__all__ = ["WorkflowConfig", "WorkflowResult", "run_workflow"]


@dataclass(frozen=True)
class WorkflowConfig:
    """Paired producer/consumer parameters."""

    vpic: VpicConfig
    bdcats: BdcatsConfig

    def __post_init__(self) -> None:
        if self.vpic.nprocs != self.bdcats.nprocs:
            raise WorkloadError("producer and consumer must use equal nprocs")
        if self.vpic.timesteps != self.bdcats.timesteps:
            raise WorkloadError("producer and consumer must use equal timesteps")

    @classmethod
    def paired(
        cls,
        nprocs: int,
        timesteps: int = 10,
        bytes_per_rank_per_step: int | None = None,
        **vpic_kwargs,
    ) -> "WorkflowConfig":
        """Convenience constructor with matching producer/consumer grids."""
        if bytes_per_rank_per_step is not None:
            vpic_kwargs["bytes_per_rank_per_step"] = bytes_per_rank_per_step
        return cls(
            vpic=VpicConfig(nprocs=nprocs, timesteps=timesteps, **vpic_kwargs),
            bdcats=BdcatsConfig(nprocs=nprocs, timesteps=timesteps),
        )


@dataclass
class WorkflowResult:
    """Outcome of the full write-then-read workflow."""

    write: VpicRunResult
    read: BdcatsRunResult

    @property
    def elapsed_seconds(self) -> float:
        return self.write.elapsed_seconds + self.read.elapsed_seconds

    @property
    def backend_name(self) -> str:
        return self.write.backend_name


def run_workflow(
    backend: IOBackend,
    config: WorkflowConfig,
    hierarchy,
    rng: np.random.Generator | None = None,
) -> WorkflowResult:
    """Run VPIC-IO then BD-CATS-IO against one backend/hierarchy pair."""
    write = run_vpic(backend, config.vpic, hierarchy, rng=rng)
    read = run_bdcats(backend, config.bdcats, hierarchy)
    return WorkflowResult(write=write, read=read)
