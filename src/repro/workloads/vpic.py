"""VPIC-IO: the paper's checkpoint-write kernel (§V-C1).

Each MPI process writes eight float32 properties for its particles at the
end of every timestep (256 MB per process per step in Fig. 7), with a
CPU-intensive kernel between checkpoints (the paper inserts random matrix
multiplications at 60-second intervals). The workload is write-only, so the
paper configures HCompress to prioritise compression time and ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analyzer import DataFormat, DataType, Distribution, MetadataHints
from ..errors import WorkloadError
from ..formats.records import make_particles
from ..sim import IO, Delay, RankContext, Simulation, spawn_ranks
from ..units import KiB, MiB
from .backends import IOBackend

__all__ = ["VpicConfig", "VpicRunResult", "vpic_sample", "run_vpic", "vpic_task_id"]

#: Analyzer fast-path hints for VPIC particle buffers: self-described
#: float32 properties whose momentum components dominate (normal-ish).
VPIC_HINTS = MetadataHints(
    dtype=DataType.FLOAT32,
    data_format=DataFormat.H5LITE,
    distribution=Distribution.NORMAL,
)


@dataclass(frozen=True)
class VpicConfig:
    """VPIC-IO parameters.

    Attributes:
        nprocs: MPI process count (the paper scales 320 -> 2560).
        timesteps: Checkpoint count (10 in Figs. 7/8).
        bytes_per_rank_per_step: Modeled checkpoint size per rank
            (256 MiB in Fig. 7).
        compute_seconds: CPU kernel between checkpoints (60 s).
        compute_jitter: Relative spread of per-rank compute time (real
            ranks never finish compute in lockstep; the spread is what
            lets later-arriving ranks observe storage contention).
        sample_bytes: Size of the real representative buffer each rank
            compresses (ratio measurement).
        barrier_per_step: Synchronise ranks between timesteps, as the
            bulk-synchronous original does.
    """

    nprocs: int
    timesteps: int = 10
    bytes_per_rank_per_step: int = 256 * MiB
    compute_seconds: float = 60.0
    compute_jitter: float = 0.2
    sample_bytes: int = 64 * KiB
    barrier_per_step: bool = True

    def __post_init__(self) -> None:
        if self.nprocs < 1 or self.timesteps < 1:
            raise WorkloadError("nprocs and timesteps must be >= 1")
        if self.bytes_per_rank_per_step < 1:
            raise WorkloadError("bytes_per_rank_per_step must be >= 1")
        if self.sample_bytes < 1:
            raise WorkloadError("sample_bytes must be >= 1")
        if not 0.0 <= self.compute_jitter < 1.0:
            raise WorkloadError("compute_jitter must be in [0, 1)")

    @property
    def total_bytes(self) -> int:
        return self.nprocs * self.timesteps * self.bytes_per_rank_per_step


@dataclass
class VpicRunResult:
    """Outcome of one simulated VPIC-IO run."""

    config: VpicConfig
    backend_name: str
    elapsed_seconds: float
    tasks_written: int
    bytes_written: int
    stored_bytes: int
    compression_seconds_total: float = 0.0
    footprint_by_tier: dict[str, int] = field(default_factory=dict)

    @property
    def achieved_ratio(self) -> float:
        return self.bytes_written / self.stored_bytes if self.stored_bytes else 1.0

    @property
    def io_seconds(self) -> float:
        """Elapsed time minus the (serial) compute phases.

        This is the paper's Fig. 7 metric: "the I/O time for our baseline
        represents only the time required to write to the PFS for all the
        time steps" — compute intervals are excluded.
        """
        compute_total = self.config.timesteps * self.config.compute_seconds
        return max(self.elapsed_seconds - compute_total, 0.0)


def vpic_sample(nbytes: int, rng: np.random.Generator) -> bytes:
    """A real particle-record buffer of ``nbytes`` (32 B per particle)."""
    particles = max(nbytes // 32, 1)
    raw = make_particles(particles, rng).tobytes()
    if len(raw) < nbytes:
        raw += raw[: nbytes - len(raw)]
    return raw[:nbytes]


def vpic_task_id(rank: int, step: int) -> str:
    return f"vpic/r{rank}/s{step}"


def run_vpic(
    backend: IOBackend,
    config: VpicConfig,
    hierarchy,
    rng: np.random.Generator | None = None,
    trace=None,
    flush: bool = True,
    flusher=None,
) -> VpicRunResult:
    """Simulate the full VPIC-IO kernel against one backend.

    Returns elapsed simulated seconds and footprint accounting. Every rank
    shares one representative particle sample (their data is statistically
    identical), which keeps real compression work bounded.

    ``flush`` runs the asynchronous tier drainer (Hermes buffering
    semantics); it is a no-op for single-tier backends since only bounded
    upper tiers are ever drained. Pass a preconstructed ``flusher``
    (a :class:`~repro.hermes.flusher.TierFlusher`) to drain with custom
    watermarks or an observability sink; it must wrap ``hierarchy``.
    """
    from ..hermes.flusher import TierFlusher

    rng = rng if rng is not None else np.random.default_rng(0)
    sample = vpic_sample(config.sample_bytes, rng)
    sim = Simulation(hierarchy, trace=trace)
    if flush and len(hierarchy) > 1:
        if flusher is None:
            flusher = TierFlusher(hierarchy)
        sim.add_process(flusher.process(), daemon=True)
    stored_total = [0]
    tasks = [0]
    cpu_total = [0.0]

    jitter = rng.uniform(
        1.0 - config.compute_jitter,
        1.0 + config.compute_jitter,
        size=(config.nprocs, config.timesteps),
    )

    def program(ctx: RankContext):
        for step in range(config.timesteps):
            if config.compute_seconds:
                yield Delay(config.compute_seconds * jitter[ctx.rank, step])
            charge = backend.write(
                vpic_task_id(ctx.rank, step),
                config.bytes_per_rank_per_step,
                sample,
                hints=VPIC_HINTS,
            )
            stored_total[0] += charge.stored_size
            tasks[0] += 1
            cpu_total[0] += charge.cpu_seconds
            if charge.cpu_seconds:
                yield Delay(charge.cpu_seconds)
            for piece in charge.pieces:
                yield IO(piece.tier, piece.nbytes, "write")
            if config.barrier_per_step:
                yield from ctx.barrier()

    spawn_ranks(sim, config.nprocs, program)
    elapsed = sim.run()
    return VpicRunResult(
        config=config,
        backend_name=backend.name,
        elapsed_seconds=elapsed,
        tasks_written=tasks[0],
        bytes_written=config.total_bytes,
        stored_bytes=stored_total[0],
        compression_seconds_total=cpu_total[0],
        footprint_by_tier=hierarchy.footprint_by_tier(),
    )
