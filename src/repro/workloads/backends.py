"""I/O backends: one driver interface over every evaluated configuration.

The paper's Table IV compares four test cases — vanilla PFS (BASE),
single-tier with compression (STWC), multi-tiered without compression
(MTNC/Hermes), and HCompress (HC). A backend turns a workload's logical
write/read into *charges*: (tier, bytes, cpu seconds) triples the simulated
rank programs replay as ``Delay`` + ``IO`` requests. This keeps workload
code identical across configurations, exactly like relinking an
application against a different I/O middleware.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..analyzer import MetadataHints
from ..codecs.metadata import HEADER_SIZE
from ..codecs.pool import CompressionLibraryPool
from ..core.hcompress import HCompress
from ..errors import TierError, WorkloadError
from ..hashing import stable_hash32
from ..hermes.adapters import HermesWithStaticCompression
from ..hermes.buffering import HermesBuffering
from ..units import MB

__all__ = [
    "PieceCharge",
    "TaskCharge",
    "IOBackend",
    "PfsBaselineBackend",
    "StaticCompressionBackend",
    "HermesBackend",
    "HermesStaticBackend",
    "HCompressBackend",
]


@dataclass(frozen=True)
class PieceCharge:
    """One simulator-visible chunk of work."""

    tier: str
    nbytes: int
    cpu_seconds: float


@dataclass
class TaskCharge:
    """All charges for one logical task, plus footprint accounting."""

    task_id: str
    op: str
    pieces: list[PieceCharge] = field(default_factory=list)
    stored_size: int = 0

    @property
    def cpu_seconds(self) -> float:
        return sum(p.cpu_seconds for p in self.pieces)

    @property
    def io_bytes(self) -> int:
        return sum(p.nbytes for p in self.pieces)


class IOBackend(abc.ABC):
    """A storage configuration under test."""

    name: str = "backend"

    @abc.abstractmethod
    def write(
        self,
        task_id: str,
        size: int,
        sample: bytes,
        hints: MetadataHints | None = None,
    ) -> TaskCharge:
        """Accept one logical write of ``size`` modeled bytes."""

    @abc.abstractmethod
    def read(self, task_id: str) -> TaskCharge:
        """Read one previously written task back."""


class PfsBaselineBackend(IOBackend):
    """BASE: every byte goes straight to the PFS, uncompressed."""

    name = "BASE"

    def __init__(self, hierarchy, pfs_tier: str = "pfs") -> None:
        self.hierarchy = hierarchy
        self.pfs_tier = pfs_tier
        self._sizes: dict[str, int] = {}

    def write(self, task_id, size, sample, hints=None) -> TaskCharge:
        if task_id in self._sizes:
            raise WorkloadError(f"task {task_id!r} already written")
        tier = self.hierarchy.by_name(self.pfs_tier)
        tier.put(task_id, None, accounted_size=size)
        self._sizes[task_id] = size
        return TaskCharge(
            task_id,
            "write",
            [PieceCharge(self.pfs_tier, size, 0.0)],
            stored_size=size,
        )

    def read(self, task_id) -> TaskCharge:
        try:
            size = self._sizes[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        return TaskCharge(
            task_id,
            "read",
            [PieceCharge(self.pfs_tier, size, 0.0)],
            stored_size=size,
        )


class StaticCompressionBackend(IOBackend):
    """STWC: a single codec applied before writing to one tier (the PFS)."""

    name = "STWC"

    def __init__(self, hierarchy, codec: str = "zlib", pfs_tier: str = "pfs") -> None:
        self.hierarchy = hierarchy
        self.pool = CompressionLibraryPool()
        if codec not in self.pool.names:
            raise WorkloadError(f"codec {codec!r} not in pool")
        self.codec = codec
        self.pfs_tier = pfs_tier
        self._stored: dict[str, tuple[int, int]] = {}  # task -> (size, stored)
        self._ratio_cache: dict[int, float] = {}

    def _ratio(self, sample: bytes) -> float:
        if self.codec == "none" or not sample:
            return 1.0
        # Process-stable cache key (PYTHONHASHSEED-independent).
        key = stable_hash32(sample[:256]) ^ len(sample)
        cached = self._ratio_cache.get(key)
        if cached is None:
            payload = self.pool.codec(self.codec).compress(sample)
            cached = len(sample) / max(len(payload), 1)
            self._ratio_cache[key] = cached
        return cached

    def write(self, task_id, size, sample, hints=None) -> TaskCharge:
        if task_id in self._stored:
            raise WorkloadError(f"task {task_id!r} already written")
        ratio = self._ratio(sample)
        stored = max(int(size / max(ratio, 1e-9)), 1) + HEADER_SIZE
        stored = min(stored, size + HEADER_SIZE)  # codecs store raw on expansion
        tier = self.hierarchy.by_name(self.pfs_tier)
        tier.put(task_id, None, accounted_size=stored)
        self._stored[task_id] = (size, stored)
        profile = self.pool.profile(self.codec)
        cpu = size / (profile.compress_mbps * MB) if self.codec != "none" else 0.0
        return TaskCharge(
            task_id,
            "write",
            [PieceCharge(self.pfs_tier, stored, cpu)],
            stored_size=stored,
        )

    def read(self, task_id) -> TaskCharge:
        try:
            size, stored = self._stored[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        profile = self.pool.profile(self.codec)
        cpu = size / (profile.decompress_mbps * MB) if self.codec != "none" else 0.0
        return TaskCharge(
            task_id,
            "read",
            [PieceCharge(self.pfs_tier, stored, cpu)],
            stored_size=stored,
        )


class HermesBackend(IOBackend):
    """MTNC: Hermes multi-tier buffering, no compression."""

    name = "MTNC"

    def __init__(self, buffering: HermesBuffering) -> None:
        self.buffering = buffering

    def write(self, task_id, size, sample, hints=None) -> TaskCharge:
        record = self.buffering.put(task_id, size)
        return TaskCharge(
            task_id,
            "write",
            [PieceCharge(r.tier, r.stored_size, 0.0) for r in record.receipts],
            stored_size=record.total_stored,
        )

    def read(self, task_id) -> TaskCharge:
        record = self.buffering.task(task_id)
        charges = []
        for r in record.receipts:
            tier = self.buffering.locate(r.key)
            if tier is None:
                raise TierError(f"piece {r.key!r} missing from every tier")
            charges.append(PieceCharge(tier.spec.name, r.stored_size, 0.0))
        return TaskCharge(
            task_id, "read", charges, stored_size=record.total_stored
        )


class HermesStaticBackend(IOBackend):
    """Fig. 5 comparator: Hermes placement, then one static codec."""

    name = "HERMES+codec"

    def __init__(self, adapter: HermesWithStaticCompression) -> None:
        self.adapter = adapter
        self.name = f"HERMES+{adapter.codec_name}"

    def write(self, task_id, size, sample, hints=None) -> TaskCharge:
        record = self.adapter.put(task_id, size, sample)
        return TaskCharge(
            task_id,
            "write",
            [
                PieceCharge(r.tier, r.stored_size, r.compress_seconds)
                for r in record.receipts
            ],
            stored_size=record.total_stored,
        )

    def read(self, task_id) -> TaskCharge:
        record = self.adapter._task(task_id)
        profile = self.adapter.pool.profile(self.adapter.codec_name)
        charges = []
        for r in record.receipts:
            cpu = (
                r.nbytes / (profile.decompress_mbps * MB)
                if self.adapter.codec_name != "none"
                else 0.0
            )
            tier = self.adapter.hierarchy.find(r.key)
            if tier is None:
                raise TierError(f"piece {r.key!r} missing from every tier")
            charges.append(PieceCharge(tier.spec.name, r.stored_size, cpu))
        return TaskCharge(task_id, "read", charges, stored_size=record.total_stored)


class HCompressBackend(IOBackend):
    """HC: the full HCompress engine."""

    name = "HC"

    def __init__(self, engine: HCompress) -> None:
        self.engine = engine

    def write(self, task_id, size, sample, hints=None) -> TaskCharge:
        result = self.engine.compress(
            sample, hints=hints, modeled_size=size, task_id=task_id
        )
        return TaskCharge(
            task_id,
            "write",
            [
                PieceCharge(p.tier, p.stored_size, p.compress_seconds)
                for p in result.pieces
            ],
            stored_size=result.total_stored,
        )

    def read(self, task_id) -> TaskCharge:
        pieces = self.engine.manager.task_pieces(task_id)
        locations: list[tuple[str, int]] = []
        stored_total = 0
        for key, _modeled_length in pieces:
            tier = self.engine.shi.locate(key)
            if tier is None:
                raise TierError(f"piece {key!r} lost")
            accounted = tier.extent(key).accounted_size
            stored_total += accounted
            locations.append((tier.spec.name, accounted))
        # Modeled decompression time comes from the manager's read
        # accounting (per-piece codec looked up from the stored headers).
        read = self.engine.decompress(task_id)
        per_piece = read.decompress_seconds / len(locations) if locations else 0.0
        charges = [
            PieceCharge(tier_name, accounted, per_piece)
            for tier_name, accounted in locations
        ]
        return TaskCharge(task_id, "read", charges, stored_size=stored_total)
