"""HDF5-style micro-benchmark (paper §V-A2).

Mirrors the HDF5 source micro-benchmarks: every process writes an
independent but overall-contiguous block of a shared file, then reads it
back. Payloads are real h5lite-framed buffers of a chosen (dtype,
distribution) class, so the Input Analyzer's metadata fast path is
exercised exactly as it would be on HDF5 data. This is the workload behind
the internal-component evaluations (Figs. 3, 4, 5, 6).
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from ..analyzer import DataFormat, DataType, Distribution, MetadataHints
from ..errors import WorkloadError
from ..formats.h5lite import H5LiteWriter
from ..units import MiB
from ..datagen import synthetic_buffer

__all__ = [
    "MicroConfig",
    "MicroRunResult",
    "MicroTask",
    "h5lite_block",
    "micro_tasks",
    "run_micro",
]


@dataclass(frozen=True)
class MicroConfig:
    """Micro-benchmark parameters.

    Attributes:
        nprocs: Writer count.
        tasks_per_proc: Blocks written per process.
        task_bytes: Modeled block size (1 MiB in most of §V-B).
        dtype / distribution: Data class of the payload.
        sample_bytes: Real bytes materialised per distinct payload.
    """

    nprocs: int = 1
    tasks_per_proc: int = 128
    task_bytes: int = 1 * MiB
    dtype: str = "float64"
    distribution: str = "gamma"
    sample_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.nprocs < 1 or self.tasks_per_proc < 1:
            raise WorkloadError("nprocs and tasks_per_proc must be >= 1")
        if self.task_bytes < 1 or self.sample_bytes < 1:
            raise WorkloadError("task_bytes and sample_bytes must be >= 1")

    @property
    def total_tasks(self) -> int:
        return self.nprocs * self.tasks_per_proc

    @property
    def total_bytes(self) -> int:
        return self.total_tasks * self.task_bytes


@dataclass(frozen=True)
class MicroTask:
    """One micro-benchmark block."""

    task_id: str
    rank: int
    index: int
    size: int
    sample: bytes
    hints: MetadataHints


def h5lite_block(
    dtype: str, distribution: str, nbytes: int, rng: np.random.Generator
) -> bytes:
    """A real h5lite-framed buffer of the requested class.

    The container overhead is tiny relative to the payload, and the magic
    header is what routes the analyzer through its metadata fast path.
    """
    payload = synthetic_buffer(dtype, distribution, nbytes, rng)
    array = np.frombuffer(
        payload[: len(payload) - len(payload) % np.dtype(dtype).itemsize],
        dtype=dtype,
    )
    buffer = io.BytesIO()
    with H5LiteWriter(buffer) as writer:
        writer.write_dataset(
            "block", array, attrs={"distribution": distribution}
        )
    return buffer.getvalue()


def micro_tasks(
    config: MicroConfig, rng: np.random.Generator | None = None
) -> list[MicroTask]:
    """Materialise the benchmark's task list (shared sample per class)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    sample = h5lite_block(
        config.dtype, config.distribution, config.sample_bytes, rng
    )
    dtype_map = {
        "float64": DataType.FLOAT64,
        "float32": DataType.FLOAT32,
        "int64": DataType.INT64,
        "int32": DataType.INT32,
    }
    hints = MetadataHints(
        dtype=dtype_map.get(config.dtype, DataType.BYTES),
        data_format=DataFormat.H5LITE,
        distribution=Distribution(config.distribution),
    )
    out = []
    for rank in range(config.nprocs):
        for index in range(config.tasks_per_proc):
            out.append(
                MicroTask(
                    task_id=f"micro/r{rank}/b{index}",
                    rank=rank,
                    index=index,
                    size=config.task_bytes,
                    sample=sample,
                    hints=hints,
                )
            )
    return out


@dataclass
class MicroRunResult:
    """Outcome of one simulated micro-benchmark run."""

    config: "MicroConfig"
    backend_name: str
    elapsed_seconds: float
    tasks_done: int
    bytes_written: int
    stored_bytes: int
    compression_seconds_total: float
    footprint_by_tier: dict[str, int]

    @property
    def achieved_ratio(self) -> float:
        return self.bytes_written / self.stored_bytes if self.stored_bytes else 1.0

    @property
    def tasks_per_second(self) -> float:
        return self.tasks_done / self.elapsed_seconds if self.elapsed_seconds else 0.0


def run_micro(
    backend,
    config: MicroConfig,
    hierarchy,
    rng: np.random.Generator | None = None,
    read_back: bool = False,
    think_seconds: float = 0.0,
    flush: bool = True,
    trace=None,
) -> MicroRunResult:
    """Simulate the HDF5-style micro-benchmark against one backend.

    Every rank issues its blocks back to back (optionally separated by a
    jittered think time); with ``read_back`` each block is read and
    decompressed immediately after it is written (Fig. 6's task shape:
    "compressing and writing 512 KB and reading and decompressing it
    back").
    """
    from ..hermes.flusher import TierFlusher
    from ..sim import IO, Delay, Simulation, spawn_ranks

    rng = rng if rng is not None else np.random.default_rng(0)
    tasks = micro_tasks(config, rng)
    by_rank: dict[int, list[MicroTask]] = {}
    for task in tasks:
        by_rank.setdefault(task.rank, []).append(task)

    sim = Simulation(hierarchy, trace=trace)
    if flush and len(hierarchy) > 1:
        sim.add_process(TierFlusher(hierarchy).process(), daemon=True)
    stored_total = [0]
    done = [0]
    cpu_total = [0.0]
    jitter = rng.uniform(0.5, 1.5, size=len(tasks)) if think_seconds else None

    def program(ctx):
        for i, task in enumerate(by_rank[ctx.rank]):
            if think_seconds:
                yield Delay(think_seconds * jitter[task.rank * config.tasks_per_proc + i])
            charge = backend.write(task.task_id, task.size, task.sample, task.hints)
            stored_total[0] += charge.stored_size
            cpu_total[0] += charge.cpu_seconds
            if charge.cpu_seconds:
                yield Delay(charge.cpu_seconds)
            for piece in charge.pieces:
                yield IO(piece.tier, piece.nbytes, "write")
            if read_back:
                read = backend.read(task.task_id)
                cpu_total[0] += read.cpu_seconds
                for piece in read.pieces:
                    yield IO(piece.tier, piece.nbytes, "read")
                if read.cpu_seconds:
                    yield Delay(read.cpu_seconds)
            done[0] += 1

    spawn_ranks(sim, config.nprocs, program)
    elapsed = sim.run()
    return MicroRunResult(
        config=config,
        backend_name=getattr(backend, "name", "backend"),
        elapsed_seconds=elapsed,
        tasks_done=done[0],
        bytes_written=config.total_bytes,
        stored_bytes=stored_total[0],
        compression_seconds_total=cpu_total[0],
        footprint_by_tier=hierarchy.footprint_by_tier(),
    )
