"""Workloads: synthetic data, I/O backends, and the paper's kernels."""

from .backends import (
    HCompressBackend,
    HermesBackend,
    HermesStaticBackend,
    IOBackend,
    PfsBaselineBackend,
    PieceCharge,
    StaticCompressionBackend,
    TaskCharge,
)
from .bdcats import BdcatsConfig, BdcatsRunResult, run_bdcats
from .distributions import (
    DISTRIBUTIONS,
    DTYPES,
    corpus,
    synthetic_buffer,
    synthetic_text,
    synthetic_values,
)
from .hdf5_micro import (
    MicroConfig,
    MicroRunResult,
    MicroTask,
    h5lite_block,
    micro_tasks,
    run_micro,
)
from .vpic import VpicConfig, VpicRunResult, run_vpic, vpic_sample, vpic_task_id
from .workflow import WorkflowConfig, WorkflowResult, run_workflow

__all__ = [
    "BdcatsConfig",
    "BdcatsRunResult",
    "DISTRIBUTIONS",
    "DTYPES",
    "HCompressBackend",
    "HermesBackend",
    "HermesStaticBackend",
    "IOBackend",
    "MicroConfig",
    "MicroRunResult",
    "MicroTask",
    "PfsBaselineBackend",
    "PieceCharge",
    "StaticCompressionBackend",
    "TaskCharge",
    "VpicConfig",
    "VpicRunResult",
    "WorkflowConfig",
    "WorkflowResult",
    "corpus",
    "h5lite_block",
    "micro_tasks",
    "run_bdcats",
    "run_micro",
    "run_vpic",
    "run_workflow",
    "synthetic_buffer",
    "synthetic_text",
    "synthetic_values",
    "vpic_sample",
    "vpic_task_id",
]
