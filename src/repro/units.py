"""Byte-size and rate units, plus human-readable formatting helpers.

All sizes in the library are plain ``int`` bytes and all rates are ``float``
bytes/second; these constants keep call sites legible (``4 * MiB`` instead of
``4194304``) and the formatters keep reports legible.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB
TB: int = 1000 * GB

#: Alignment grain for HCDP sub-task splitting (paper §IV-F1: page size of RAM
#: and block size of NVMe devices; makes memoized sub-problems reusable).
PAGE: int = 4096

_BINARY_STEPS = ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB"))


def fmt_bytes(n: int | float) -> str:
    """Render a byte count with a binary suffix, e.g. ``fmt_bytes(3 * MiB)``
    -> ``'3.00 MiB'``. Negative counts keep their sign."""
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for step, suffix in _BINARY_STEPS:
        if n >= step:
            return f"{sign}{n / step:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def fmt_rate(bytes_per_s: float) -> str:
    """Render a throughput, e.g. ``fmt_rate(1.5 * GiB)`` -> ``'1.50 GiB/s'``."""
    return f"{fmt_bytes(bytes_per_s)}/s"


def fmt_seconds(t: float) -> str:
    """Render a duration adaptively (us / ms / s / min)."""
    if t < 0:
        return f"-{fmt_seconds(-t)}"
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.2f} ms"
    if t < 120.0:
        return f"{t:.2f} s"
    return f"{t / 60.0:.1f} min"


def align_up(n: int, grain: int = PAGE) -> int:
    """Round ``n`` up to the next multiple of ``grain`` (0 stays 0)."""
    if n < 0:
        raise ValueError(f"cannot align negative size {n}")
    if grain <= 0:
        raise ValueError(f"alignment grain must be positive, got {grain}")
    return ((n + grain - 1) // grain) * grain


def align_down(n: int, grain: int = PAGE) -> int:
    """Round ``n`` down to the previous multiple of ``grain``."""
    if n < 0:
        raise ValueError(f"cannot align negative size {n}")
    if grain <= 0:
        raise ValueError(f"alignment grain must be positive, got {grain}")
    return (n // grain) * grain


def is_aligned(n: int, grain: int = PAGE) -> bool:
    """True when ``n`` is a non-negative multiple of ``grain``."""
    return n >= 0 and n % grain == 0
