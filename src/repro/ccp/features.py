"""Feature encoding for the Compression Cost Predictor (paper §IV-D).

The model input is the categorical tuple the paper lists — data-type,
data-format, compression library, distribution — one-hot encoded, plus an
intercept and a log-size term (buffer size mildly affects achievable ratio
through per-block overheads). The encoding is fixed-width so one design
matrix serves both the batch seed fit and the online recursive updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analyzer import DataFormat, DataType, Distribution
from ..codecs import PAPER_LIBRARIES

__all__ = ["FeatureEncoder", "ObservationKey"]


@dataclass(frozen=True)
class ObservationKey:
    """The categorical coordinates of one cost observation."""

    dtype: str
    data_format: str
    distribution: str
    codec: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")


class FeatureEncoder:
    """Fixed-vocabulary reference-category (drop-first) encoder.

    Each categorical block encodes relative to its first vocabulary entry:
    the reference category contributes zeros and its level is carried by
    the intercept. Unknown values also encode as zeros, so the model
    predicts the reference/baseline level instead of losing an arbitrary
    share of the intercept — this keeps extrapolation to unseen formats
    (e.g. a new container type) sane.
    """

    def __init__(self, codecs: tuple[str, ...] | None = None) -> None:
        # Reference categories (first element, dropped from the encoding):
        # float64 / h5lite / uniform / none.
        self._dtypes = tuple(d.value for d in DataType)[1:]
        self._formats = tuple(f.value for f in DataFormat)[1:]
        self._distributions = tuple(d.value for d in Distribution)[1:]
        all_codecs = tuple(codecs) if codecs is not None else (
            "none",
            *PAPER_LIBRARIES,
        )
        self._codecs = all_codecs[1:]
        self._all_codecs = all_codecs
        # Interaction blocks: a codec's ratio depends jointly on the codec
        # and the data class (a block-sorter shines on skewed data where a
        # byte-LZ barely moves), which a purely additive basis cannot
        # express — this is the paper's "table ... for each combination of
        # the above data attributes", realised as a linear basis.
        self._cxd = len(self._codecs) * len(self._distributions)
        self._cxt = len(self._codecs) * len(self._dtypes)
        self._width = (
            1  # intercept
            + len(self._dtypes)
            + len(self._formats)
            + len(self._distributions)
            + len(self._codecs)
            + 1  # log2(size)
            + self._cxd
            + self._cxt
        )

    @property
    def width(self) -> int:
        return self._width

    @property
    def codecs(self) -> tuple[str, ...]:
        """The full codec roster (reference codec included)."""
        return self._all_codecs

    def encode(self, key: ObservationKey) -> np.ndarray:
        """Encode one observation key as a float64 feature row."""
        row = np.zeros(self._width, dtype=np.float64)
        row[0] = 1.0
        offset = 1
        indices: dict[str, int] = {}
        for name, vocab, value in (
            ("dtype", self._dtypes, key.dtype),
            ("format", self._formats, key.data_format),
            ("distribution", self._distributions, key.distribution),
            ("codec", self._codecs, key.codec),
        ):
            try:
                idx = vocab.index(value)
                row[offset + idx] = 1.0
                indices[name] = idx
            except ValueError:
                pass  # reference/unknown category: zero block
            offset += len(vocab)
        # Normalised log-size: 0 at 4 KiB, ~1 at 4 GiB.
        row[offset] = (math.log2(max(key.size, 1)) - 12.0) / 20.0
        offset += 1
        if "codec" in indices:
            c = indices["codec"]
            if "distribution" in indices:
                row[offset + c * len(self._distributions) + indices["distribution"]] = 1.0
            if "dtype" in indices:
                row[
                    offset + self._cxd + c * len(self._dtypes) + indices["dtype"]
                ] = 1.0
        return row

    def encode_batch(self, keys: list[ObservationKey]) -> np.ndarray:
        if not keys:
            return np.zeros((0, self._width), dtype=np.float64)
        return np.stack([self.encode(k) for k in keys])
