"""The reinforcement feedback loop (paper §IV-D).

Compressors report their actual measured cost after every operation; the
loop buffers these and, every ``every_n`` operations (n is configurable in
the paper), flushes the batch into the predictor's recursive-least-squares
heads. This is the mechanism that lifts the model's accuracy from ~83% on
drifted real data back to ~96%.
"""

from __future__ import annotations

from ..errors import ModelError
from .predictor import CompressionCostPredictor
from .seed import CostObservation

__all__ = ["FeedbackLoop"]


class FeedbackLoop:
    """Batched observation funnel into a :class:`CompressionCostPredictor`.

    Args:
        predictor: The model being refined.
        every_n: Flush cadence in recorded operations.
    """

    def __init__(
        self, predictor: CompressionCostPredictor, every_n: int = 16
    ) -> None:
        if every_n < 1:
            raise ModelError(f"every_n must be >= 1, got {every_n}")
        self.predictor = predictor
        self.every_n = every_n
        self._pending: list[CostObservation] = []
        self._events = 0
        self._flushes = 0

    @property
    def events(self) -> int:
        """Total observations recorded (flushed or pending)."""
        return self._events

    @property
    def flushes(self) -> int:
        return self._flushes

    @property
    def pending(self) -> int:
        return len(self._pending)

    def record(self, observation: CostObservation) -> bool:
        """Buffer one observation; flushes automatically at the cadence.

        Returns True when this record triggered a flush.
        """
        self._pending.append(observation)
        self._events += 1
        if len(self._pending) >= self.every_n:
            self.flush()
            return True
        return False

    def record_run(self, observations, count: int) -> bool:
        """Record ``count`` repetitions of one task's observations.

        State-identical to ``count`` sequential :meth:`record` passes in
        task-major order (batch run lanes re-emit one template's
        observation objects per task). When the whole run fits below the
        flush cadence the buffer grows in one extend; otherwise each
        observation records individually so flushes fire at exactly the
        sequential points. Returns True when any flush fired.
        """
        total = len(observations) * count
        if total == 0:
            return False
        if len(self._pending) + total < self.every_n:
            self._pending.extend(list(observations) * count)
            self._events += total
            return False
        flushed = False
        for _ in range(count):
            for observation in observations:
                if self.record(observation):
                    flushed = True
        return flushed

    def flush(self) -> int:
        """Push all pending observations into the model; returns the count."""
        count = len(self._pending)
        for observation in self._pending:
            self.predictor.observe(observation)
        self._pending.clear()
        if count:
            self._flushes += 1
        return count

    def accuracy(self) -> float | None:
        """Current mean model accuracy (Fig. 4(b)'s reported metric)."""
        return self.predictor.mean_accuracy()
