"""The Compression Cost Predictor (paper §IV-D).

Maintains three regression heads over the shared feature encoding — one per
component of the Expected Compression Cost 3-tuple (compression speed,
decompression speed, compression ratio). Targets are regressed in log2
space: codec speeds span two orders of magnitude, and the multiplicative
structure (codec x distribution effects) is additive there, which is what
lets a linear model reach the paper's ~95% accuracy.

Lifecycle: ``fit_seed`` performs the batch OLS fit on profiler
observations (reporting adjusted R^2 / p-values / F-statistic as the paper
does), then hands each head to recursive least squares so the feedback loop
can keep learning online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..monitor.stats import r_squared
from .features import FeatureEncoder, ObservationKey
from .linreg import OlsFitReport, OlsModel, RecursiveLeastSquares
from .seed import CostObservation

__all__ = ["ExpectedCompressionCost", "CompressionCostPredictor"]

_TARGETS = ("compress_mbps", "decompress_mbps", "ratio")
_ACCURACY_WINDOW = 512


@dataclass(frozen=True)
class ExpectedCompressionCost:
    """The ECC 3-tuple for one (input, codec) pair."""

    codec: str
    compress_mbps: float
    decompress_mbps: float
    ratio: float


class CompressionCostPredictor:
    """Three-headed linear cost model with online refinement."""

    def __init__(
        self, encoder: FeatureEncoder | None = None, lam: float = 1.0
    ) -> None:
        self.encoder = encoder if encoder is not None else FeatureEncoder()
        self._lam = lam
        self._heads: dict[str, RecursiveLeastSquares] = {}
        self._fit_reports: dict[str, OlsFitReport] = {}
        # Sliding (actual, predicted) pairs per target, for live accuracy.
        self._window: dict[str, list[tuple[float, float]]] = {
            t: [] for t in _TARGETS
        }
        self._observations_seen = 0
        # Inference cache: planning hammers the same (attributes, codec,
        # size) keys thousands of times between model updates; any update
        # invalidates everything.
        self._cache: dict[tuple, ExpectedCompressionCost] = {}
        # Whole-table cache for the HCDP engine's candidate construction:
        # one vectorized predict_batch per (feature key, size, roster),
        # reused until the model changes.
        self._table_cache: dict[tuple, tuple[ExpectedCompressionCost, ...]] = {}
        self.table_cache_hits = 0
        self.table_cache_misses = 0
        # Monotone model version: bumps on every parameter change (seed
        # fit, online observation, theta import). Consumers holding
        # model-derived state — cached ECC tables, cached plans — key on
        # it so retraining invalidates them exactly.
        self._version = 0

    # -- bootstrap ---------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return bool(self._heads)

    @property
    def fit_reports(self) -> dict[str, OlsFitReport]:
        """Batch-fit diagnostics per target (empty before fit_seed)."""
        return dict(self._fit_reports)

    @property
    def observations_seen(self) -> int:
        return self._observations_seen

    @property
    def model_version(self) -> int:
        """Monotone counter of parameter changes (fit/observe/import)."""
        return self._version

    def fit_seed(
        self, observations: list[CostObservation]
    ) -> dict[str, OlsFitReport]:
        """Batch-fit all heads from profiler observations."""
        if len(observations) < 8:
            raise ModelError(
                f"need >= 8 seed observations to fit, got {len(observations)}"
            )
        X = self.encoder.encode_batch([obs.key for obs in observations])
        reports = {}
        for target in _TARGETS:
            y = np.array(
                [math.log2(getattr(obs, target)) for obs in observations]
            )
            ols = OlsModel(self.encoder.width)
            reports[target] = ols.fit(X, y)
            self._heads[target] = RecursiveLeastSquares.from_ols(ols, lam=self._lam)
        self._fit_reports = reports
        self._observations_seen += len(observations)
        self._bump_version()
        return reports

    def _bump_version(self) -> None:
        self._version += 1
        self._cache.clear()
        self._table_cache.clear()

    # -- inference -----------------------------------------------------------

    def predict(self, key: ObservationKey) -> ExpectedCompressionCost:
        """ECC for one (input attributes, codec) pair.

        The identity codec is answered analytically (ratio exactly 1,
        memcpy-class speed) — the paper's c = 0 choice must never be
        distorted by model noise.
        """
        if key.codec == "none":
            return ExpectedCompressionCost("none", 12000.0, 12000.0, 1.0)
        if not self._heads:
            raise ModelError("predictor is not fitted; call fit_seed first")
        cache_key = (key.dtype, key.data_format, key.distribution, key.codec, key.size)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        x = self.encoder.encode(key)
        # Clamp the log-space heads: a pathological update must degrade
        # predictions, never overflow the exponential.
        values = {
            t: 2.0 ** min(max(self._heads[t].predict(x), -20.0), 20.0)
            for t in _TARGETS
        }
        ecc = ExpectedCompressionCost(
            codec=key.codec,
            compress_mbps=max(values["compress_mbps"], 0.1),
            decompress_mbps=max(values["decompress_mbps"], 0.1),
            ratio=max(values["ratio"], 0.05),
        )
        if len(self._cache) >= 4096:
            self._cache.clear()
        self._cache[cache_key] = ecc
        return ecc

    def predict_all(
        self,
        dtype: str,
        data_format: str,
        distribution: str,
        size: int,
        codecs: tuple[str, ...] | None = None,
    ) -> dict[str, ExpectedCompressionCost]:
        """ECC table over a codec roster for one input."""
        roster = codecs if codecs is not None else self.encoder.codecs
        return {
            codec: self.predict(
                ObservationKey(dtype, data_format, distribution, codec, size)
            )
            for codec in roster
        }

    def predict_batch(
        self, keys: list[ObservationKey]
    ) -> list[ExpectedCompressionCost]:
        """Vectorized ECC inference over many keys at once.

        Uncached keys are encoded into one design matrix and answered with
        a single ``X @ theta`` per head instead of per-key dot products —
        this is what keeps the HCDP engine's candidate-table construction
        O(1) matmuls per plan rather than O(codecs) scalar predictions.
        Results are folded into the same per-key cache the scalar
        :meth:`predict` path uses, so both paths answer any given key with
        one consistent value within a model version.
        """
        results: list[ExpectedCompressionCost | None] = [None] * len(keys)
        pending: list[tuple[int, ObservationKey, tuple]] = []
        for i, key in enumerate(keys):
            if key.codec == "none":
                results[i] = ExpectedCompressionCost("none", 12000.0, 12000.0, 1.0)
                continue
            cache_key = (
                key.dtype, key.data_format, key.distribution, key.codec, key.size
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                results[i] = cached
            else:
                pending.append((i, key, cache_key))
        if pending:
            if not self._heads:
                raise ModelError("predictor is not fitted; call fit_seed first")
            X = self.encoder.encode_batch([key for _, key, _ in pending])
            columns = {
                t: np.exp2(np.clip(X @ self._heads[t].theta, -20.0, 20.0))
                for t in _TARGETS
            }
            for row, (i, key, cache_key) in enumerate(pending):
                ecc = ExpectedCompressionCost(
                    codec=key.codec,
                    compress_mbps=max(float(columns["compress_mbps"][row]), 0.1),
                    decompress_mbps=max(float(columns["decompress_mbps"][row]), 0.1),
                    ratio=max(float(columns["ratio"][row]), 0.05),
                )
                if len(self._cache) >= 4096:
                    self._cache.clear()
                self._cache[cache_key] = ecc
                results[i] = ecc
        return results  # type: ignore[return-value]

    def candidate_table(
        self,
        dtype: str,
        data_format: str,
        distribution: str,
        size: int,
        codecs: tuple[str, ...],
    ) -> tuple[ExpectedCompressionCost, ...]:
        """ECC tuple over a codec roster, cached per model version.

        The HCDP engine calls this once per plan; within a model version
        repeated plans over the same (feature key, size, roster) are a
        single dict lookup.
        """
        table_key = (dtype, data_format, distribution, size, codecs)
        cached = self._table_cache.get(table_key)
        if cached is not None:
            self.table_cache_hits += 1
            return cached
        self.table_cache_misses += 1
        table = tuple(
            self.predict_batch(
                [
                    ObservationKey(dtype, data_format, distribution, codec, size)
                    for codec in codecs
                ]
            )
        )
        if len(self._table_cache) >= 1024:
            self._table_cache.clear()
        self._table_cache[table_key] = table
        return table

    def prefetch_tables(
        self,
        groups: list[tuple[str, str, str, int]],
        codecs: tuple[str, ...],
    ) -> int:
        """Warm the candidate-table cache for many planning groups at once.

        ``groups`` are ``(dtype, data_format, distribution, size)`` tuples
        — one per distinct (feature key, size bucket) a batch is about to
        plan. All missing tables are answered with a *single*
        :meth:`predict_batch` call (one design matrix, one matmul per
        head) instead of one per group; subsequent
        :meth:`candidate_table` lookups in the batch then hit the cache.
        The per-key values are identical to what per-group construction
        would produce, so warmed tables never change a plan. Returns the
        number of tables built; cache hit/miss counters are untouched —
        prefetching is a warm-up, not a lookup.
        """
        pending: list[tuple[tuple, tuple[str, str, str, int]]] = []
        for group in groups:
            dtype, data_format, distribution, size = group
            table_key = (dtype, data_format, distribution, size, codecs)
            if table_key not in self._table_cache:
                pending.append((table_key, group))
        if not pending:
            return 0
        keys = [
            ObservationKey(dtype, data_format, distribution, codec, size)
            for _, (dtype, data_format, distribution, size) in pending
            for codec in codecs
        ]
        eccs = self.predict_batch(keys)
        width = len(codecs)
        for n, (table_key, _) in enumerate(pending):
            table = tuple(eccs[n * width : (n + 1) * width])
            if len(self._table_cache) >= 1024:
                self._table_cache.clear()
            self._table_cache[table_key] = table
        return len(pending)

    # -- online learning (feedback loop target) ---------------------------------

    def observe(self, observation: CostObservation) -> None:
        """Fold one measured cost into every head (RLS update)."""
        if not self._heads:
            raise ModelError("predictor is not fitted; call fit_seed first")
        if observation.key.codec == "none":
            return  # identity is analytic; nothing to learn
        x = self.encoder.encode(observation.key)
        for target in _TARGETS:
            actual = math.log2(getattr(observation, target))
            predicted = self._heads[target].predict(x)
            window = self._window[target]
            window.append((actual, predicted))
            if len(window) > _ACCURACY_WINDOW:
                del window[: len(window) - _ACCURACY_WINDOW]
            self._heads[target].update(x, actual)
        self._observations_seen += 1
        self._bump_version()

    def accuracy(self, target: str = "ratio") -> float | None:
        """Sliding-window R^2 of a head's pre-update predictions.

        This is the paper's Fig. 4(b) accuracy metric. ``None`` until at
        least 8 observations have arrived.
        """
        if target not in _TARGETS:
            raise ModelError(f"unknown target {target!r}")
        window = self._window[target]
        if len(window) < 8:
            return None
        actual = np.array([a for a, _ in window])
        predicted = np.array([p for _, p in window])
        # Near-constant windows (one codec fed the same measurement over
        # and over) make R^2 meaningless — score by relative error instead.
        if float(actual.var()) < 1e-8:
            rel = float(np.mean(np.abs(actual - predicted))) / max(
                float(np.mean(np.abs(actual))), 1e-9
            )
            return max(0.0, 1.0 - rel)
        return r_squared(actual, predicted)

    def mean_accuracy(self) -> float | None:
        """Mean R^2 across all three heads (None until warmed up)."""
        scores = [self.accuracy(t) for t in _TARGETS]
        if any(s is None for s in scores):
            return None
        return float(np.mean([s for s in scores if s is not None]))

    # -- persistence ---------------------------------------------------------

    def export_theta(self) -> dict[str, list[float]]:
        """Model parameters for writing back into the JSON seed."""
        return {t: head.theta.tolist() for t, head in self._heads.items()}

    def import_theta(self, theta: dict[str, list[float]]) -> None:
        """Restore previously exported parameters (skips batch fitting)."""
        for target in _TARGETS:
            if target not in theta:
                raise ModelError(f"missing head {target!r} in imported parameters")
            vec = np.asarray(theta[target], dtype=np.float64)
            self._heads[target] = RecursiveLeastSquares(
                self.encoder.width, theta=vec, lam=self._lam, initial_p=1.0
            )
        self._bump_version()

    def restore_state(
        self,
        theta: dict[str, list[float]],
        model_version: int,
        observations_seen: int,
    ) -> None:
        """Adopt a checkpointed model wholesale (crash recovery).

        Beyond :meth:`import_theta`, this pins :attr:`model_version` and
        :attr:`observations_seen` to the checkpointed values so consumers
        keyed on the version (plan cache, ECC table caches) see one
        consistent, monotone counter across the restart. The version never
        moves backwards: a fresh engine whose construction already bumped
        past the snapshot keeps its larger value.
        """
        if model_version < 0 or observations_seen < 0:
            raise ModelError(
                "model_version and observations_seen must be >= 0"
            )
        self.import_theta(theta)
        self._version = max(self._version, model_version)
        self._observations_seen = max(
            self._observations_seen, observations_seen
        )
