"""Compression Cost Predictor: features, regression, feedback, seed I/O."""

from .features import FeatureEncoder, ObservationKey
from .feedback import FeedbackLoop
from .linreg import OlsFitReport, OlsModel, RecursiveLeastSquares
from .predictor import CompressionCostPredictor, ExpectedCompressionCost
from .seed import CostObservation, SeedData, load_seed, save_seed

__all__ = [
    "CompressionCostPredictor",
    "CostObservation",
    "ExpectedCompressionCost",
    "FeatureEncoder",
    "FeedbackLoop",
    "ObservationKey",
    "OlsFitReport",
    "OlsModel",
    "RecursiveLeastSquares",
    "SeedData",
    "load_seed",
    "save_seed",
]
