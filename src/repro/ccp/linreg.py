"""Ordinary and recursive least squares.

The paper uses dlib's linear regression and reports fit quality as adjusted
R^2, per-variable p-values, and an F-statistic; :class:`OlsModel` reproduces
all three. The feedback loop's online updates use classic recursive least
squares (:class:`RecursiveLeastSquares`) with an optional forgetting factor,
initialised from the batch fit so learning continues where the seed left
off.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..errors import ModelError

__all__ = ["OlsModel", "OlsFitReport", "RecursiveLeastSquares"]


class OlsFitReport:
    """Quality metrics of one OLS fit (paper §IV-D's reporting)."""

    def __init__(
        self,
        r2: float,
        adjusted_r2: float,
        f_statistic: float,
        p_values: np.ndarray,
        n_samples: int,
        n_features: int,
    ) -> None:
        self.r2 = r2
        self.adjusted_r2 = adjusted_r2
        self.f_statistic = f_statistic
        self.p_values = p_values
        self.n_samples = n_samples
        self.n_features = n_features

    def __repr__(self) -> str:
        return (
            f"<OlsFitReport R2={self.r2:.3f} adjR2={self.adjusted_r2:.3f} "
            f"F={self.f_statistic:.1f} n={self.n_samples}>"
        )


class OlsModel:
    """Least-squares linear model over a fixed-width feature space."""

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ModelError(f"feature width must be >= 1, got {width}")
        self.width = width
        self.theta: np.ndarray | None = None
        self.report: OlsFitReport | None = None

    @property
    def fitted(self) -> bool:
        return self.theta is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> OlsFitReport:
        """Fit by (regularised) least squares and compute fit diagnostics.

        A tiny ridge term keeps the normal equations well-posed when
        one-hot blocks are collinear with the intercept.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.width:
            raise ModelError(f"X must be (n, {self.width}), got {X.shape}")
        if y.shape != (X.shape[0],):
            raise ModelError(f"y must be ({X.shape[0]},), got {y.shape}")
        n, p = X.shape
        if n < 2:
            raise ModelError(f"need at least 2 samples to fit, got {n}")
        ridge = 1e-8 * np.eye(p)
        gram = X.T @ X + ridge
        self.theta = np.linalg.solve(gram, X.T @ y)

        predicted = X @ self.theta
        residual = y - predicted
        ss_res = float(residual @ residual)
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else (1.0 if ss_res == 0 else 0.0)

        # Effective model dof: rank of the design (one-hot blocks overlap
        # the intercept, so p overstates it).
        rank = int(np.linalg.matrix_rank(X))
        dof_model = max(rank - 1, 1)
        dof_resid = max(n - rank, 1)
        adjusted_r2 = 1.0 - (1.0 - r2) * (n - 1) / dof_resid
        if r2 < 1.0:
            f_stat = (r2 / dof_model) / ((1.0 - r2) / dof_resid)
        else:
            f_stat = float("inf")

        sigma2 = ss_res / dof_resid
        cov = sigma2 * np.linalg.inv(gram)
        se = np.sqrt(np.clip(np.diag(cov), 1e-300, None))
        t_vals = self.theta / se
        p_values = 2.0 * stats.t.sf(np.abs(t_vals), dof_resid)

        self.report = OlsFitReport(r2, adjusted_r2, f_stat, p_values, n, p)
        return self.report

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.theta is None:
            raise ModelError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            return float(X @ self.theta)  # type: ignore[return-value]
        return X @ self.theta


class RecursiveLeastSquares:
    """Online least squares with forgetting factor ``lam``.

    State: parameter vector ``theta`` and inverse-covariance-like matrix
    ``P``. Each :meth:`update` folds one observation in O(width^2) — this is
    the paper's "model learns and grows as the application runs".

    The default ``lam`` is 1.0 (no forgetting): with one-hot features, a
    forgetting factor < 1 inflates ``P`` exponentially along directions the
    data never excites (covariance windup), and after tens of thousands of
    updates a single observation in such a direction explodes the
    parameters. Callers that genuinely need drift tracking should pair
    ``lam < 1`` with persistently exciting inputs.
    """

    def __init__(
        self,
        width: int,
        theta: np.ndarray | None = None,
        lam: float = 1.0,
        initial_p: float = 1e3,
    ) -> None:
        if width < 1:
            raise ModelError(f"feature width must be >= 1, got {width}")
        if not 0.5 < lam <= 1.0:
            raise ModelError(f"forgetting factor must be in (0.5, 1], got {lam}")
        self.width = width
        self.lam = lam
        self.theta = (
            np.zeros(width) if theta is None else np.asarray(theta, dtype=np.float64)
        )
        if self.theta.shape != (width,):
            raise ModelError(f"theta must be ({width},), got {self.theta.shape}")
        self.P = np.eye(width) * initial_p
        self.updates = 0

    @classmethod
    def from_ols(cls, model: OlsModel, lam: float = 1.0) -> "RecursiveLeastSquares":
        """Continue learning from a batch fit (seed -> runtime handoff).

        ``initial_p`` is sized so fresh observations move the parameters
        noticeably faster than the seed's sample count alone would allow.
        """
        if not model.fitted:
            raise ModelError("cannot initialise RLS from an unfitted OLS model")
        return cls(model.width, theta=model.theta.copy(), lam=lam, initial_p=10.0)

    def predict(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        return float(x @ self.theta)

    def update(self, x: np.ndarray, y: float) -> float:
        """Fold in one observation; returns the pre-update prediction error."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.width,):
            raise ModelError(f"x must be ({self.width},), got {x.shape}")
        error = float(y) - float(x @ self.theta)
        px = self.P @ x
        denom = self.lam + float(x @ px)
        gain = px / denom
        self.theta = self.theta + gain * error
        self.P = (self.P - np.outer(gain, px)) / self.lam
        self.updates += 1
        return error
