"""JSON seed persistence (paper §IV-A/D).

The HCompress Profiler writes a JSON seed holding (a) cost observations
for every compression library over a variety of inputs and (b) a system
signature describing the benchmarked storage hierarchy. The main library
bootstraps its models from this file and writes the evolved model state
back at finalisation so future runs start warm.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..errors import SeedError
from .features import ObservationKey

__all__ = ["CostObservation", "SeedData", "load_seed", "save_seed"]

SEED_VERSION = 1


@dataclass(frozen=True)
class CostObservation:
    """One measured (or synthesised) codec cost point — the ECC 3-tuple."""

    key: ObservationKey
    compress_mbps: float
    decompress_mbps: float
    ratio: float

    def __post_init__(self) -> None:
        if self.compress_mbps <= 0 or self.decompress_mbps <= 0:
            raise SeedError("observation speeds must be positive")
        if self.ratio <= 0:
            raise SeedError(f"observation ratio must be positive, got {self.ratio}")


@dataclass
class SeedData:
    """Everything the profiler hands to the main library."""

    observations: list[CostObservation] = field(default_factory=list)
    system_signature: dict[str, dict[str, float]] = field(default_factory=dict)
    weights: dict[str, float] | None = None
    version: int = SEED_VERSION

    def validate(self) -> None:
        if self.version != SEED_VERSION:
            raise SeedError(
                f"unsupported seed version {self.version} (want {SEED_VERSION})"
            )


def save_seed(seed: SeedData, path: str | Path) -> None:
    """Serialise a seed to JSON (atomic enough for our purposes)."""
    seed.validate()
    doc = {
        "version": seed.version,
        "system_signature": seed.system_signature,
        "weights": seed.weights,
        "observations": [
            {**asdict(obs.key), **{
                "compress_mbps": obs.compress_mbps,
                "decompress_mbps": obs.decompress_mbps,
                "ratio": obs.ratio,
            }}
            for obs in seed.observations
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def load_seed(path: str | Path) -> SeedData:
    """Parse a JSON seed file, validating structure field by field."""
    path = Path(path)
    if not path.exists():
        raise SeedError(f"seed file {path} does not exist")
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SeedError(f"seed file {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise SeedError(f"seed file {path} must hold a JSON object")

    observations = []
    for i, row in enumerate(doc.get("observations", [])):
        try:
            key = ObservationKey(
                dtype=row["dtype"],
                data_format=row["data_format"],
                distribution=row["distribution"],
                codec=row["codec"],
                size=int(row["size"]),
            )
            observations.append(
                CostObservation(
                    key=key,
                    compress_mbps=float(row["compress_mbps"]),
                    decompress_mbps=float(row["decompress_mbps"]),
                    ratio=float(row["ratio"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SeedError(f"seed observation #{i} is malformed: {exc}") from exc

    seed = SeedData(
        observations=observations,
        system_signature=doc.get("system_signature", {}),
        weights=doc.get("weights"),
        version=int(doc.get("version", -1)),
    )
    seed.validate()
    return seed
