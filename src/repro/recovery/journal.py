"""Write-ahead journal of catalog mutations.

The Compression Manager's placement catalog (task id -> 16-byte sub-task
header tuples) is the state that makes acknowledged bytes readable; losing
it to a crash makes every stored piece unreachable. The :class:`Journal`
makes catalog mutations durable *before* they are acknowledged:

* **Framing** — each record is one length-prefixed, CRC32-framed JSON
  payload (``<u32 length><u32 crc32><payload>``). A frame is either wholly
  valid or the journal is cut at that point.
* **fsync-modeled batching** — :meth:`append` buffers records in memory;
  :meth:`sync` writes every buffered frame, flushes, and ``os.fsync``\\ s
  the descriptor. Records are durable only after a sync: a modeled crash
  (abandoning the object) loses exactly the unsynced suffix, which is what
  a real kernel would lose too. ``fsync_every`` batches syncs for
  group-commit write patterns.
* **Replay tolerance** — :func:`replay_journal` stops at the first torn or
  corrupted frame and reports the byte offset of the last intact record,
  so recovery after a mid-sync crash keeps every record that was fully
  synced. :meth:`Journal.open` repairs (truncates) a torn tail in place.
* **Idempotence** — records carry a monotone LSN and describe *state*, not
  deltas: applying a record twice leaves the catalog byte-identical (see
  :meth:`~repro.core.manager.CompressionManager.apply_journal_record`).
* **Shipping** — :meth:`Journal.add_observer` registers a synchronous
  per-record hook fired on every :meth:`append`, *before* the write is
  acknowledged. Replication rides this: a standby that persists each
  observed frame holds a superset of the primary's durable state (the
  primary's group-commit buffer is exactly what a crash loses locally).
  :class:`JournalCursor` is the pull-side complement: a resumable
  streaming reader over the on-disk frames for anti-entropy catch-up.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import JournalCorruptError, RecoveryError

__all__ = [
    "JOURNAL_NAME",
    "Journal",
    "JournalCursor",
    "JournalRecord",
    "JournalReplay",
    "replay_journal",
]

#: Default journal file name inside a recovery directory.
JOURNAL_NAME = "journal.wal"

#: Frame header: payload length, CRC32 of the payload.
_FRAME = struct.Struct("<II")
FRAME_HEADER_SIZE: int = _FRAME.size

#: Hard bound on one record's payload; a length field beyond this is
#: treated as frame corruption rather than an allocation request.
_MAX_PAYLOAD = 16 * 1024 * 1024

#: Record kinds the catalog understands.
RECORD_KINDS = ("commit", "evict")


@dataclass(frozen=True)
class JournalRecord:
    """One durable catalog mutation.

    Attributes:
        lsn: Monotone log sequence number (1-based, assigned on append).
        kind: ``"commit"`` (a task's pieces are all placed) or ``"evict"``
            (a task's pieces were released).
        task_id: The mutated catalog key.
        entries: For commits: the full catalog entry list, as
            ``(key, length, codec, crc32-or-None)`` tuples — optionally
            carrying a 5th element, the end-to-end content digest
            (``repro.scrub``). Empty for evictions. Digest-less entries
            serialize in the legacy 4-element form so journals written
            with digests off stay byte-identical to pre-digest builds.
    """

    lsn: int
    kind: str
    task_id: str
    entries: tuple[tuple[str, int, str, int | None], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise RecoveryError(f"unknown journal record kind {self.kind!r}")
        if self.lsn < 1:
            raise RecoveryError(f"journal LSN must be >= 1, got {self.lsn}")

    def to_payload(self) -> bytes:
        return json.dumps(
            {
                "lsn": self.lsn,
                "kind": self.kind,
                "task": self.task_id,
                "entries": [
                    list(entry[:4])
                    if len(entry) < 5 or entry[4] is None
                    else list(entry)
                    for entry in self.entries
                ],
            },
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "JournalRecord":
        try:
            raw = json.loads(payload.decode("utf-8"))
            entries = []
            for item in raw.get("entries", ()):
                k, length, codec, crc = item[:4]
                entry = (
                    str(k), int(length), str(codec),
                    None if crc is None else int(crc),
                )
                if len(item) > 4 and item[4] is not None:
                    entry += (int(item[4]),)
                entries.append(entry)
            return cls(
                lsn=int(raw["lsn"]),
                kind=str(raw["kind"]),
                task_id=str(raw["task"]),
                entries=tuple(entries),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise JournalCorruptError(
                f"journal record payload is malformed: {exc}"
            ) from exc

    def frame(self) -> bytes:
        payload = self.to_payload()
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class JournalReplay:
    """Outcome of scanning a journal file.

    Attributes:
        records: Every intact record, in write order.
        valid_bytes: File offset just past the last intact frame.
        truncated: True when the scan stopped before EOF (torn tail or a
            corrupted frame) — everything past ``valid_bytes`` is garbage.
        reason: Human-readable cause when ``truncated``.
    """

    records: list[JournalRecord] = field(default_factory=list)
    valid_bytes: int = 0
    truncated: bool = False
    reason: str | None = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def replay_journal(path: str | Path) -> JournalReplay:
    """Scan a journal file, tolerating a torn or corrupted tail.

    The scan walks frames from the start and stops at the first problem —
    a truncated frame header, a payload shorter than its length prefix, a
    CRC mismatch, or an undecodable payload. Everything before the bad
    frame is returned; everything at and after it is reported via
    ``truncated``/``reason`` and should be cut with :meth:`Journal.open`
    (or ignored). A missing file replays to an empty journal.
    """
    path = Path(path)
    result = JournalReplay()
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return result
    offset = 0
    while offset < len(blob):
        header = blob[offset : offset + FRAME_HEADER_SIZE]
        if len(header) < FRAME_HEADER_SIZE:
            result.truncated = True
            result.reason = f"torn frame header at offset {offset}"
            break
        length, crc = _FRAME.unpack(header)
        if length > _MAX_PAYLOAD:
            result.truncated = True
            result.reason = (
                f"frame at offset {offset} claims {length} bytes "
                f"(> {_MAX_PAYLOAD} cap); treating as corruption"
            )
            break
        start = offset + FRAME_HEADER_SIZE
        payload = blob[start : start + length]
        if len(payload) < length:
            result.truncated = True
            result.reason = f"torn payload at offset {offset}"
            break
        if zlib.crc32(payload) != crc:
            result.truncated = True
            result.reason = f"CRC mismatch at offset {offset}"
            break
        try:
            record = JournalRecord.from_payload(payload)
        except JournalCorruptError as exc:
            result.truncated = True
            result.reason = f"undecodable record at offset {offset}: {exc}"
            break
        result.records.append(record)
        offset = start + length
        result.valid_bytes = offset
    return result


class Journal:
    """Appendable write-ahead journal over one file.

    Args:
        path: Journal file; created if missing. An existing file is
            replayed at open so LSNs continue, and a torn tail (from a
            crash mid-sync) is truncated to the last intact record.
        fsync_every: Group-commit batch: :meth:`commit` forces a sync
            once this many records are buffered (1 = sync every record,
            the strictest durability).
        fsync: When False, skip the real ``os.fsync`` (still flushes).
            Test/bench knob; the durability *model* (buffer lost on
            crash, file kept) is unchanged.
        crashpoints: Optional crash-point arbiter; :meth:`sync` honours
            the ``journal.pre_sync`` and ``journal.torn_sync`` sites
            (the latter writes a *partial* frame before dying, producing
            a genuinely torn tail for recovery to repair).
    """

    def __init__(
        self,
        path: str | Path,
        fsync_every: int = 1,
        fsync: bool = True,
        crashpoints=None,
    ) -> None:
        if fsync_every < 1:
            raise RecoveryError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.fsync = fsync
        self.crashpoints = crashpoints
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.recovered = replay_journal(self.path)
        if self.recovered.truncated:
            # Repair in place: cut the torn tail so appends extend the
            # last intact record instead of burying garbage mid-file.
            with open(self.path, "r+b") as handle:
                handle.truncate(self.recovered.valid_bytes)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
        self._file = open(self.path, "ab")
        self._buffer: list[bytes] = []
        self._next_lsn = self.recovered.last_lsn + 1
        self._durable_lsn = self.recovered.last_lsn
        self.records_appended = 0
        self.syncs = 0
        self.bytes_synced = 0
        self._observers: list = []
        self._closed = False

    # -- shipping ------------------------------------------------------------

    def add_observer(self, callback) -> None:
        """Register a synchronous per-record hook: ``callback(record)``
        fires on every :meth:`append`, before the mutation is acked.

        Every appended record *is* an acknowledged catalog mutation
        (failed writes roll back before journaling), so an observer that
        persists each record sees strictly more than the local file does
        under group commit — the basis of synchronous WAL shipping.
        With no observers registered the append path is unchanged.
        """
        self._observers.append(callback)

    def remove_observer(self, callback) -> None:
        self._observers.remove(callback)

    # -- write path ----------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the newest appended record (durable or not)."""
        return self._next_lsn - 1

    @property
    def durable_lsn(self) -> int:
        """LSN of the newest record guaranteed on stable storage."""
        return self._durable_lsn

    @property
    def pending(self) -> int:
        """Appended-but-unsynced records (lost if the process dies now)."""
        return len(self._buffer)

    def ensure_lsn_floor(self, lsn: int) -> None:
        """Advance the LSN counters past ``lsn`` (no-op if already there).

        After a checkpoint compacts the journal to empty, the file alone
        no longer carries the LSN high-water mark — a reopen would hand
        out LSNs a snapshot already covers, and restore would silently
        skip those records. Restore re-seeds the floor from the
        snapshot's ``journal_lsn``; records at or below it are durable by
        virtue of the snapshot itself.
        """
        self._check_open()
        if lsn >= self._next_lsn:
            self._next_lsn = lsn + 1
        if lsn > self._durable_lsn:
            self._durable_lsn = lsn

    def append(
        self,
        kind: str,
        task_id: str,
        entries: tuple[tuple[str, int, str, int | None], ...] = (),
    ) -> JournalRecord:
        """Buffer one record (not yet durable); returns it with its LSN."""
        self._check_open()
        record = JournalRecord(self._next_lsn, kind, task_id, entries)
        self._buffer.append(record.frame())
        self._next_lsn += 1
        self.records_appended += 1
        if self._observers:
            for callback in self._observers:
                callback(record)
        return record

    def commit(
        self,
        kind: str,
        task_id: str,
        entries: tuple[tuple[str, int, str, int | None], ...] = (),
    ) -> JournalRecord:
        """Append one record and sync if the batch threshold is reached."""
        record = self.append(kind, task_id, entries)
        if len(self._buffer) >= self.fsync_every:
            self.sync()
        return record

    def sync(self) -> None:
        """Make every buffered record durable (write + flush + fsync)."""
        self._check_open()
        if not self._buffer:
            return
        if self.crashpoints is not None:
            self.crashpoints.reached("journal.pre_sync")
        data = b"".join(self._buffer)
        if self.crashpoints is not None and self.crashpoints.trigger(
            "journal.torn_sync"
        ):
            # Model a crash mid-write: half a frame reaches the platter.
            torn = data[: max(len(data) // 2, 1)]
            self._file.write(torn)
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._buffer.clear()
            self.crashpoints.die("journal.torn_sync")
        self._file.write(data)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.bytes_synced += len(data)
        self.syncs += 1
        self._durable_lsn = self._next_lsn - 1
        self._buffer.clear()

    def compact(self, keep_after_lsn: int) -> int:
        """Drop records with ``lsn <= keep_after_lsn`` (they are covered by
        a snapshot); returns how many records remain. Atomic: the surviving
        suffix is rewritten to a temp file and renamed over the journal.
        """
        self._check_open()
        self.sync()
        survivors = [
            r for r in replay_journal(self.path).records
            if r.lsn > keep_after_lsn
        ]
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            for record in survivors:
                handle.write(record.frame())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "ab")
        return len(survivors)

    def close(self) -> None:
        """Sync outstanding records and release the descriptor (idempotent)."""
        if self._closed:
            return
        self.sync()
        self._file.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RecoveryError(f"journal {self.path} is closed")


class JournalCursor:
    """Resumable streaming reader over a journal file's durable frames.

    Tracks ``(lsn, byte offset)`` across calls so each
    :meth:`read_new` returns only records not yet seen — the pull side
    of anti-entropy: a lagging standby replays the primary's tail from
    its own last-applied LSN. Only what the file holds is visible
    (synced frames; the primary's group-commit buffer is not), which is
    exactly the durable-state contract replay obeys.

    Robust against the two ways the file changes underneath a reader:

    * **Torn tail** — a partially-synced frame at the end stops the scan
      *without* advancing past it; the next call re-reads from the same
      offset and picks the frame up once it is whole.
    * **Compaction / floor re-seed** — :meth:`Journal.compact` rewrites
      the file and :meth:`Journal.ensure_lsn_floor` makes LSNs jump, so
      a remembered offset can point mid-frame or at an already-consumed
      record. The cursor validates the frame at its offset and falls
      back to a full rescan filtered by ``lsn > self.lsn`` whenever the
      offset stops making sense. LSNs are monotone within a file, so the
      filter is exact.

    Args:
        path: The journal file to follow (may not exist yet).
        after_lsn: Resume point — records with ``lsn <= after_lsn`` are
            never returned (a standby passes its last-applied LSN).
    """

    def __init__(self, path: str | Path, after_lsn: int = 0) -> None:
        self.path = Path(path)
        self.lsn = after_lsn
        self.offset = 0
        self._offset_valid = after_lsn == 0

    def read_new(self) -> list[JournalRecord]:
        """Every not-yet-seen intact record, in LSN order.

        Returns an empty list when the file is missing, unchanged, or
        ends in a torn frame right at the cursor. Advances the cursor
        past everything returned.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return []
        if not self._offset_valid or self.offset > len(blob):
            return self._rescan(blob)
        records, end, ok = self._scan(blob, self.offset)
        if not ok:
            return self._rescan(blob)
        out = [r for r in records if r.lsn > self.lsn]
        if len(out) != len(records):
            # Frames at the offset replay below our LSN: the file was
            # rewritten (compaction overlap); trust LSNs, not offsets.
            return self._rescan(blob)
        self.offset = end
        if out:
            self.lsn = out[-1].lsn
        return out

    def _rescan(self, blob: bytes) -> list[JournalRecord]:
        records, end, _ = self._scan(blob, 0)
        out = [r for r in records if r.lsn > self.lsn]
        self.offset = end
        self._offset_valid = True
        if out:
            self.lsn = out[-1].lsn
        return out

    @staticmethod
    def _scan(blob: bytes, start: int) -> tuple[list[JournalRecord], int, bool]:
        """Parse frames from ``start``; returns ``(records, end, ok)``.

        ``ok`` is False when ``start`` does not sit on a frame boundary
        (a mid-file parse failure — corruption or a stale offset);
        a clean stop at a *tail* problem (torn frame at EOF region)
        keeps ``ok`` True with ``end`` just before the torn frame.
        """
        records: list[JournalRecord] = []
        offset = start
        while offset < len(blob):
            header = blob[offset : offset + FRAME_HEADER_SIZE]
            if len(header) < FRAME_HEADER_SIZE:
                return records, offset, True  # torn header at the tail
            length, crc = _FRAME.unpack(header)
            if length > _MAX_PAYLOAD:
                return records, offset, offset + FRAME_HEADER_SIZE >= len(blob)
            payload = blob[offset + FRAME_HEADER_SIZE : offset + FRAME_HEADER_SIZE + length]
            if len(payload) < length:
                return records, offset, True  # torn payload at the tail
            if zlib.crc32(payload) != crc:
                # Tail frames may be torn mid-sync; anything earlier means
                # the offset was stale or the file was rewritten.
                return records, offset, offset + FRAME_HEADER_SIZE + length >= len(blob)
            try:
                record = JournalRecord.from_payload(payload)
            except JournalCorruptError:
                return records, offset, False
            if records and record.lsn <= records[-1].lsn:
                return records, offset, False  # LSNs must be monotone
            records.append(record)
            offset += FRAME_HEADER_SIZE + length
        return records, offset, True
