"""Named crash sites and the seeded plan that fires them.

The crash-consistency harness needs to kill the engine at *specific*
moments — after a piece is placed but before its catalog entry is
journaled, between the flusher's copy and its evict, halfway through a
journal sync. Components declare those moments as **crash sites** by
calling :meth:`Crashpoints.reached` (or the ``trigger``/``die`` pair for
sites with custom pre-death side effects, like writing a torn frame). A
:class:`CrashPlan` arms exactly one site per run, optionally on its Nth
hit, so a seeded sweep can cover every site deterministically.

Dying is modeled by raising :class:`~repro.errors.SimulatedCrashError`,
which nothing in the engine catches (it deliberately sits outside the
``TierError``/``CapacityError`` families every resilience path handles):
the exception unwinds through rollback and replan handlers untouched,
leaving exactly the state a ``kill -9`` would.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import RecoveryError, SimulatedCrashError

__all__ = ["CRASH_SITES", "CrashPlan", "Crashpoints"]

#: Every instrumented crash site, in rough write-path order. The harness
#: sweeps this list; docs/RECOVERY.md documents each one.
CRASH_SITES = (
    # CompressionManager.execute_write / evict_task
    "manager.write.prepared",      # plan accepted, before any piece lands
    "manager.write.piece_placed",  # after >=1 piece placed, before journal
    "manager.write.pre_journal",   # all pieces placed, journal not written
    "manager.write.post_journal",  # journal durable, before in-memory catalog
    "manager.evict.pre_journal",   # evict requested, nothing logged yet
    "manager.evict.post_journal",  # evict logged, tier frees not yet done
    # StorageHardwareInterface
    "shi.write.pre_put",           # before handing a piece to the tier
    "shi.write.post_put",          # piece on the tier, before returning
    "shi.write.failover",          # mid-failover, after >=1 candidate failed
    # TierFlusher drain step
    "flusher.pre_copy",            # victim chosen, nothing moved
    "flusher.post_copy",           # copied to destination, source not evicted
    "flusher.post_evict",          # source evicted, stats not yet updated
    # Journal internals
    "journal.pre_sync",            # records buffered, nothing on disk
    "journal.torn_sync",           # dies mid-write, leaving a torn tail
    # LifecycleDaemon migration step
    "lifecycle.pre_copy",          # victim scored, nothing moved yet
    "lifecycle.post_copy",         # re-encoded copies placed under new keys,
                                   # catalog/journal still point at the old
    "lifecycle.post_journal",      # journal re-commit durable, before the
                                   # in-memory catalog re-points
    "lifecycle.post_evict",        # old extents evicted, step not finished
    # Shard failover promotion (repro.shard.router.failover)
    "replication.pre_promote",     # standby chosen, nothing changed yet
    "replication.post_manifest",   # re-homed shard map durable, engine not
                                   # yet swapped in
    "replication.post_reroute",    # promoted engine wired + supervisor
                                   # flipped, demotion not started
    "replication.post_demote",     # old primary recycled + standbys
                                   # reseeded, failover not yet reported
    # Scrubber repair step (repro.scrub.scrubber)
    "scrub.pre_repair",            # mismatch confirmed, nothing changed yet
    "scrub.post_copy",             # healed copy placed under a new key,
                                   # catalog/journal still point at the old
    "scrub.post_journal",          # repair re-commit durable, before the
                                   # in-memory catalog re-points
    "scrub.post_evict",            # rotten extents evicted, stats not final
)


@dataclass(frozen=True)
class CrashPlan:
    """Seeded description of one scheduled crash.

    Attributes:
        site: Which :data:`CRASH_SITES` entry to arm.
        hit: Fire on the Nth time the site is reached (1-based), so a
            sweep can crash on the first write *and* the fortieth.
        seed: Recorded for provenance/reproduction; the plan itself is
            already deterministic, the seed names the sweep entry that
            generated it.
    """

    site: str
    hit: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in CRASH_SITES:
            raise RecoveryError(
                f"unknown crash site {self.site!r}; known: {', '.join(CRASH_SITES)}"
            )
        if self.hit < 1:
            raise RecoveryError(f"crash hit count must be >= 1, got {self.hit}")

    # -- JSON round-trip (same idiom as faults.FaultPlan) --------------------

    def to_dict(self) -> dict:
        return {"site": self.site, "hit": self.hit, "seed": self.seed}

    @classmethod
    def from_dict(cls, raw: dict) -> "CrashPlan":
        return cls(
            site=str(raw["site"]),
            hit=int(raw.get("hit", 1)),
            seed=int(raw.get("seed", 0)),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CrashPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class Crashpoints:
    """Runtime arbiter consulted at every instrumented site.

    One instance is threaded through the engine (manager, SHI, flusher,
    journal). With no plan armed every check is a dict lookup + compare —
    cheap enough to leave in production paths; engines built without a
    harness pass ``crashpoints=None`` and skip even that.
    """

    plan: CrashPlan | None = None
    hits: dict[str, int] = field(default_factory=dict)
    fired: str | None = None

    def reached(self, site: str) -> None:
        """Record a visit to ``site``; die if the plan says so."""
        if self.trigger(site):
            self.die(site)

    def trigger(self, site: str) -> bool:
        """True when the armed plan fires at this visit (without dying).

        For sites that must perform a side effect *before* death (the
        journal's torn write), callers split the check from the raise:
        ``if cp.trigger(site): ...side effect...; cp.die(site)``.
        """
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        plan = self.plan
        return (
            plan is not None
            and self.fired is None
            and plan.site == site
            and count == plan.hit
        )

    def die(self, site: str) -> None:
        """Raise the simulated crash for ``site``."""
        self.fired = site
        raise SimulatedCrashError(
            f"simulated crash at {site} (hit {self.hits.get(site, 0)})"
        )
