"""Crash recovery & durability: write-ahead journal, checkpoints, crash sites.

Three pieces give the engine the acked-write-survives-crash discipline:

* :mod:`~repro.recovery.journal` — a CRC32-framed write-ahead journal of
  catalog mutations; records are durable before a write is acknowledged,
  and replay tolerates torn/corrupted tails.
* :mod:`~repro.recovery.snapshot` — atomic engine checkpoints (catalog,
  CCP parameters, monitor epoch, resilience counters, tier ledger) that
  bound how much journal a restore must replay.
* :mod:`~repro.recovery.crashpoints` — named crash sites threaded through
  the write/flush/failover paths, armed by a seeded :class:`CrashPlan`
  so the chaos harness (:mod:`repro.faults.crash`) can kill the engine at
  any instrumented moment and prove recovery's invariants.

See docs/RECOVERY.md for the format/invariant reference.
"""

from .crashpoints import CRASH_SITES, CrashPlan, Crashpoints
from .journal import (
    JOURNAL_NAME,
    Journal,
    JournalCursor,
    JournalRecord,
    JournalReplay,
    replay_journal,
)
from .snapshot import SNAPSHOT_NAME, EngineSnapshot, read_snapshot, write_snapshot

__all__ = [
    "CRASH_SITES",
    "CrashPlan",
    "Crashpoints",
    "EngineSnapshot",
    "JOURNAL_NAME",
    "Journal",
    "JournalCursor",
    "JournalRecord",
    "JournalReplay",
    "SNAPSHOT_NAME",
    "read_snapshot",
    "replay_journal",
    "write_snapshot",
]
