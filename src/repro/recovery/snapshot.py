"""Engine checkpoints: atomic snapshots of recoverable state.

A snapshot captures everything a crashed engine cannot rebuild from the
tiers alone: the placement catalog, the CCP's learned parameters and
``model_version``, the System Monitor's ``state_epoch``, cumulative
resilience counters, the named-file manifests, and the tier capacity
ledger as the engine last saw it (for drift reporting at restore). The
journal LSN the snapshot covers is recorded so restore replays exactly
the suffix written after the checkpoint.

Atomicity is the standard tmp-write + ``os.replace`` dance: a crash
during checkpointing leaves either the previous snapshot or the new one,
never a torn file. The payload is JSON with a version field; unknown
versions are rejected rather than misread.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import RecoveryError

__all__ = ["SNAPSHOT_NAME", "EngineSnapshot", "read_snapshot", "write_snapshot"]

#: Snapshot file name inside a recovery directory.
SNAPSHOT_NAME = "snapshot.json"

#: Current on-disk format version.
SNAPSHOT_VERSION = 1


def _parse_entry(item) -> tuple:
    """One catalog entry from its on-disk list form.

    Accepts both the legacy 4-element ``[key, length, codec, crc]`` form
    and the 5-element form carrying an end-to-end content digest
    (``repro.scrub``), so snapshots from either build read cleanly.
    """
    k, length, codec, crc = item[:4]
    entry = (str(k), int(length), str(codec), None if crc is None else int(crc))
    if len(item) > 4 and item[4] is not None:
        entry += (int(item[4]),)
    return entry


@dataclass(frozen=True)
class EngineSnapshot:
    """One engine's recoverable state at a checkpoint instant.

    Attributes:
        journal_lsn: Highest journal LSN this snapshot already includes;
            restore applies only records with a larger LSN.
        catalog: ``task_id -> [(key, length, codec, crc32-or-None), ...]``
            — entries may carry a 5th element, the end-to-end content
            digest (``repro.scrub``); digest-less entries stay in the
            legacy 4-element form so feature-off snapshots are
            byte-identical to pre-digest builds.
        file_manifests: The interception facade's name -> task-id lists.
        ccp_theta: Exported regression parameters per head.
        ccp_model_version: The CCP's monotone version at checkpoint.
        ccp_observations: Observations folded into the model so far.
        monitor_epoch: The System Monitor's ``state_epoch``.
        monitor_samples: Snapshots the monitor had taken.
        resilience: Cumulative ``ResilienceStats`` counters (trace
            excluded: it is diagnostic, unbounded, and rebuildable).
        tier_used: ``tier name -> accounted bytes`` as the engine last saw
            the ledger — restore compares this against the live tiers and
            reports drift instead of trusting it blindly.
        replans: The engine's degraded-mode replan counter.
        qos: QoS governor state (admission counters/backlog, per-tier
            breaker states, brownout level) when the engine runs with
            QoS enabled; empty otherwise. Optional in the on-disk format
            so version-1 snapshots written before the field read cleanly.
    """

    journal_lsn: int
    catalog: dict[str, list[tuple]]
    file_manifests: dict[str, list[str]] = field(default_factory=dict)
    ccp_theta: dict[str, list[float]] = field(default_factory=dict)
    ccp_model_version: int = 0
    ccp_observations: int = 0
    monitor_epoch: int = 0
    monitor_samples: int = 0
    resilience: dict[str, float] = field(default_factory=dict)
    tier_used: dict[str, int] = field(default_factory=dict)
    replans: int = 0
    qos: dict = field(default_factory=dict)

    def referenced_keys(self) -> set[str]:
        """Every piece key the catalog points at."""
        return {
            entry[0] for entries in self.catalog.values() for entry in entries
        }

    def to_dict(self) -> dict:
        return {
            "version": SNAPSHOT_VERSION,
            "journal_lsn": self.journal_lsn,
            "catalog": {
                task: [list(entry) for entry in entries]
                for task, entries in self.catalog.items()
            },
            "file_manifests": {
                name: list(tasks) for name, tasks in self.file_manifests.items()
            },
            "ccp": {
                "theta": self.ccp_theta,
                "model_version": self.ccp_model_version,
                "observations_seen": self.ccp_observations,
            },
            "monitor": {
                "state_epoch": self.monitor_epoch,
                "samples": self.monitor_samples,
            },
            "resilience": dict(self.resilience),
            "tier_used": dict(self.tier_used),
            "replans": self.replans,
            "qos": dict(self.qos),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "EngineSnapshot":
        try:
            version = int(raw["version"])
            if version != SNAPSHOT_VERSION:
                raise RecoveryError(
                    f"unsupported snapshot version {version} "
                    f"(this build reads {SNAPSHOT_VERSION})"
                )
            ccp = raw.get("ccp", {})
            monitor = raw.get("monitor", {})
            return cls(
                journal_lsn=int(raw["journal_lsn"]),
                catalog={
                    str(task): [_parse_entry(entry) for entry in entries]
                    for task, entries in raw["catalog"].items()
                },
                file_manifests={
                    str(name): [str(t) for t in tasks]
                    for name, tasks in raw.get("file_manifests", {}).items()
                },
                ccp_theta={
                    str(t): [float(v) for v in vec]
                    for t, vec in ccp.get("theta", {}).items()
                },
                ccp_model_version=int(ccp.get("model_version", 0)),
                ccp_observations=int(ccp.get("observations_seen", 0)),
                monitor_epoch=int(monitor.get("state_epoch", 0)),
                monitor_samples=int(monitor.get("samples", 0)),
                resilience={
                    str(k): float(v)
                    for k, v in raw.get("resilience", {}).items()
                },
                tier_used={
                    str(k): int(v) for k, v in raw.get("tier_used", {}).items()
                },
                replans=int(raw.get("replans", 0)),
                qos=dict(raw.get("qos", {})),
            )
        except RecoveryError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise RecoveryError(f"snapshot file is malformed: {exc}") from exc


def write_snapshot(
    directory: str | Path, snapshot: EngineSnapshot, fsync: bool = True
) -> Path:
    """Atomically persist a snapshot into ``directory``; returns its path.

    tmp-write + flush + fsync + ``os.replace`` (+ directory fsync where
    the platform supports it): readers see the old snapshot or the new
    one, never a partial file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / SNAPSHOT_NAME
    tmp = directory / (SNAPSHOT_NAME + ".tmp")
    blob = json.dumps(snapshot.to_dict(), separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            pass  # platform without directory fds
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    return path


def read_snapshot(directory: str | Path) -> EngineSnapshot:
    """Load the snapshot from a recovery directory.

    Raises :class:`RecoveryError` when the file is absent or malformed.
    """
    path = Path(directory) / SNAPSHOT_NAME
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise RecoveryError(f"no snapshot at {path}") from None
    except (OSError, ValueError) as exc:
        raise RecoveryError(f"snapshot {path} is unreadable: {exc}") from exc
    return EngineSnapshot.from_dict(raw)
