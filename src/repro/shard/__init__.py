"""Sharded multi-engine scale-out (docs/SHARDING.md).

``repro.shard`` horizontally scales HCompress by running ``N``
independent engine shards behind one consistent-hash router:

* :class:`ShardConfig` — layout: shard count, ring parameters, health
  policy, deployment directory; :func:`split_tier_specs` slices the
  tier budgets.
* :class:`ConsistentHashRing` — seeded, ``PYTHONHASHSEED``-independent
  key -> shard routing.
* :class:`ShardManifest` — the versioned, atomically-written
  ``shard-map.json`` tying per-shard recovery state together.
* :class:`ShardSupervisor` — outcome/heartbeat health tracking; DOWN
  shards fail fast with
  :class:`~repro.errors.ShardUnavailableError`.
* :class:`ShardedHCompress` — the routed front-end with per-shard
  failure domains, kill/restore, and aggregate views.
"""

from .config import ShardConfig, shard_dirname, split_tier_specs
from .hashring import ConsistentHashRing
from .manifest import (
    MANIFEST_NAME,
    ShardManifest,
    read_manifest,
    write_manifest,
)
from .router import ShardedHCompress
from .supervisor import ShardHealth, ShardSupervisor

__all__ = [
    "MANIFEST_NAME",
    "ConsistentHashRing",
    "ShardConfig",
    "ShardHealth",
    "ShardManifest",
    "ShardSupervisor",
    "ShardedHCompress",
    "read_manifest",
    "shard_dirname",
    "split_tier_specs",
    "write_manifest",
]
