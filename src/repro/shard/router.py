"""ShardedHCompress: consistent-hash scale-out over independent engines.

One front-end object owns ``N`` fully independent :class:`HCompress`
shards. Each shard gets its own slice of the tier budgets
(:func:`~repro.shard.config.split_tier_specs`), its own catalog, plan
cache, QoS governor, and — when a deployment directory is configured —
its own write-ahead journal and checkpoints under ``shard-NN/``, tied
together by the versioned shard-map manifest at the root. Requests
route by a *routing key* (the tenant when given, else the task id)
through the seeded consistent-hash ring, so a tenant's entire working
set lands on one shard: a failure domain is a shard, and a shard's
blast radius is exactly the tenants hashed onto it.

The :class:`~repro.shard.supervisor.ShardSupervisor` gates every
dispatch. Traffic for a DOWN shard fails in O(1) with
:class:`~repro.errors.ShardUnavailableError` — before any analysis or
planning — while the other shards keep serving with byte-identical
behavior to an undisturbed run (their engines never observe the
failure). A killed shard restores from its own journal + checkpoint via
the ordinary :meth:`HCompress.restore` path and re-enters the ring
exactly where it was: consistent hashing means nobody else's keys
moved.

With replication enabled (:class:`~repro.replication.ReplicationConfig`
on the shard config) shard death is survivable without an operator:
every shard's journal ships synchronously to K standby directories, and
when the supervisor marks a shard DOWN the router promotes the
most-caught-up standby — restore over the standby directory, manifest
re-homed with a version bump that fences the old primary, owner map
rebuilt, supervisor flipped to a bounded PROMOTING window during which
the shard sheds retryably with
:class:`~repro.errors.FailoverInProgressError` — then recycles the dead
primary's directory as a new standby and reseeds the set from a fresh
checkpoint. Promotion is staged across the four
``replication.pre_promote/post_manifest/post_reroute/post_demote``
crash sites and each stage is idempotent, so a crash mid-failover is
repaired by simply calling :meth:`failover` again.

``shards=1`` is the feature-off shape: the single shard receives the
unsplit tier specs and every call delegates straight through, producing
schemas and a catalog byte-identical to an unsharded engine.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Sequence

from ..core.config import HCompressConfig
from ..core.hcompress import HCompress
from ..core.manager import ReadResult, WriteResult
from ..errors import (
    HCompressError,
    QosError,
    ShardManifestError,
    ShardStateError,
    SimulatedCrashError,
    TierError,
)
from ..hcdp import IOTask, next_task_id
from ..qos import QosClass
from ..replication import ReplicationCoordinator
from ..tiers import StorageHierarchy, TierSpec
from .config import ShardConfig, split_tier_specs
from .hashring import ConsistentHashRing
from .manifest import ShardManifest, read_manifest, write_manifest
from .supervisor import ShardSupervisor

__all__ = ["ShardedHCompress"]


class ShardedHCompress:
    """Consistent-hash router over ``N`` independent HCompress shards.

    Args:
        specs: Description of the *whole* deployment's hierarchy; each
            shard is constructed over its
            :func:`~repro.shard.config.split_tier_specs` slice.
        config: Engine config applied to every shard. With a deployment
            directory, each shard's recovery config is redirected to its
            own ``shard-NN/`` subdirectory.
        shard_config: Shard layout (count, ring parameters, health
            policy, deployment directory).
        seed: Profiler seed shared by all shards. ``None`` runs one
            quick profiling pass and shares the result (identical to
            what each engine would derive on its own).
        clock: Modeled time source threaded into every shard and the
            supervisor.
        device_factory: Forwarded to each shard's hierarchy build.
        crashpoints: Optional :class:`~repro.recovery.Crashpoints`
            arbiter threaded into every shard engine and the failover
            path, so the crash harness can kill the deployment at any
            instrumented site (including the four ``replication.*``
            promotion sites).
    """

    def __init__(
        self,
        specs: Sequence[TierSpec],
        config: HCompressConfig | None = None,
        shard_config: ShardConfig | None = None,
        seed=None,
        clock: Callable[[], float] | None = None,
        device_factory=None,
        crashpoints=None,
    ) -> None:
        self.config = config if config is not None else HCompressConfig()
        self.shard_config = (
            shard_config if shard_config is not None else ShardConfig()
        )
        self.specs = tuple(specs)
        self._clock = clock
        self._device_factory = device_factory
        self.crashpoints = crashpoints
        self.ring = ConsistentHashRing(
            self.shard_config.shards,
            self.shard_config.virtual_nodes,
            self.shard_config.hash_seed,
        )
        self.supervisor = ShardSupervisor(
            self.shard_config, clock=clock, on_transition=self._persist_status
        )
        # The root directory ties the deployment together: the manifest at
        # its top, one recovery directory per shard beneath it. Falls back
        # to the engine config's recovery directory so a caller who already
        # configured recovery gets sharded durability without a second knob.
        root = self.shard_config.directory
        if root is None and self.config.recovery.enabled:
            root = self.config.recovery.directory
        self.root = None if root is None else Path(root)
        if self.shard_config.replication.enabled and self.root is None:
            raise HCompressError(
                "replication needs a deployment directory: construct with "
                "ShardConfig(directory=...) or recovery enabled"
            )
        if seed is None:
            # One shared profiling pass. The profiler is a pure function of
            # the codec pool and a fixed rng, so this is byte-identical to
            # the seed each engine would have derived independently.
            from ..codecs.pool import CompressionLibraryPool
            from ..core.profiler import HCompressProfiler
            import numpy as np

            seed = HCompressProfiler(
                CompressionLibraryPool(self.config.libraries),
                rng=np.random.default_rng(0),
            ).quick_seed()
        self.seed = seed
        self.manifest: ShardManifest | None = None
        if self.root is not None:
            self.manifest = ShardManifest.initial(
                self.shard_config.shards,
                self.shard_config.virtual_nodes,
                self.shard_config.hash_seed,
            )
            write_manifest(
                self.root, self.manifest, fsync=self.config.recovery.fsync
            )
        # Per-shard hierarchies outlive their engines: tiers model durable
        # external services, so a killed shard's data survives for restore.
        self.hierarchies: dict[int, StorageHierarchy] = {}
        self.engines: dict[int, HCompress | None] = {}
        for shard_id in range(self.shard_config.shards):
            hierarchy = StorageHierarchy.from_specs(
                split_tier_specs(
                    self.specs, shard_id, self.shard_config.shards
                ),
                device_factory=device_factory,
            )
            self.hierarchies[shard_id] = hierarchy
            self.engines[shard_id] = HCompress(
                hierarchy,
                self._engine_config(shard_id),
                seed=self.seed,
                clock=clock,
                crashpoints=crashpoints,
            )
        # task id -> owning shard, so reads route to where the write went
        # even when the write was routed by tenant. Rebuilt from each
        # shard's restored catalog after a failover.
        self._owners: dict[str, int] = {}
        #: Cumulative modeled service seconds per shard (compress/decompress
        #: + I/O). The scale-out bench's makespan is the max over shards.
        self.busy_seconds: dict[int, float] = {
            shard_id: 0.0 for shard_id in range(self.shard_config.shards)
        }
        # Replication: standby sets + synchronous WAL shipping. Built after
        # the engines so every shard's journal exists to observe; the
        # bootstrap checkpoint gives every standby a restorable snapshot
        # from modeled time zero.
        self.replication: ReplicationCoordinator | None = None
        self._pending_failovers: set[int] = set()
        self._pending_demote: dict[int, str] = {}
        if self.shard_config.replication.enabled:
            self.replication = ReplicationCoordinator(
                self.shard_config.shards,
                self.shard_config.replication,
                self.root,
                fsync=self.config.recovery.fsync,
            )
            for shard_id in sorted(self.engines):
                engine = self.engines[shard_id]
                path = engine.checkpoint()
                self.replication.attach(shard_id, engine.journal)
                self.replication.ship_checkpoint(shard_id, path.parent)
        self._closed = False

    # -- construction helpers ------------------------------------------------

    def _engine_config(self, shard_id: int) -> HCompressConfig:
        """One shard's engine config: shared knobs, private recovery dir."""
        if self.root is None:
            return self.config
        return replace(
            self.config,
            recovery=replace(
                self.config.recovery,
                enabled=True,
                directory=self.root / self.manifest.directories[shard_id]
                if self.manifest is not None
                else self.shard_config.shard_directory(shard_id),
            ),
        )

    def _persist_status(
        self, status: str, now: float, shard_id: int, reason: str
    ) -> None:
        """Supervisor transition hook: bump + rewrite the manifest, and
        queue an automatic failover when a replicated shard goes DOWN."""
        if (
            status == "DOWN"
            and self.replication is not None
            and self.shard_config.replication.auto_failover
        ):
            self._pending_failovers.add(shard_id)
        if self.manifest is None:
            return
        self.manifest = self.manifest.with_status(shard_id, status)
        write_manifest(
            self.root, self.manifest, fsync=self.config.recovery.fsync
        )

    def _service_failovers(self) -> None:
        """Run queued automatic promotions (deterministic shard order).

        Invoked at the top of every dispatch, right after the heartbeat
        sweep — so a DOWN transition from any source (explicit kill,
        failure threshold, expired heartbeat) is serviced on the very
        next operation, on the modeled clock, before any routing gate.
        """
        if self.replication is None or not self._pending_failovers:
            return
        for shard_id in sorted(self._pending_failovers):
            self._pending_failovers.discard(shard_id)
            if (
                self.engines[shard_id] is None
                and self.supervisor.health[shard_id].status == "DOWN"
            ):
                self.failover(shard_id)

    # -- routing -------------------------------------------------------------

    @property
    def shards(self) -> int:
        return self.shard_config.shards

    def route_key(self, task_id: str, tenant: str | None = None) -> str:
        """The routing key: the tenant (so one tenant = one failure
        domain) when given, else the task id."""
        return tenant if tenant is not None else task_id

    def shard_of(self, task_id: str, tenant: str | None = None) -> int:
        return self.ring.route(self.route_key(task_id, tenant))

    def engine(self, shard_id: int) -> HCompress:
        """The live engine of one shard (DOWN shards have none)."""
        engine = self.engines[shard_id]
        if engine is None:
            self.supervisor.ensure_up(shard_id)  # raises with the reason
            raise HCompressError(f"shard {shard_id} has no engine")
        return engine

    # -- paper API, routed ---------------------------------------------------

    def compress(
        self,
        data: bytes | None = None,
        *,
        task: IOTask | None = None,
        hints=None,
        modeled_size: int | None = None,
        task_id: str | None = None,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> WriteResult:
        """Route one write to its owning shard (see
        :meth:`HCompress.compress` for the operation semantics).

        The task id is fixed *before* routing (generated here when the
        caller passes none) so the routing key is stable; ``tenant``
        overrides it as the key, pinning all of a tenant's tasks to one
        shard and scoping QoS admission to that tenant on that shard.
        """
        self._check_open()
        tid = task.task_id if task is not None else (task_id or next_task_id())
        shard_id = self.ring.route(self.route_key(tid, tenant))
        self.supervisor.sweep()
        self._service_failovers()
        self.supervisor.ensure_up(shard_id)
        engine = self.engine(shard_id)
        try:
            result = engine.compress(
                data,
                task=task,
                hints=hints,
                modeled_size=modeled_size,
                task_id=None if task is not None else tid,
                deadline=deadline,
                qos_class=qos_class,
                tenant=tenant,
            )
        except QosError:
            # Policy rejection: the shard's machinery worked correctly.
            self.supervisor.record_outcome(shard_id, ok=True)
            raise
        except SimulatedCrashError:
            # Crash-point death is process death for this shard only.
            self._abandon(shard_id, "crashed")
            raise
        except TierError:
            self.supervisor.record_outcome(shard_id, ok=False)
            raise
        self.supervisor.record_outcome(shard_id, ok=True)
        self._owners[tid] = shard_id
        self.busy_seconds[shard_id] += (
            result.compress_seconds + result.io_seconds
        )
        return result

    def decompress(
        self,
        task_id: str,
        offset: int | None = None,
        length: int | None = None,
        deadline: float | None = None,
    ) -> ReadResult:
        """Route one read to the shard that owns ``task_id``."""
        self._check_open()
        shard_id = self._owners.get(task_id)
        if shard_id is None:
            shard_id = self.ring.route(task_id)
        self.supervisor.sweep()
        self._service_failovers()
        self.supervisor.ensure_up(shard_id)
        engine = self.engine(shard_id)
        try:
            result = engine.decompress(task_id, offset, length, deadline)
        except QosError:
            self.supervisor.record_outcome(shard_id, ok=True)
            raise
        except SimulatedCrashError:
            self._abandon(shard_id, "crashed")
            raise
        except TierError:
            self.supervisor.record_outcome(shard_id, ok=False)
            raise
        self.supervisor.record_outcome(shard_id, ok=True)
        self.busy_seconds[shard_id] += (
            result.decompress_seconds + result.io_seconds
        )
        return result

    def compress_batch(
        self,
        items,
        *,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> list[WriteResult]:
        """Route a batch of writes, one sub-batch per owning shard.

        Task ids are fixed up front in item order (exactly the ids a
        per-item :meth:`compress` loop would have assigned), each item
        routes by its key through the ring (a dict item's own ``tenant``
        overrides the call-level one), and every shard receives its
        items as one :meth:`HCompress.compress_batch` call in their
        original relative order — so each shard's catalog, schemas, and
        telemetry are byte-identical to the per-task loop's. Results
        return in submission order. Availability is checked for every
        involved shard before any work: a DOWN shard fails the whole
        batch in O(1) with nothing placed anywhere.
        """
        self._check_open()
        specs: list[dict] = []
        tids: list[str] = []
        keys: list[str] = []
        for item in items:
            if isinstance(item, IOTask):
                specs.append({"task": item})
                tids.append(item.task_id)
                keys.append(self.route_key(item.task_id, tenant))
            elif isinstance(item, (bytes, bytearray, memoryview)):
                tid = next_task_id()
                specs.append({"data": bytes(item), "task_id": tid})
                tids.append(tid)
                keys.append(self.route_key(tid, tenant))
            elif isinstance(item, dict):
                spec = dict(item)
                task = spec.get("task")
                if task is not None:
                    tid = task.task_id
                else:
                    tid = spec.get("task_id") or next_task_id()
                    spec["task_id"] = tid
                tids.append(tid)
                # A dict item may carry its own tenant, routing exactly
                # like the per-task loop's compress(..., tenant=...).
                keys.append(self.route_key(tid, spec.get("tenant", tenant)))
                specs.append(spec)
            else:
                raise HCompressError(
                    "compress_batch items must be bytes, IOTask, or dicts "
                    f"of compress() kwargs, got {type(item).__name__}"
                )
        route = self.ring.route
        groups: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(route(key), []).append(index)
        self.supervisor.sweep()
        self._service_failovers()
        for shard_id in groups:
            self.supervisor.ensure_up(shard_id)
        results: list[WriteResult | None] = [None] * len(specs)
        for shard_id, indices in groups.items():
            engine = self.engine(shard_id)
            try:
                shard_results = engine.compress_batch(
                    [specs[i] for i in indices],
                    deadline=deadline,
                    qos_class=qos_class,
                    tenant=tenant,
                )
            except QosError:
                self.supervisor.record_outcome(shard_id, ok=True)
                raise
            except SimulatedCrashError:
                self._abandon(shard_id, "crashed")
                raise
            except TierError:
                self.supervisor.record_outcome(shard_id, ok=False)
                raise
            owners = self._owners
            busy = self.busy_seconds[shard_id]
            for index, result in zip(indices, shard_results):
                results[index] = result
                owners[result.task.task_id] = shard_id
                # one addition per task: bit-identical to the per-task
                # router's accumulation order
                busy += result.compress_seconds + result.io_seconds
            self.busy_seconds[shard_id] = busy
            for _ in indices:
                self.supervisor.record_outcome(shard_id, ok=True)
        return results

    def decompress_batch(
        self, task_ids, *, deadline: float | None = None
    ) -> list[ReadResult]:
        """Route a batch of reads to their owning shards.

        Grouping mirrors :meth:`compress_batch`: order within each shard
        is preserved, results return in submission order, and every
        involved shard must be UP before any read is issued.
        """
        self._check_open()
        task_ids = list(task_ids)
        owners = self._owners
        route = self.ring.route
        groups: dict[int, list[int]] = {}
        for index, tid in enumerate(task_ids):
            shard_id = owners.get(tid)
            if shard_id is None:
                shard_id = route(tid)
            groups.setdefault(shard_id, []).append(index)
        self.supervisor.sweep()
        self._service_failovers()
        for shard_id in groups:
            self.supervisor.ensure_up(shard_id)
        results: list[ReadResult | None] = [None] * len(task_ids)
        for shard_id, indices in groups.items():
            engine = self.engine(shard_id)
            try:
                shard_results = engine.decompress_batch(
                    [task_ids[i] for i in indices], deadline=deadline
                )
            except QosError:
                self.supervisor.record_outcome(shard_id, ok=True)
                raise
            except SimulatedCrashError:
                self._abandon(shard_id, "crashed")
                raise
            except TierError:
                self.supervisor.record_outcome(shard_id, ok=False)
                raise
            busy = self.busy_seconds[shard_id]
            for index, result in zip(indices, shard_results):
                results[index] = result
                busy += result.decompress_seconds + result.io_seconds
            self.busy_seconds[shard_id] = busy
            for _ in indices:
                self.supervisor.record_outcome(shard_id, ok=True)
        return results

    # -- failure domains -----------------------------------------------------

    def _require_shard(self, shard_id: int) -> None:
        """Typed rejection of shard ids outside the deployment."""
        if shard_id not in self.engines:
            raise ShardStateError(
                f"unknown shard id {shard_id} (deployment has shards "
                f"0..{self.shards - 1})",
                shard_id=shard_id,
                state="UNKNOWN",
            )

    def kill_shard(self, shard_id: int, reason: str = "killed") -> None:
        """Crash one shard: abandon its engine mid-flight.

        Models abrupt process death — the journal is *not* synced or
        closed (buffered records die with the process, exactly what
        restore must cope with); only the piece thread pool is joined,
        because in-process simulation must not leak OS threads. The
        shard's tiers survive (durable external services) and its
        tenants start seeing :class:`~repro.errors.ShardUnavailableError`
        on the next dispatch. Other shards are untouched.

        Raises :class:`~repro.errors.ShardStateError` for an unknown
        shard id or one that is already DOWN — killing a corpse is an
        operator error, not a no-op.
        """
        self._check_open()
        self._require_shard(shard_id)
        status = self.supervisor.health[shard_id].status
        if status == "DOWN":
            raise ShardStateError(
                f"cannot kill shard {shard_id}: already DOWN "
                f"({self.supervisor.health[shard_id].reason})",
                shard_id=shard_id,
                state=status,
            )
        self._abandon(shard_id, reason)

    def _abandon(self, shard_id: int, reason: str) -> None:
        engine = self.engines[shard_id]
        if engine is not None:
            engine.manager.shutdown()  # thread hygiene; journal left un-synced
            self.engines[shard_id] = None
            if self.replication is not None:
                self.replication.detach(shard_id)
        self.supervisor.mark_down(shard_id, reason)

    def restore_shard(self, shard_id: int) -> HCompress:
        """Bring a DOWN shard back from its own journal + checkpoint.

        Replays the shard's recovery directory through the ordinary
        :meth:`HCompress.restore` path against the surviving hierarchy
        slice, re-registers the shard's tasks in the owner map, and
        marks it UP (bumping the manifest). Requires a deployment
        directory — an in-memory shard has nothing to restore from.

        Raises :class:`~repro.errors.ShardStateError` for an unknown
        shard id or one that is not DOWN (restoring a serving shard
        would silently fork its state), and
        :class:`~repro.errors.ShardManifestError` when the on-disk
        manifest has moved past the version this router holds — a
        concurrent actor re-wrote the layout and blindly bumping would
        clobber it.
        """
        self._check_open()
        self._require_shard(shard_id)
        status = self.supervisor.health[shard_id].status
        if status != "DOWN":
            raise ShardStateError(
                f"cannot restore shard {shard_id}: currently {status}",
                shard_id=shard_id,
                state=status,
            )
        if self.root is None:
            raise HCompressError(
                "restore_shard needs a deployment directory: construct "
                "with ShardConfig(directory=...) or recovery enabled"
            )
        if self.manifest is not None:
            # Idempotence under concurrent bumps: re-read before writing.
            # read_manifest rejects rollback (stale version); a *newer*
            # version means someone else won the race — refuse to clobber.
            disk = read_manifest(self.root, min_version=self.manifest.version)
            if disk.version > self.manifest.version:
                raise ShardManifestError(
                    f"shard manifest advanced to v{disk.version} while this "
                    f"router holds v{self.manifest.version}: a concurrent "
                    "actor re-wrote the layout; re-sync before restoring"
                )
        self._pending_failovers.discard(shard_id)
        old = self.engines[shard_id]
        if old is not None:
            old.manager.shutdown()
        engine = HCompress.restore(
            self._engine_config(shard_id).recovery.directory,
            self.hierarchies[shard_id],
            config=self.config,
            seed=self.seed,
            clock=self._clock,
            crashpoints=self.crashpoints,
        )
        self.engines[shard_id] = engine
        for tid in engine.manager.catalog_snapshot():
            self._owners[tid] = shard_id
        if self.replication is not None:
            self.replication.attach(shard_id, engine.journal)
        self.supervisor.mark_up(shard_id)
        return engine

    # -- failover (repro.replication) ----------------------------------------

    def failover(self, shard_id: int) -> HCompress:
        """Promote the most-caught-up standby of a DOWN shard.

        The promotion is staged and every stage is idempotent, so a
        crash at any of the four ``replication.*`` sites is repaired by
        calling :meth:`failover` again:

        1. **pre_promote** — candidate chosen (max applied LSN, ties to
           the lowest replica id); nothing has changed yet.
        2. Fence + re-home: the on-disk manifest is re-read with
           ``min_version`` (adopting a newer layout, rejecting rollback)
           and rewritten with the shard pointed at the standby's
           directory — **post_manifest**. Any actor holding the old
           version now fails its next manifest read.
        3. The standby directory restores through
           :meth:`HCompress.restore`, the engine is swapped in, the
           owner map rebuilt, shipping re-attached, and the supervisor
           enters the modeled PROMOTING window — **post_reroute**.
           Tenants shed retryably until the window elapses.
        4. The dead primary's directory is recycled as a new standby and
           the whole standby set reseeds from a fresh checkpoint
           (anti-entropy) — **post_demote**.

        Returns the promoted engine. Requires replication; raises
        :class:`~repro.errors.ShardStateError` for an unknown shard or
        one with nothing to fail over.
        """
        self._check_open()
        self._require_shard(shard_id)
        if self.replication is None:
            raise ShardStateError(
                f"shard {shard_id} has no standbys: replication is disabled",
                shard_id=shard_id,
                state=self.supervisor.health[shard_id].status,
            )
        if self.engines[shard_id] is None:
            self._promote(shard_id)
        elif shard_id not in self._pending_demote:
            status = self.supervisor.health[shard_id].status
            raise ShardStateError(
                f"cannot fail over shard {shard_id}: currently {status} "
                "with no promotion in flight",
                shard_id=shard_id,
                state=status,
            )
        self._finish_failover(shard_id)
        return self.engines[shard_id]

    def _promote(self, shard_id: int) -> None:
        """Stages 1-3: fence, re-home, restore, re-route."""
        coordinator = self.replication
        candidate = coordinator.promotion_candidate(shard_id)
        if self.crashpoints is not None:
            self.crashpoints.reached("replication.pre_promote")
        # Remember the dying primary's directory before re-homing: stage 4
        # recycles it as a standby.
        self._pending_demote.setdefault(
            shard_id, self.manifest.directories[shard_id]
        )
        # The fence: adopt the newest on-disk layout (>= ours; rollback is
        # rejected as stale), then bump past it with the shard re-homed.
        disk = read_manifest(self.root, min_version=self.manifest.version)
        window = self.shard_config.replication.promotion_seconds
        self.manifest = disk.with_promotion(
            shard_id,
            candidate.directory.name,
            status="PROMOTING" if window > 0 else "UP",
        )
        write_manifest(
            self.root, self.manifest, fsync=self.config.recovery.fsync
        )
        if self.crashpoints is not None:
            self.crashpoints.reached("replication.post_manifest")
        engine = HCompress.restore(
            candidate.directory,
            self.hierarchies[shard_id],
            config=self.config,
            seed=self.seed,
            clock=self._clock,
            crashpoints=self.crashpoints,
        )
        coordinator.promote(shard_id, candidate)
        self.engines[shard_id] = engine
        for tid in engine.manager.catalog_snapshot():
            self._owners[tid] = shard_id
        coordinator.attach(shard_id, engine.journal)
        self.supervisor.mark_promoting(
            shard_id, self.supervisor.now() + window
        )
        if self.crashpoints is not None:
            self.crashpoints.reached("replication.post_reroute")

    def _finish_failover(self, shard_id: int) -> None:
        """Stage 4: recycle the dead primary, reseed the standby set."""
        coordinator = self.replication
        engine = self.engines[shard_id]
        old_dirname = self._pending_demote.get(shard_id)
        if old_dirname is not None:
            coordinator.demote(shard_id, self.root / old_dirname)
        # Anti-entropy reseed: fresh checkpoint from the new primary,
        # installed on every standby (including the recycled one), then
        # the journal tail from each standby's own applied LSN.
        path = engine.checkpoint()
        coordinator.ship_checkpoint(shard_id, path.parent)
        coordinator.catch_up(shard_id, path.parent)
        if self.crashpoints is not None:
            self.crashpoints.reached("replication.post_demote")
        self._pending_demote.pop(shard_id, None)
        coordinator.failovers[shard_id] += 1
        if engine.obs is not None:
            with engine.obs.region(
                "replication.promote", shard=shard_id
            ) as span:
                span.set_attr("applied_lsn", engine.journal.durable_lsn)
            engine.obs.record_shard_promotion(str(shard_id))

    def replication_status(self) -> dict[int, dict]:
        """Per-shard replication state: primary LSN, shipped counts, and
        each standby's applied LSN + lag (the CLI's status table)."""
        self._check_open()
        if self.replication is None:
            raise HCompressError(
                "replication is disabled: enable it with "
                "ShardConfig(replication=ReplicationConfig(enabled=True))"
            )
        return self.replication.status()

    def verify_manifest(self) -> ShardManifest:
        """Re-read the on-disk manifest, rejecting stale versions."""
        if self.root is None or self.manifest is None:
            raise HCompressError("no deployment directory, no manifest")
        return read_manifest(self.root, min_version=self.manifest.version)

    # -- lifecycle tiering ---------------------------------------------------

    def lifecycle_step(self, force: bool = False) -> dict[int, list]:
        """Step every UP shard's lifecycle daemon once, in shard order.

        Each shard's daemon scans only that shard's own catalog and
        migrates within that shard's hierarchy slice — per-shard journals
        keep the WAL discipline local. Returns the migrations executed
        per shard id (shards without a daemon are omitted).
        """
        self._check_open()
        out: dict[int, list] = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if (
                engine is not None
                and engine.lifecycle is not None
                and self.supervisor.is_up(shard_id)
            ):
                out[shard_id] = engine.lifecycle.step(force=force)
        return out

    def lifecycle_status(self) -> dict[int, dict]:
        """Per-shard daemon status for every live shard with one."""
        self._check_open()
        return {
            shard_id: engine.lifecycle.status()
            for shard_id, engine in sorted(self.engines.items())
            if engine is not None and engine.lifecycle is not None
        }

    # -- integrity scrubbing -------------------------------------------------

    def scrub_step(self, force: bool = False) -> dict[int, list]:
        """Step every UP shard's scrubber once, in shard order.

        Each shard's scrubber walks only that shard's own catalog and
        repairs within that shard's hierarchy slice — repairs journal
        through the shard's own WAL. Returns the repairs executed per
        shard id (shards without a scrubber are omitted).
        """
        self._check_open()
        out: dict[int, list] = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if (
                engine is not None
                and engine.scrub is not None
                and self.supervisor.is_up(shard_id)
            ):
                out[shard_id] = engine.scrub.step(force=force)
        return out

    def scrub_status(self) -> dict[int, dict]:
        """Per-shard scrubber status for every live shard with one."""
        self._check_open()
        return {
            shard_id: engine.scrub.status()
            for shard_id, engine in sorted(self.engines.items())
            if engine is not None and engine.scrub is not None
        }

    # -- aggregate views -----------------------------------------------------

    def checkpoint(self) -> tuple[Path, ...]:
        """Checkpoint every live shard; returns the snapshot paths.

        With replication enabled each fresh snapshot also ships to the
        shard's standbys (periodic checkpoint shipping: a standby's
        restore cost stays bounded by the journal tail since the last
        checkpoint, not its whole history).
        """
        self._check_open()
        paths = []
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None and self.supervisor.is_up(shard_id):
                path = engine.checkpoint()
                paths.append(path)
                if self.replication is not None:
                    self.replication.ship_checkpoint(shard_id, path.parent)
        return tuple(paths)

    def footprint_by_tier(self) -> dict[str, int]:
        """Accounted bytes per tier name, summed across shards."""
        totals: dict[str, int] = {}
        for shard_id in sorted(self.hierarchies):
            for name, used in self.hierarchies[shard_id].footprint_by_tier().items():
                totals[name] = totals.get(name, 0) + used
        return totals

    def task_count_by_shard(self) -> dict[int, int]:
        """Catalog size per live shard (distribution diagnostics)."""
        counts = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None:
                counts[shard_id] = len(engine.manager.catalog_snapshot())
        return counts

    def observabilities(self) -> dict[int, object]:
        """Shard id -> synced Observability for every live shard with
        telemetry enabled (the CLI's multi-registry aggregation input)."""
        out = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None and engine.obs is not None:
                obs = engine.sync_telemetry()
                if self.replication is not None:
                    obs.sync_replication(self.replication, shard_id)
                out[shard_id] = obs
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every live shard deterministically (idempotent).

        Joins each shard's piece thread pool and syncs + closes each
        journal via :meth:`HCompress.close`; the supervisor and router
        own no threads of their own. Safe to call repeatedly.
        """
        if self.replication is not None:
            for shard_id in sorted(self.engines):
                self.replication.detach(shard_id)
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None:
                engine.close()
        if self.replication is not None:
            self.replication.close()
        self._closed = True

    def __enter__(self) -> "ShardedHCompress":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise HCompressError("sharded engine already closed")
