"""ShardedHCompress: consistent-hash scale-out over independent engines.

One front-end object owns ``N`` fully independent :class:`HCompress`
shards. Each shard gets its own slice of the tier budgets
(:func:`~repro.shard.config.split_tier_specs`), its own catalog, plan
cache, QoS governor, and — when a deployment directory is configured —
its own write-ahead journal and checkpoints under ``shard-NN/``, tied
together by the versioned shard-map manifest at the root. Requests
route by a *routing key* (the tenant when given, else the task id)
through the seeded consistent-hash ring, so a tenant's entire working
set lands on one shard: a failure domain is a shard, and a shard's
blast radius is exactly the tenants hashed onto it.

The :class:`~repro.shard.supervisor.ShardSupervisor` gates every
dispatch. Traffic for a DOWN shard fails in O(1) with
:class:`~repro.errors.ShardUnavailableError` — before any analysis or
planning — while the other shards keep serving with byte-identical
behavior to an undisturbed run (their engines never observe the
failure). A killed shard restores from its own journal + checkpoint via
the ordinary :meth:`HCompress.restore` path and re-enters the ring
exactly where it was: consistent hashing means nobody else's keys
moved.

``shards=1`` is the feature-off shape: the single shard receives the
unsplit tier specs and every call delegates straight through, producing
schemas and a catalog byte-identical to an unsharded engine.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Callable, Sequence

from ..core.config import HCompressConfig
from ..core.hcompress import HCompress
from ..core.manager import ReadResult, WriteResult
from ..errors import HCompressError, QosError, SimulatedCrashError, TierError
from ..hcdp import IOTask, next_task_id
from ..qos import QosClass
from ..tiers import StorageHierarchy, TierSpec
from .config import ShardConfig, split_tier_specs
from .hashring import ConsistentHashRing
from .manifest import ShardManifest, read_manifest, write_manifest
from .supervisor import ShardSupervisor

__all__ = ["ShardedHCompress"]


class ShardedHCompress:
    """Consistent-hash router over ``N`` independent HCompress shards.

    Args:
        specs: Description of the *whole* deployment's hierarchy; each
            shard is constructed over its
            :func:`~repro.shard.config.split_tier_specs` slice.
        config: Engine config applied to every shard. With a deployment
            directory, each shard's recovery config is redirected to its
            own ``shard-NN/`` subdirectory.
        shard_config: Shard layout (count, ring parameters, health
            policy, deployment directory).
        seed: Profiler seed shared by all shards. ``None`` runs one
            quick profiling pass and shares the result (identical to
            what each engine would derive on its own).
        clock: Modeled time source threaded into every shard and the
            supervisor.
        device_factory: Forwarded to each shard's hierarchy build.
    """

    def __init__(
        self,
        specs: Sequence[TierSpec],
        config: HCompressConfig | None = None,
        shard_config: ShardConfig | None = None,
        seed=None,
        clock: Callable[[], float] | None = None,
        device_factory=None,
    ) -> None:
        self.config = config if config is not None else HCompressConfig()
        self.shard_config = (
            shard_config if shard_config is not None else ShardConfig()
        )
        self.specs = tuple(specs)
        self._clock = clock
        self._device_factory = device_factory
        self.ring = ConsistentHashRing(
            self.shard_config.shards,
            self.shard_config.virtual_nodes,
            self.shard_config.hash_seed,
        )
        self.supervisor = ShardSupervisor(
            self.shard_config, clock=clock, on_transition=self._persist_status
        )
        # The root directory ties the deployment together: the manifest at
        # its top, one recovery directory per shard beneath it. Falls back
        # to the engine config's recovery directory so a caller who already
        # configured recovery gets sharded durability without a second knob.
        root = self.shard_config.directory
        if root is None and self.config.recovery.enabled:
            root = self.config.recovery.directory
        self.root = None if root is None else Path(root)
        if seed is None:
            # One shared profiling pass. The profiler is a pure function of
            # the codec pool and a fixed rng, so this is byte-identical to
            # the seed each engine would have derived independently.
            from ..codecs.pool import CompressionLibraryPool
            from ..core.profiler import HCompressProfiler
            import numpy as np

            seed = HCompressProfiler(
                CompressionLibraryPool(self.config.libraries),
                rng=np.random.default_rng(0),
            ).quick_seed()
        self.seed = seed
        self.manifest: ShardManifest | None = None
        if self.root is not None:
            self.manifest = ShardManifest.initial(
                self.shard_config.shards,
                self.shard_config.virtual_nodes,
                self.shard_config.hash_seed,
            )
            write_manifest(
                self.root, self.manifest, fsync=self.config.recovery.fsync
            )
        # Per-shard hierarchies outlive their engines: tiers model durable
        # external services, so a killed shard's data survives for restore.
        self.hierarchies: dict[int, StorageHierarchy] = {}
        self.engines: dict[int, HCompress | None] = {}
        for shard_id in range(self.shard_config.shards):
            hierarchy = StorageHierarchy.from_specs(
                split_tier_specs(
                    self.specs, shard_id, self.shard_config.shards
                ),
                device_factory=device_factory,
            )
            self.hierarchies[shard_id] = hierarchy
            self.engines[shard_id] = HCompress(
                hierarchy,
                self._engine_config(shard_id),
                seed=self.seed,
                clock=clock,
            )
        # task id -> owning shard, so reads route to where the write went
        # even when the write was routed by tenant. Rebuilt from each
        # shard's restored catalog after a failover.
        self._owners: dict[str, int] = {}
        #: Cumulative modeled service seconds per shard (compress/decompress
        #: + I/O). The scale-out bench's makespan is the max over shards.
        self.busy_seconds: dict[int, float] = {
            shard_id: 0.0 for shard_id in range(self.shard_config.shards)
        }
        self._closed = False

    # -- construction helpers ------------------------------------------------

    def _engine_config(self, shard_id: int) -> HCompressConfig:
        """One shard's engine config: shared knobs, private recovery dir."""
        if self.root is None:
            return self.config
        return replace(
            self.config,
            recovery=replace(
                self.config.recovery,
                enabled=True,
                directory=self.root / self.manifest.directories[shard_id]
                if self.manifest is not None
                else self.shard_config.shard_directory(shard_id),
            ),
        )

    def _persist_status(
        self, status: str, now: float, shard_id: int, reason: str
    ) -> None:
        """Supervisor transition hook: bump + rewrite the manifest."""
        if self.manifest is None:
            return
        self.manifest = self.manifest.with_status(shard_id, status)
        write_manifest(
            self.root, self.manifest, fsync=self.config.recovery.fsync
        )

    # -- routing -------------------------------------------------------------

    @property
    def shards(self) -> int:
        return self.shard_config.shards

    def route_key(self, task_id: str, tenant: str | None = None) -> str:
        """The routing key: the tenant (so one tenant = one failure
        domain) when given, else the task id."""
        return tenant if tenant is not None else task_id

    def shard_of(self, task_id: str, tenant: str | None = None) -> int:
        return self.ring.route(self.route_key(task_id, tenant))

    def engine(self, shard_id: int) -> HCompress:
        """The live engine of one shard (DOWN shards have none)."""
        engine = self.engines[shard_id]
        if engine is None:
            self.supervisor.ensure_up(shard_id)  # raises with the reason
            raise HCompressError(f"shard {shard_id} has no engine")
        return engine

    # -- paper API, routed ---------------------------------------------------

    def compress(
        self,
        data: bytes | None = None,
        *,
        task: IOTask | None = None,
        hints=None,
        modeled_size: int | None = None,
        task_id: str | None = None,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> WriteResult:
        """Route one write to its owning shard (see
        :meth:`HCompress.compress` for the operation semantics).

        The task id is fixed *before* routing (generated here when the
        caller passes none) so the routing key is stable; ``tenant``
        overrides it as the key, pinning all of a tenant's tasks to one
        shard and scoping QoS admission to that tenant on that shard.
        """
        self._check_open()
        tid = task.task_id if task is not None else (task_id or next_task_id())
        shard_id = self.ring.route(self.route_key(tid, tenant))
        self.supervisor.sweep()
        self.supervisor.ensure_up(shard_id)
        engine = self.engine(shard_id)
        try:
            result = engine.compress(
                data,
                task=task,
                hints=hints,
                modeled_size=modeled_size,
                task_id=None if task is not None else tid,
                deadline=deadline,
                qos_class=qos_class,
                tenant=tenant,
            )
        except QosError:
            # Policy rejection: the shard's machinery worked correctly.
            self.supervisor.record_outcome(shard_id, ok=True)
            raise
        except SimulatedCrashError:
            # Crash-point death is process death for this shard only.
            self._abandon(shard_id, "crashed")
            raise
        except TierError:
            self.supervisor.record_outcome(shard_id, ok=False)
            raise
        self.supervisor.record_outcome(shard_id, ok=True)
        self._owners[tid] = shard_id
        self.busy_seconds[shard_id] += (
            result.compress_seconds + result.io_seconds
        )
        return result

    def decompress(
        self,
        task_id: str,
        offset: int | None = None,
        length: int | None = None,
        deadline: float | None = None,
    ) -> ReadResult:
        """Route one read to the shard that owns ``task_id``."""
        self._check_open()
        shard_id = self._owners.get(task_id)
        if shard_id is None:
            shard_id = self.ring.route(task_id)
        self.supervisor.sweep()
        self.supervisor.ensure_up(shard_id)
        engine = self.engine(shard_id)
        try:
            result = engine.decompress(task_id, offset, length, deadline)
        except QosError:
            self.supervisor.record_outcome(shard_id, ok=True)
            raise
        except SimulatedCrashError:
            self._abandon(shard_id, "crashed")
            raise
        except TierError:
            self.supervisor.record_outcome(shard_id, ok=False)
            raise
        self.supervisor.record_outcome(shard_id, ok=True)
        self.busy_seconds[shard_id] += (
            result.decompress_seconds + result.io_seconds
        )
        return result

    def compress_batch(
        self,
        items,
        *,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> list[WriteResult]:
        """Route a batch of writes, one sub-batch per owning shard.

        Task ids are fixed up front in item order (exactly the ids a
        per-item :meth:`compress` loop would have assigned), each item
        routes by its key through the ring (a dict item's own ``tenant``
        overrides the call-level one), and every shard receives its
        items as one :meth:`HCompress.compress_batch` call in their
        original relative order — so each shard's catalog, schemas, and
        telemetry are byte-identical to the per-task loop's. Results
        return in submission order. Availability is checked for every
        involved shard before any work: a DOWN shard fails the whole
        batch in O(1) with nothing placed anywhere.
        """
        self._check_open()
        specs: list[dict] = []
        tids: list[str] = []
        keys: list[str] = []
        for item in items:
            if isinstance(item, IOTask):
                specs.append({"task": item})
                tids.append(item.task_id)
                keys.append(self.route_key(item.task_id, tenant))
            elif isinstance(item, (bytes, bytearray, memoryview)):
                tid = next_task_id()
                specs.append({"data": bytes(item), "task_id": tid})
                tids.append(tid)
                keys.append(self.route_key(tid, tenant))
            elif isinstance(item, dict):
                spec = dict(item)
                task = spec.get("task")
                if task is not None:
                    tid = task.task_id
                else:
                    tid = spec.get("task_id") or next_task_id()
                    spec["task_id"] = tid
                tids.append(tid)
                # A dict item may carry its own tenant, routing exactly
                # like the per-task loop's compress(..., tenant=...).
                keys.append(self.route_key(tid, spec.get("tenant", tenant)))
                specs.append(spec)
            else:
                raise HCompressError(
                    "compress_batch items must be bytes, IOTask, or dicts "
                    f"of compress() kwargs, got {type(item).__name__}"
                )
        route = self.ring.route
        groups: dict[int, list[int]] = {}
        for index, key in enumerate(keys):
            groups.setdefault(route(key), []).append(index)
        self.supervisor.sweep()
        for shard_id in groups:
            self.supervisor.ensure_up(shard_id)
        results: list[WriteResult | None] = [None] * len(specs)
        for shard_id, indices in groups.items():
            engine = self.engine(shard_id)
            try:
                shard_results = engine.compress_batch(
                    [specs[i] for i in indices],
                    deadline=deadline,
                    qos_class=qos_class,
                    tenant=tenant,
                )
            except QosError:
                self.supervisor.record_outcome(shard_id, ok=True)
                raise
            except SimulatedCrashError:
                self._abandon(shard_id, "crashed")
                raise
            except TierError:
                self.supervisor.record_outcome(shard_id, ok=False)
                raise
            owners = self._owners
            busy = self.busy_seconds[shard_id]
            for index, result in zip(indices, shard_results):
                results[index] = result
                owners[result.task.task_id] = shard_id
                # one addition per task: bit-identical to the per-task
                # router's accumulation order
                busy += result.compress_seconds + result.io_seconds
            self.busy_seconds[shard_id] = busy
            for _ in indices:
                self.supervisor.record_outcome(shard_id, ok=True)
        return results

    def decompress_batch(
        self, task_ids, *, deadline: float | None = None
    ) -> list[ReadResult]:
        """Route a batch of reads to their owning shards.

        Grouping mirrors :meth:`compress_batch`: order within each shard
        is preserved, results return in submission order, and every
        involved shard must be UP before any read is issued.
        """
        self._check_open()
        task_ids = list(task_ids)
        owners = self._owners
        route = self.ring.route
        groups: dict[int, list[int]] = {}
        for index, tid in enumerate(task_ids):
            shard_id = owners.get(tid)
            if shard_id is None:
                shard_id = route(tid)
            groups.setdefault(shard_id, []).append(index)
        self.supervisor.sweep()
        for shard_id in groups:
            self.supervisor.ensure_up(shard_id)
        results: list[ReadResult | None] = [None] * len(task_ids)
        for shard_id, indices in groups.items():
            engine = self.engine(shard_id)
            try:
                shard_results = engine.decompress_batch(
                    [task_ids[i] for i in indices], deadline=deadline
                )
            except QosError:
                self.supervisor.record_outcome(shard_id, ok=True)
                raise
            except SimulatedCrashError:
                self._abandon(shard_id, "crashed")
                raise
            except TierError:
                self.supervisor.record_outcome(shard_id, ok=False)
                raise
            busy = self.busy_seconds[shard_id]
            for index, result in zip(indices, shard_results):
                results[index] = result
                busy += result.decompress_seconds + result.io_seconds
            self.busy_seconds[shard_id] = busy
            for _ in indices:
                self.supervisor.record_outcome(shard_id, ok=True)
        return results

    # -- failure domains -----------------------------------------------------

    def kill_shard(self, shard_id: int, reason: str = "killed") -> None:
        """Crash one shard: abandon its engine mid-flight.

        Models abrupt process death — the journal is *not* synced or
        closed (buffered records die with the process, exactly what
        restore must cope with); only the piece thread pool is joined,
        because in-process simulation must not leak OS threads. The
        shard's tiers survive (durable external services) and its
        tenants start seeing :class:`~repro.errors.ShardUnavailableError`
        on the next dispatch. Other shards are untouched.
        """
        self._check_open()
        self._abandon(shard_id, reason)

    def _abandon(self, shard_id: int, reason: str) -> None:
        engine = self.engines[shard_id]
        if engine is not None:
            engine.manager.shutdown()  # thread hygiene; journal left un-synced
            self.engines[shard_id] = None
        self.supervisor.mark_down(shard_id, reason)

    def restore_shard(self, shard_id: int) -> HCompress:
        """Bring a DOWN shard back from its own journal + checkpoint.

        Replays the shard's recovery directory through the ordinary
        :meth:`HCompress.restore` path against the surviving hierarchy
        slice, re-registers the shard's tasks in the owner map, and
        marks it UP (bumping the manifest). Requires a deployment
        directory — an in-memory shard has nothing to restore from.
        """
        self._check_open()
        if self.root is None:
            raise HCompressError(
                "restore_shard needs a deployment directory: construct "
                "with ShardConfig(directory=...) or recovery enabled"
            )
        old = self.engines[shard_id]
        if old is not None:
            old.manager.shutdown()
        engine = HCompress.restore(
            self._engine_config(shard_id).recovery.directory,
            self.hierarchies[shard_id],
            config=self.config,
            seed=self.seed,
            clock=self._clock,
        )
        self.engines[shard_id] = engine
        for tid in engine.manager.catalog_snapshot():
            self._owners[tid] = shard_id
        self.supervisor.mark_up(shard_id)
        return engine

    def verify_manifest(self) -> ShardManifest:
        """Re-read the on-disk manifest, rejecting stale versions."""
        if self.root is None or self.manifest is None:
            raise HCompressError("no deployment directory, no manifest")
        return read_manifest(self.root, min_version=self.manifest.version)

    # -- lifecycle tiering ---------------------------------------------------

    def lifecycle_step(self, force: bool = False) -> dict[int, list]:
        """Step every UP shard's lifecycle daemon once, in shard order.

        Each shard's daemon scans only that shard's own catalog and
        migrates within that shard's hierarchy slice — per-shard journals
        keep the WAL discipline local. Returns the migrations executed
        per shard id (shards without a daemon are omitted).
        """
        self._check_open()
        out: dict[int, list] = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if (
                engine is not None
                and engine.lifecycle is not None
                and self.supervisor.is_up(shard_id)
            ):
                out[shard_id] = engine.lifecycle.step(force=force)
        return out

    def lifecycle_status(self) -> dict[int, dict]:
        """Per-shard daemon status for every live shard with one."""
        self._check_open()
        return {
            shard_id: engine.lifecycle.status()
            for shard_id, engine in sorted(self.engines.items())
            if engine is not None and engine.lifecycle is not None
        }

    # -- aggregate views -----------------------------------------------------

    def checkpoint(self) -> tuple[Path, ...]:
        """Checkpoint every live shard; returns the snapshot paths."""
        self._check_open()
        paths = []
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None and self.supervisor.is_up(shard_id):
                paths.append(engine.checkpoint())
        return tuple(paths)

    def footprint_by_tier(self) -> dict[str, int]:
        """Accounted bytes per tier name, summed across shards."""
        totals: dict[str, int] = {}
        for shard_id in sorted(self.hierarchies):
            for name, used in self.hierarchies[shard_id].footprint_by_tier().items():
                totals[name] = totals.get(name, 0) + used
        return totals

    def task_count_by_shard(self) -> dict[int, int]:
        """Catalog size per live shard (distribution diagnostics)."""
        counts = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None:
                counts[shard_id] = len(engine.manager.catalog_snapshot())
        return counts

    def observabilities(self) -> dict[int, object]:
        """Shard id -> synced Observability for every live shard with
        telemetry enabled (the CLI's multi-registry aggregation input)."""
        out = {}
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None and engine.obs is not None:
                out[shard_id] = engine.sync_telemetry()
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every live shard deterministically (idempotent).

        Joins each shard's piece thread pool and syncs + closes each
        journal via :meth:`HCompress.close`; the supervisor and router
        own no threads of their own. Safe to call repeatedly.
        """
        for shard_id in sorted(self.engines):
            engine = self.engines[shard_id]
            if engine is not None:
                engine.close()
        self._closed = True

    def __enter__(self) -> "ShardedHCompress":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise HCompressError("sharded engine already closed")
