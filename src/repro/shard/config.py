"""Shard-layout configuration and tier-budget splitting.

A :class:`ShardConfig` describes the static layout of a sharded
deployment: how many engine shards exist, how keys map onto them
(virtual-node count and hash seed of the consistent ring), how the
supervisor decides a shard is dead, and where each shard's durable
state lives. Like every other subsystem config it is frozen, validated
at construction, and defaults to the feature-off shape (``shards=1``)
that keeps behavior byte-identical to a single unsharded engine.

:func:`split_tier_specs` turns one hierarchy description into a shard's
slice of it: capacity and lanes are divided with the remainder spread
over the lowest shard ids, bandwidth is divided evenly, latency and the
shared flag are inherent to the hardware and pass through unchanged.
With ``shards == 1`` the specs are returned untouched (identity, not a
copy), which is what makes the single-shard engine provably identical
to an unsharded one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from ..replication.config import ReplicationConfig
from ..tiers import TierSpec

__all__ = ["ShardConfig", "shard_dirname", "split_tier_specs"]


def shard_dirname(shard_id: int) -> str:
    """Per-shard recovery subdirectory name (``shard-03``), zero-padded
    so directory listings sort in shard order."""
    return f"shard-{shard_id:02d}"


@dataclass(frozen=True)
class ShardConfig:
    """Static layout of a sharded HCompress deployment.

    Attributes:
        shards: Number of independent engine shards. ``1`` (the default)
            is the feature-off shape: one shard owning the whole
            hierarchy, byte-identical to an unsharded engine.
        virtual_nodes: Ring points per shard. More points smooth the key
            distribution at the cost of a larger (still tiny) ring.
        hash_seed: Seed of the ring's stable hash. Routing is a pure
            function of ``(key, shards, virtual_nodes, hash_seed)`` —
            independent of ``PYTHONHASHSEED``, process, and platform.
        failure_threshold: Consecutive infrastructure failures (the
            ``TierError`` family) on one shard before the supervisor
            marks it DOWN. QoS rejections (sheds, deadlines) are policy,
            not health, and never count.
        heartbeat_timeout: Modeled seconds a shard may go without a
            successful operation before a supervisor sweep marks it
            DOWN. ``None`` disables timeout-based detection (outcome
            thresholds still apply).
        directory: Root of the deployment's durable state: the
            shard-map manifest lives at its top and each shard journals
            and checkpoints under ``shard-NN/``. ``None`` runs fully in
            memory (no manifest, no per-shard recovery).
        replication: Standby-replica policy
            (:class:`~repro.replication.ReplicationConfig`). Disabled by
            default; enabling it requires a deployment directory.
    """

    shards: int = 1
    virtual_nodes: int = 64
    hash_seed: int = 0
    failure_threshold: int = 3
    heartbeat_timeout: float | None = None
    directory: str | Path | None = None
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")

    def shard_directory(self, shard_id: int) -> Path | None:
        """Durable-state directory of one shard (``None`` when in-memory)."""
        if self.directory is None:
            return None
        return Path(self.directory) / shard_dirname(shard_id)


def _split_count(total: int, index: int, shards: int) -> int:
    """``total`` split ``shards`` ways; remainder goes to low indices."""
    return total // shards + (1 if index < total % shards else 0)


def split_tier_specs(
    specs: Sequence[TierSpec], index: int, shards: int
) -> tuple[TierSpec, ...]:
    """Shard ``index``'s slice of a hierarchy description.

    Capacity and lanes are integer-split with the remainder spread over
    the lowest shard ids (so the sum over shards is exactly the
    original); bandwidth divides evenly; per-operation latency and the
    shared flag describe the hardware itself and pass through. Every
    shard keeps at least one lane. ``shards == 1`` returns the input
    specs untouched.
    """
    if not 0 <= index < shards:
        raise ValueError(f"shard index {index} out of range for {shards}")
    if shards == 1:
        return tuple(specs)
    out = []
    for spec in specs:
        capacity = (
            None
            if spec.capacity is None
            else _split_count(spec.capacity, index, shards)
        )
        lanes = max(1, _split_count(spec.lanes, index, shards))
        out.append(
            replace(
                spec,
                capacity=capacity,
                bandwidth=spec.bandwidth / shards,
                lanes=lanes,
            )
        )
    return tuple(out)
