"""Consistent-hash ring: stable key -> shard routing.

The ring places ``virtual_nodes`` points per shard on a 64-bit circle
using the seeded stable hash from :mod:`repro.hashing` (BLAKE2b-keyed —
never the builtin ``hash()``, whose per-process ``PYTHONHASHSEED``
randomisation would scatter keys differently every run). A key routes
to the shard owning the first point clockwise from the key's own hash.

Consistent hashing keeps the layout incremental: growing an ``N``-shard
ring to ``N+1`` moves only ``~1/(N+1)`` of the keyspace, so a resharded
deployment re-homes the minimum amount of data. Routing is a pure
function of ``(key, shards, virtual_nodes, seed)`` — deterministic
across processes, platforms, and hash-seed environments.
"""

from __future__ import annotations

from bisect import bisect_right

from ..hashing import stable_str_hash

__all__ = ["ConsistentHashRing"]


class ConsistentHashRing:
    """Immutable ring mapping string keys onto ``shards`` shard ids."""

    def __init__(
        self, shards: int, virtual_nodes: int = 64, seed: int = 0
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        points = []
        for shard_id in range(shards):
            for vnode in range(virtual_nodes):
                points.append(
                    (stable_str_hash(f"{shard_id}:{vnode}", seed), shard_id)
                )
        # Ties (two vnodes hashing identically) resolve to the lower
        # shard id via the tuple sort — deterministic either way.
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(self, key: str) -> int:
        """Shard id owning ``key`` (first ring point clockwise)."""
        if self.shards == 1:
            return 0
        point = stable_str_hash(key, self.seed)
        idx = bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap: past the last point means the first owner
        return self._owners[idx]

    def distribution(self, keys) -> dict[int, int]:
        """Key count per shard — a test/diagnostics helper."""
        counts: dict[int, int] = {s: 0 for s in range(self.shards)}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
