"""Shard supervisor: health tracking and fail-fast gating.

The supervisor watches each shard through the outcomes the router feeds
it — every operation reports success or an infrastructure failure — on
the deployment's modeled clock. A shard goes DOWN when either

* ``failure_threshold`` consecutive infrastructure failures accumulate
  (the ``TierError`` family: outages, exhausted retries, hierarchy-wide
  unavailability), or
* a sweep finds its last successful heartbeat older than
  ``heartbeat_timeout`` modeled seconds, or
* the router explicitly kills it (the chaos harness's crash injection).

QoS rejections (sheds, deadline misses) are policy decisions, never
health signals — a shard correctly protecting itself under overload
must not be declared dead for it.

While a shard is DOWN, :meth:`ensure_up` fails fast with
:class:`~repro.errors.ShardUnavailableError` before any planning or
engine work, so traffic for a dead shard costs O(1) and every other
shard keeps serving undisturbed. With replication enabled a third state
joins the pair: PROMOTING, the modeled window while a standby finishes
taking over. Promoting shards shed traffic with the *retryable*
:class:`~repro.errors.FailoverInProgressError` (a QoS-class policy
rejection, not a health signal) and flip to UP automatically once the
modeled clock passes their ready time — no operator action, no extra
event source. Transitions append to a replayable trace and invoke an
optional callback (the router persists each transition into the
shard-map manifest).

The supervisor owns no threads: health is updated synchronously from
operation outcomes and explicit sweeps, which keeps shutdown trivially
deterministic and the whole subsystem replayable under the sim clock.
"""

from __future__ import annotations

from typing import Callable

from ..errors import FailoverInProgressError, ShardUnavailableError
from .config import ShardConfig

__all__ = ["ShardHealth", "ShardSupervisor"]


class ShardHealth:
    """Mutable per-shard health record."""

    __slots__ = ("shard_id", "status", "consecutive_failures",
                 "last_heartbeat", "reason", "promote_ready_at")

    def __init__(self, shard_id: int, now: float) -> None:
        self.shard_id = shard_id
        self.status = "UP"
        self.consecutive_failures = 0
        self.last_heartbeat = now
        self.reason = ""
        #: Modeled time the in-flight promotion completes (PROMOTING only).
        self.promote_ready_at = 0.0


class ShardSupervisor:
    """Health authority over a fixed set of shards.

    Args:
        config: Shard layout (threshold and timeout policy).
        clock: Modeled time source; defaults to a constant 0.0 (timeout
            detection then never fires, outcome thresholds still do).
        on_transition: Called as ``(status, now, shard_id, reason)``
            after every UP/DOWN transition — the router's manifest hook.
    """

    def __init__(
        self,
        config: ShardConfig,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[..., None] | None = None,
    ) -> None:
        self.config = config
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._on_transition = on_transition
        now = self._clock()
        self.health = {
            shard_id: ShardHealth(shard_id, now)
            for shard_id in range(config.shards)
        }
        self.trace: list[tuple] = []

    def now(self) -> float:
        return self._clock()

    # -- gating --------------------------------------------------------------

    def is_up(self, shard_id: int) -> bool:
        record = self.health[shard_id]
        self._maybe_complete_promotion(record)
        return record.status == "UP"

    def ensure_up(self, shard_id: int) -> None:
        """Fail fast when the shard is DOWN (the router's pre-dispatch gate).

        A PROMOTING shard sheds with the retryable
        :class:`~repro.errors.FailoverInProgressError` instead — a QoS
        policy rejection carrying the modeled seconds until the promoted
        engine serves — and flips UP by itself once the clock passes its
        ready time.
        """
        record = self.health[shard_id]
        self._maybe_complete_promotion(record)
        if record.status == "PROMOTING":
            remaining = record.promote_ready_at - self.now()
            raise FailoverInProgressError(
                f"shard {shard_id} is promoting a standby "
                f"(ready in {remaining:.3f}s modeled)",
                shard_id=shard_id,
                retry_after=max(remaining, 0.0),
            )
        if record.status != "UP":
            raise ShardUnavailableError(
                f"shard {shard_id} is DOWN ({record.reason})",
                shard_id=shard_id,
                reason=record.reason,
            )

    def up_shards(self) -> tuple[int, ...]:
        return tuple(
            shard_id
            for shard_id in sorted(self.health)
            if self.is_up(shard_id)
        )

    # -- health feed ---------------------------------------------------------

    def record_outcome(self, shard_id: int, ok: bool) -> None:
        """Fold one operation outcome into the shard's health.

        ``ok`` covers QoS rejections too: the router reports them as
        successes because the shard's machinery demonstrably worked.
        """
        record = self.health[shard_id]
        if ok:
            record.consecutive_failures = 0
            record.last_heartbeat = self.now()
            return
        record.consecutive_failures += 1
        if (
            record.status == "UP"
            and record.consecutive_failures >= self.config.failure_threshold
        ):
            self.mark_down(
                shard_id,
                f"{record.consecutive_failures} consecutive failures",
            )

    def sweep(self) -> tuple[int, ...]:
        """Mark shards whose heartbeat has expired DOWN; returns them.

        Also completes any elapsed promotion window — even with timeout
        detection disabled — so a promoting shard flips UP on the next
        sweep after its ready time, not only when its own traffic
        arrives.
        """
        timeout = self.config.heartbeat_timeout
        now = self.now()
        expired = []
        for shard_id in sorted(self.health):
            record = self.health[shard_id]
            self._maybe_complete_promotion(record)
            if (
                timeout is not None
                and record.status == "UP"
                and now - record.last_heartbeat > timeout
            ):
                self.mark_down(shard_id, "heartbeat timeout")
                expired.append(shard_id)
        return tuple(expired)

    # -- transitions ---------------------------------------------------------

    def mark_down(self, shard_id: int, reason: str) -> None:
        record = self.health[shard_id]
        if record.status == "DOWN":
            return
        record.status = "DOWN"
        record.reason = reason
        self._transition("DOWN", shard_id, reason)

    def mark_up(self, shard_id: int, reason: str = "restored") -> None:
        """Return a restored shard to service with clean health."""
        record = self.health[shard_id]
        if record.status == "UP":
            return
        record.status = "UP"
        record.reason = ""
        record.consecutive_failures = 0
        record.last_heartbeat = self.now()
        self._transition("UP", shard_id, reason)

    def mark_promoting(self, shard_id: int, ready_at: float) -> None:
        """Enter the failover window: the shard sheds retryably until the
        modeled clock reaches ``ready_at``, then flips UP by itself.
        A window that has already elapsed goes straight to UP."""
        record = self.health[shard_id]
        record.consecutive_failures = 0
        if ready_at <= self.now():
            self.mark_up(shard_id, "promotion complete")
            return
        record.status = "PROMOTING"
        record.reason = "failover in progress"
        record.promote_ready_at = ready_at
        self._transition("PROMOTING", shard_id, "failover in progress")

    def _maybe_complete_promotion(self, record: ShardHealth) -> None:
        if (
            record.status == "PROMOTING"
            and self.now() >= record.promote_ready_at
        ):
            self.mark_up(record.shard_id, "promotion complete")

    def _transition(self, status: str, shard_id: int, reason: str) -> None:
        event = (status, round(self.now(), 9), shard_id, reason)
        self.trace.append(event)
        if self._on_transition is not None:
            self._on_transition(*event)
