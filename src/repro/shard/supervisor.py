"""Shard supervisor: health tracking and fail-fast gating.

The supervisor watches each shard through the outcomes the router feeds
it — every operation reports success or an infrastructure failure — on
the deployment's modeled clock. A shard goes DOWN when either

* ``failure_threshold`` consecutive infrastructure failures accumulate
  (the ``TierError`` family: outages, exhausted retries, hierarchy-wide
  unavailability), or
* a sweep finds its last successful heartbeat older than
  ``heartbeat_timeout`` modeled seconds, or
* the router explicitly kills it (the chaos harness's crash injection).

QoS rejections (sheds, deadline misses) are policy decisions, never
health signals — a shard correctly protecting itself under overload
must not be declared dead for it.

While a shard is DOWN, :meth:`ensure_up` fails fast with
:class:`~repro.errors.ShardUnavailableError` before any planning or
engine work, so traffic for a dead shard costs O(1) and every other
shard keeps serving undisturbed. Transitions append to a replayable
trace and invoke an optional callback (the router persists each
transition into the shard-map manifest).

The supervisor owns no threads: health is updated synchronously from
operation outcomes and explicit sweeps, which keeps shutdown trivially
deterministic and the whole subsystem replayable under the sim clock.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ShardUnavailableError
from .config import ShardConfig

__all__ = ["ShardHealth", "ShardSupervisor"]


class ShardHealth:
    """Mutable per-shard health record."""

    __slots__ = ("shard_id", "status", "consecutive_failures",
                 "last_heartbeat", "reason")

    def __init__(self, shard_id: int, now: float) -> None:
        self.shard_id = shard_id
        self.status = "UP"
        self.consecutive_failures = 0
        self.last_heartbeat = now
        self.reason = ""


class ShardSupervisor:
    """Health authority over a fixed set of shards.

    Args:
        config: Shard layout (threshold and timeout policy).
        clock: Modeled time source; defaults to a constant 0.0 (timeout
            detection then never fires, outcome thresholds still do).
        on_transition: Called as ``(status, now, shard_id, reason)``
            after every UP/DOWN transition — the router's manifest hook.
    """

    def __init__(
        self,
        config: ShardConfig,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[..., None] | None = None,
    ) -> None:
        self.config = config
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._on_transition = on_transition
        now = self._clock()
        self.health = {
            shard_id: ShardHealth(shard_id, now)
            for shard_id in range(config.shards)
        }
        self.trace: list[tuple] = []

    def now(self) -> float:
        return self._clock()

    # -- gating --------------------------------------------------------------

    def is_up(self, shard_id: int) -> bool:
        return self.health[shard_id].status == "UP"

    def ensure_up(self, shard_id: int) -> None:
        """Fail fast when the shard is DOWN (the router's pre-dispatch gate)."""
        record = self.health[shard_id]
        if record.status != "UP":
            raise ShardUnavailableError(
                f"shard {shard_id} is DOWN ({record.reason})",
                shard_id=shard_id,
                reason=record.reason,
            )

    def up_shards(self) -> tuple[int, ...]:
        return tuple(
            shard_id
            for shard_id in sorted(self.health)
            if self.health[shard_id].status == "UP"
        )

    # -- health feed ---------------------------------------------------------

    def record_outcome(self, shard_id: int, ok: bool) -> None:
        """Fold one operation outcome into the shard's health.

        ``ok`` covers QoS rejections too: the router reports them as
        successes because the shard's machinery demonstrably worked.
        """
        record = self.health[shard_id]
        if ok:
            record.consecutive_failures = 0
            record.last_heartbeat = self.now()
            return
        record.consecutive_failures += 1
        if (
            record.status == "UP"
            and record.consecutive_failures >= self.config.failure_threshold
        ):
            self.mark_down(
                shard_id,
                f"{record.consecutive_failures} consecutive failures",
            )

    def sweep(self) -> tuple[int, ...]:
        """Mark shards whose heartbeat has expired DOWN; returns them."""
        timeout = self.config.heartbeat_timeout
        if timeout is None:
            return ()
        now = self.now()
        expired = []
        for shard_id in sorted(self.health):
            record = self.health[shard_id]
            if (
                record.status == "UP"
                and now - record.last_heartbeat > timeout
            ):
                self.mark_down(shard_id, "heartbeat timeout")
                expired.append(shard_id)
        return tuple(expired)

    # -- transitions ---------------------------------------------------------

    def mark_down(self, shard_id: int, reason: str) -> None:
        record = self.health[shard_id]
        if record.status == "DOWN":
            return
        record.status = "DOWN"
        record.reason = reason
        self._transition("DOWN", shard_id, reason)

    def mark_up(self, shard_id: int) -> None:
        """Return a restored shard to service with clean health."""
        record = self.health[shard_id]
        if record.status == "UP":
            return
        record.status = "UP"
        record.reason = ""
        record.consecutive_failures = 0
        record.last_heartbeat = self.now()
        self._transition("UP", shard_id, "restored")

    def _transition(self, status: str, shard_id: int, reason: str) -> None:
        event = (status, round(self.now(), 9), shard_id, reason)
        self.trace.append(event)
        if self._on_transition is not None:
            self._on_transition(*event)
