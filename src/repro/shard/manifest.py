"""The shard-map manifest: one durable description of the shard layout.

A sharded deployment's per-shard state (journal + snapshot under
``shard-NN/``) is tied together by a single ``shard-map.json`` at the
root directory: shard count, ring parameters, each shard's directory
and last-known status, and a monotone version bumped on every layout
change (construction, a shard marked DOWN, a shard restored). Restore
reads the manifest first — it is the authority on how many shards exist
and where their recovery state lives; a missing or malformed manifest
is a :class:`~repro.errors.ShardManifestError`.

Writes use the same atomicity discipline as engine snapshots
(tmp-write + flush + fsync + ``os.replace`` + directory fsync): a crash
mid-write leaves the previous manifest or the new one, never a torn
file. Stale-version protection is the reader's job: the version only
moves forward, so a manifest read back with a smaller version than one
previously observed signals split-brain and is rejected.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ShardManifestError
from .config import shard_dirname

__all__ = ["MANIFEST_NAME", "ShardManifest", "read_manifest", "write_manifest"]

#: Manifest file name inside a sharded deployment's root directory.
MANIFEST_NAME = "shard-map.json"

#: Current on-disk format version.
MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class ShardManifest:
    """One sharded deployment's durable layout description.

    Attributes:
        version: Monotone layout version; bumped on every status or
            membership change. A reader that has seen version ``v`` must
            reject any manifest with a smaller version.
        shards: Number of engine shards.
        virtual_nodes: Ring points per shard (routing parameter).
        hash_seed: Seed of the ring's stable hash (routing parameter).
        statuses: Shard id -> ``"UP"`` / ``"DOWN"`` / ``"PROMOTING"``
            (a standby mid-promotion) as last persisted.
        directories: Shard id -> recovery directory name, relative to
            the manifest's own directory. Failover re-homes a shard here:
            after a promotion the entry names the promoted standby's
            directory, and the version bump fences the old primary — a
            process still holding the previous version fails its next
            ``min_version`` read instead of double-serving.
    """

    version: int
    shards: int
    virtual_nodes: int
    hash_seed: int
    statuses: dict[int, str] = field(default_factory=dict)
    directories: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ShardManifestError("manifest version must be >= 1")
        if self.shards < 1:
            raise ShardManifestError("manifest shard count must be >= 1")
        for shard_id, status in self.statuses.items():
            if not 0 <= shard_id < self.shards:
                raise ShardManifestError(
                    f"manifest status for unknown shard {shard_id}"
                )
            if status not in ("UP", "DOWN", "PROMOTING"):
                raise ShardManifestError(
                    f"shard {shard_id} has invalid status {status!r}"
                )

    @classmethod
    def initial(
        cls, shards: int, virtual_nodes: int, hash_seed: int
    ) -> "ShardManifest":
        """Fresh version-1 layout: every shard UP, default directories."""
        return cls(
            version=1,
            shards=shards,
            virtual_nodes=virtual_nodes,
            hash_seed=hash_seed,
            statuses={s: "UP" for s in range(shards)},
            directories={s: shard_dirname(s) for s in range(shards)},
        )

    def with_status(self, shard_id: int, status: str) -> "ShardManifest":
        """Next layout version with one shard's status changed."""
        statuses = dict(self.statuses)
        statuses[shard_id] = status
        return ShardManifest(
            version=self.version + 1,
            shards=self.shards,
            virtual_nodes=self.virtual_nodes,
            hash_seed=self.hash_seed,
            statuses=statuses,
            directories=dict(self.directories),
        )

    def with_promotion(
        self, shard_id: int, directory: str, status: str = "PROMOTING"
    ) -> "ShardManifest":
        """Next layout version with one shard re-homed to a promoted
        standby's directory.

        The version bump is the failover fence: any process that
        observed an older version (the dead primary's owner, a stale
        router) fails its next ``min_version`` manifest read instead of
        acting on the superseded layout.
        """
        statuses = dict(self.statuses)
        statuses[shard_id] = status
        directories = dict(self.directories)
        directories[shard_id] = directory
        return ShardManifest(
            version=self.version + 1,
            shards=self.shards,
            virtual_nodes=self.virtual_nodes,
            hash_seed=self.hash_seed,
            statuses=statuses,
            directories=directories,
        )

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "shards": self.shards,
            "virtual_nodes": self.virtual_nodes,
            "hash_seed": self.hash_seed,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "directories": {
                str(k): v for k, v in sorted(self.directories.items())
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ShardManifest":
        try:
            fmt = int(raw["format"])
            if fmt != MANIFEST_FORMAT:
                raise ShardManifestError(
                    f"unsupported manifest format {fmt} "
                    f"(this build reads {MANIFEST_FORMAT})"
                )
            return cls(
                version=int(raw["version"]),
                shards=int(raw["shards"]),
                virtual_nodes=int(raw["virtual_nodes"]),
                hash_seed=int(raw["hash_seed"]),
                statuses={
                    int(k): str(v) for k, v in raw.get("statuses", {}).items()
                },
                directories={
                    int(k): str(v)
                    for k, v in raw.get("directories", {}).items()
                },
            )
        except ShardManifestError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise ShardManifestError(
                f"shard manifest is malformed: {exc}"
            ) from exc


def write_manifest(
    directory: str | Path, manifest: ShardManifest, fsync: bool = True
) -> Path:
    """Atomically persist the manifest into ``directory``; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_NAME
    tmp = directory / (MANIFEST_NAME + ".tmp")
    blob = json.dumps(manifest.to_dict(), separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            pass  # platform without directory fds
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    return path


def read_manifest(
    directory: str | Path, min_version: int = 1
) -> ShardManifest:
    """Load the manifest from a deployment root.

    ``min_version`` rejects stale manifests: callers that have already
    observed version ``v`` pass ``v`` so a rolled-back file (split
    brain, restored backup) fails loudly instead of silently re-routing.
    Raises :class:`~repro.errors.ShardManifestError` when the file is
    absent, malformed, or older than ``min_version``.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise ShardManifestError(f"no shard manifest at {path}") from None
    except (OSError, ValueError) as exc:
        raise ShardManifestError(
            f"shard manifest {path} is unreadable: {exc}"
        ) from exc
    manifest = ShardManifest.from_dict(raw)
    if manifest.version < min_version:
        raise ShardManifestError(
            f"stale shard manifest: version {manifest.version} < "
            f"already-observed {min_version}"
        )
    return manifest
