"""The System Monitor (paper §IV-E).

Reports the status of the storage hierarchy — availability (boolean), load
(queue size) and remaining capacity (bytes) per tier — to the HCDP engine.
The paper implements this as a background thread shelling out to ``du`` and
``iostat``; against our simulated hierarchy the same three signals are read
directly from the tier runtimes, throttled by a sampling interval so the
engine sees periodically-refreshed (slightly stale) data exactly as it
would in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple

from ..tiers import StorageHierarchy

__all__ = ["TierStatus", "SystemStatus", "SystemMonitor", "RawSample"]


class RawSample(NamedTuple):
    """One :meth:`SystemMonitor.sample_raw` snapshot as plain tuples.

    Carries the same per-tier signals as a :class:`SystemStatus` without
    constructing the frozen dataclasses — the batch planner's hot loop
    only compares these tuples against the previous task's, and only
    materialises :class:`TierStatus` objects on a signature miss.
    ``remaining`` is raw (not zeroed for down tiers), exactly as
    :class:`TierStatus` stores it; use :meth:`effective_remaining` for
    the planner's view.
    """

    time: float
    names: tuple[str, ...]
    available: tuple[bool, ...]
    loads: tuple[int, ...]
    queued: tuple[int, ...]
    remaining: tuple[int | None, ...]
    used: tuple[int, ...]
    signature: tuple

    def effective_remaining(self) -> tuple[int | None, ...]:
        """Per-tier remaining, zeroed when down (``TierStatus`` semantics)."""
        return tuple(
            0 if not avail else rem
            for avail, rem in zip(self.available, self.remaining)
        )

    def to_status(self) -> SystemStatus:
        """Materialise the equivalent :class:`SystemStatus` snapshot."""
        tiers = tuple(
            TierStatus(
                name=self.names[i],
                level=i,
                available=self.available[i],
                load=self.loads[i],
                remaining=self.remaining[i],
                used=self.used[i],
                queued_bytes=self.queued[i],
            )
            for i in range(len(self.names))
        )
        return SystemStatus(time=self.time, tiers=tiers)


@dataclass(frozen=True)
class TierStatus:
    """One tier's monitored signals at a sample instant."""

    name: str
    level: int
    available: bool
    load: int
    remaining: int | None
    used: int
    queued_bytes: int = 0

    def effective_remaining(self) -> int | None:
        """Remaining bytes, zeroed when the tier is down."""
        if not self.available:
            return 0
        return self.remaining


@dataclass(frozen=True)
class SystemStatus:
    """Snapshot of the whole hierarchy."""

    time: float
    tiers: tuple[TierStatus, ...]

    def tier(self, name: str) -> TierStatus:
        for status in self.tiers:
            if status.name == name:
                return status
        raise KeyError(f"no tier named {name!r} in snapshot")

    def pressure(self) -> float:
        """Worst bounded-tier fill fraction in [0, 1].

        Unbounded tiers (the PFS) contribute nothing; a downed bounded
        tier counts as full, since its bytes cannot drain anywhere. This
        is the scalar the QoS brownout ladder consumes.
        """
        worst = 0.0
        for status in self.tiers:
            if status.remaining is None:
                continue
            if not status.available:
                worst = max(worst, 1.0)
                continue
            capacity = status.used + status.remaining
            if capacity > 0:
                worst = max(worst, min(status.used / capacity, 1.0))
        return worst


class SystemMonitor:
    """Periodic sampler over a :class:`StorageHierarchy`.

    Args:
        hierarchy: The monitored tier stack.
        clock: Zero-argument callable returning the current time (simulated
            or wall). Defaults to a monotonically increasing call counter so
            the monitor works standalone.
        interval: Minimum time between fresh samples; queries inside the
            interval return the cached snapshot (the staleness the paper's
            periodic thread would exhibit).
        capacity_bands: Quantization of the fill-level signal that feeds
            :attr:`state_epoch`: each bounded tier's used fraction is
            bucketed into this many bands, and the epoch bumps whenever any
            tier crosses a band boundary (or flips availability). Consumers
            holding state derived from a snapshot — the HCDP plan cache —
            invalidate on epoch change.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        clock: Callable[[], float] | None = None,
        interval: float = 0.0,
        capacity_bands: int = 32,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        if capacity_bands < 1:
            raise ValueError(f"capacity_bands must be >= 1, got {capacity_bands}")
        self._hierarchy = hierarchy
        self._interval = interval
        self._capacity_bands = capacity_bands
        if clock is None:
            counter = iter(range(1 << 62))
            clock = lambda: float(next(counter))  # noqa: E731
        self._clock = clock
        self._cached: SystemStatus | None = None
        self._samples = 0
        self._epoch = 0
        self._signature: tuple | None = None

    @property
    def hierarchy(self) -> StorageHierarchy:
        return self._hierarchy

    @property
    def samples_taken(self) -> int:
        return self._samples

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def capacity_bands(self) -> int:
        return self._capacity_bands

    @property
    def state_epoch(self) -> int:
        """Monotone counter of *planning-relevant* state transitions.

        Bumps when a sample observes any tier changing availability or
        crossing a capacity band (used fraction quantized into
        ``capacity_bands`` buckets). Load/queue churn does not bump it —
        those signals are carried exactly in the snapshot itself.
        """
        return self._epoch

    def _band(self, status: TierStatus) -> int:
        """Quantized fill level of one tier (-1 for unbounded tiers)."""
        if status.remaining is None:
            return -1
        capacity = status.used + status.remaining
        if capacity <= 0:
            return 0
        fraction = min(max(status.used / capacity, 0.0), 1.0)
        return min(int(fraction * self._capacity_bands), self._capacity_bands - 1)

    def sample(self) -> SystemStatus:
        """Take a fresh snapshot unconditionally."""
        now = self._clock()
        tiers = tuple(
            TierStatus(
                name=tier.spec.name,
                level=level,
                available=tier.available,
                load=tier.queue_depth,
                remaining=tier.remaining,
                used=tier.used,
                queued_bytes=tier.queued_bytes,
            )
            for level, tier in enumerate(self._hierarchy)
        )
        signature = tuple((t.available, self._band(t)) for t in tiers)
        if self._signature is not None and signature != self._signature:
            self._epoch += 1
        self._signature = signature
        self._cached = SystemStatus(time=now, tiers=tiers)
        self._samples += 1
        return self._cached

    def sample_raw(self) -> RawSample:
        """Fresh snapshot as plain tuples (the batch planner's fast path).

        Side-effect-identical to a ``status()`` refresh at interval 0: it
        consumes the same two clock reads (``status()`` takes one for the
        staleness check before :meth:`sample` takes its own), counts one
        sample, and applies the same signature/epoch update — so a run
        that mixes raw and full sampling sees exactly the counters and
        epochs a full-sampling run would. The cached snapshot is dropped
        rather than rebuilt (callers are gated on ``interval == 0``,
        where every ``status()`` resamples anyway).
        """
        self._clock()
        now = self._clock()
        names = []
        available = []
        loads = []
        queued = []
        remaining = []
        used = []
        signature = []
        bands = self._capacity_bands
        # Reads the tier ledger fields directly (this is the batch path's
        # per-task cost floor; the property indirections of the full
        # sampler are measurable at this call rate). Values are identical
        # to Tier.available/remaining/used/queue_depth/queued_bytes.
        for tier in self._hierarchy:
            avail = tier._available
            fill = tier._used
            limit = tier._capacity_limit
            capacity = tier.spec.capacity
            if limit is not None and (capacity is None or limit < capacity):
                capacity = limit
            rem = None if capacity is None else capacity - fill
            names.append(tier.spec.name)
            available.append(avail)
            loads.append(tier._queue_depth)
            queued.append(tier._queued_bytes)
            remaining.append(rem)
            used.append(fill)
            if rem is None:
                band = -1
            else:
                capacity = fill + rem
                if capacity <= 0:
                    band = 0
                else:
                    fraction = min(max(fill / capacity, 0.0), 1.0)
                    band = min(int(fraction * bands), bands - 1)
            signature.append((avail, band))
        sig = tuple(signature)
        if self._signature is not None and sig != self._signature:
            self._epoch += 1
        self._signature = sig
        self._cached = None
        self._samples += 1
        return RawSample(
            time=now,
            names=tuple(names),
            available=tuple(available),
            loads=tuple(loads),
            queued=tuple(queued),
            remaining=tuple(remaining),
            used=tuple(used),
            signature=sig,
        )

    def restore_state(self, state_epoch: int, samples: int = 0) -> None:
        """Adopt a checkpointed epoch/sample count (crash recovery).

        Keeps :attr:`state_epoch` monotone across an engine restart so
        consumers keyed on it (the HCDP plan cache) can never observe an
        epoch moving backwards. The cached snapshot and band signature are
        dropped — the next sample re-baselines against the live hierarchy
        without a spurious epoch bump.
        """
        if state_epoch < 0 or samples < 0:
            raise ValueError("state_epoch and samples must be >= 0")
        self._epoch = max(self._epoch, state_epoch)
        self._samples = max(self._samples, samples)
        self._signature = None
        self._cached = None

    def invalidate(self) -> None:
        """Drop the cached snapshot so the next :meth:`status` resamples.

        Used by degraded-mode replanning: after an I/O failure the engine
        must not trust a pre-outage sample, whatever the interval says.
        """
        self._cached = None

    def status(self) -> SystemStatus:
        """Current snapshot, refreshed only when the interval has elapsed."""
        now = self._clock()
        if self._cached is None or now - self._cached.time >= self._interval:
            return self.sample()
        return self._cached
