"""The System Monitor (paper §IV-E).

Reports the status of the storage hierarchy — availability (boolean), load
(queue size) and remaining capacity (bytes) per tier — to the HCDP engine.
The paper implements this as a background thread shelling out to ``du`` and
``iostat``; against our simulated hierarchy the same three signals are read
directly from the tier runtimes, throttled by a sampling interval so the
engine sees periodically-refreshed (slightly stale) data exactly as it
would in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..tiers import StorageHierarchy

__all__ = ["TierStatus", "SystemStatus", "SystemMonitor"]


@dataclass(frozen=True)
class TierStatus:
    """One tier's monitored signals at a sample instant."""

    name: str
    level: int
    available: bool
    load: int
    remaining: int | None
    used: int
    queued_bytes: int = 0

    def effective_remaining(self) -> int | None:
        """Remaining bytes, zeroed when the tier is down."""
        if not self.available:
            return 0
        return self.remaining


@dataclass(frozen=True)
class SystemStatus:
    """Snapshot of the whole hierarchy."""

    time: float
    tiers: tuple[TierStatus, ...]

    def tier(self, name: str) -> TierStatus:
        for status in self.tiers:
            if status.name == name:
                return status
        raise KeyError(f"no tier named {name!r} in snapshot")


class SystemMonitor:
    """Periodic sampler over a :class:`StorageHierarchy`.

    Args:
        hierarchy: The monitored tier stack.
        clock: Zero-argument callable returning the current time (simulated
            or wall). Defaults to a monotonically increasing call counter so
            the monitor works standalone.
        interval: Minimum time between fresh samples; queries inside the
            interval return the cached snapshot (the staleness the paper's
            periodic thread would exhibit).
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        clock: Callable[[], float] | None = None,
        interval: float = 0.0,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self._hierarchy = hierarchy
        self._interval = interval
        if clock is None:
            counter = iter(range(1 << 62))
            clock = lambda: float(next(counter))  # noqa: E731
        self._clock = clock
        self._cached: SystemStatus | None = None
        self._samples = 0

    @property
    def hierarchy(self) -> StorageHierarchy:
        return self._hierarchy

    @property
    def samples_taken(self) -> int:
        return self._samples

    def sample(self) -> SystemStatus:
        """Take a fresh snapshot unconditionally."""
        now = self._clock()
        tiers = tuple(
            TierStatus(
                name=tier.spec.name,
                level=level,
                available=tier.available,
                load=tier.queue_depth,
                remaining=tier.remaining,
                used=tier.used,
                queued_bytes=tier.queued_bytes,
            )
            for level, tier in enumerate(self._hierarchy)
        )
        self._cached = SystemStatus(time=now, tiers=tiers)
        self._samples += 1
        return self._cached

    def invalidate(self) -> None:
        """Drop the cached snapshot so the next :meth:`status` resamples.

        Used by degraded-mode replanning: after an I/O failure the engine
        must not trust a pre-outage sample, whatever the interval says.
        """
        self._cached = None

    def status(self) -> SystemStatus:
        """Current snapshot, refreshed only when the interval has elapsed."""
        now = self._clock()
        if self._cached is None or now - self._cached.time >= self._interval:
            return self.sample()
        return self._cached
