"""Small statistics helpers shared by the monitor and the cost predictor."""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Ewma", "SlidingWindow", "r_squared"]


class Ewma:
    """Exponentially-weighted moving average.

    Args:
        alpha: Weight of each new observation, in (0, 1].
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._value: float | None = None

    def update(self, observation: float) -> float:
        if self._value is None:
            self._value = float(observation)
        else:
            self._value += self._alpha * (observation - self._value)
        return self._value

    @property
    def value(self) -> float | None:
        return self._value


class SlidingWindow:
    """Fixed-capacity window of floats with O(1) mean."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._window: deque[float] = deque(maxlen=capacity)
        self._sum = 0.0

    def push(self, value: float) -> None:
        if len(self._window) == self._window.maxlen:
            self._sum -= self._window[0]
        self._window.append(float(value))
        self._sum += float(value)

    def __len__(self) -> int:
        return len(self._window)

    @property
    def mean(self) -> float:
        if not self._window:
            return 0.0
        return self._sum / len(self._window)

    def values(self) -> list[float]:
        return list(self._window)


def r_squared(actual, predicted) -> float:
    """Coefficient of determination.

    Degenerate cases follow the usual convention: perfect prediction of a
    constant series scores 1.0; any error against a constant series scores
    0.0.
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        return 0.0
    ss_res = float(np.sum((actual - predicted) ** 2))
    ss_tot = float(np.sum((actual - actual.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
