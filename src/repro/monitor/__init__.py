"""System Monitor: hierarchy status sampling and statistics helpers."""

from .stats import Ewma, SlidingWindow, r_squared
from .system_monitor import SystemMonitor, SystemStatus, TierStatus

__all__ = [
    "Ewma",
    "SlidingWindow",
    "SystemMonitor",
    "SystemStatus",
    "TierStatus",
    "r_squared",
]
