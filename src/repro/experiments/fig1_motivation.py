"""Fig. 1 — the motivating VPIC experiment.

Paper setup: 2560 processes, 16 timesteps, 8 TB total, written through
(a) the vanilla PFS and (b) Hermes multi-tier buffering (16 GB RAM + 32 GB
NVMe per node, 2 TB burst buffers), each with no compression and with a
fixed Brotli / Zlib / Bzip codec, plus the combined multi-compression
multi-tier configuration (what became HCompress).

Paper result: BASE 4270 s; Hermes alone 2.5x; Brotli 1.93x (ratio ~2,
~90 s compression); Zlib ~5x ratio but 3431 s compression time; Bzip fails
to reduce VPIC data; Brotli + Hermes together ~2x over either alone.
"""

from __future__ import annotations

import numpy as np

from ..hcdp.priorities import Priority
from ..units import GB, MiB, TB
from ..workloads import VpicConfig, run_vpic
from .common import ExperimentTable, make_backend, scaled_hierarchy

__all__ = ["run_fig1", "FIG1_CODECS"]

FIG1_CODECS = ("none", "brotli", "zlib", "bzip2")

_PAPER_RAM = 64 * 16 * GB  # 16 GB per node
_PAPER_NVME = 64 * 32 * GB  # 32 GB per node
_PAPER_BB = 2 * TB
_TIMESTEPS = 16
_TASK = 200 * MiB  # 2560 procs x 16 steps x ~200 MiB ~ 8 TB


def _vpic_config(scale: int, nprocs: int) -> VpicConfig:
    return VpicConfig(
        nprocs=nprocs,
        timesteps=_TIMESTEPS,
        bytes_per_rank_per_step=max(_TASK // scale, 4096),
        compute_seconds=0.0,  # Fig. 1 plots I/O + compression time only
        sample_bytes=64 * 1024,
    )


def run_fig1(
    scale: int = 64,
    nprocs: int = 2560,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 1: each (tiering, codec) scenario's time and ratio."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = ExperimentTable(
        name="Fig. 1 - VPIC motivation",
        description=(
            "VPIC with single-tier (PFS) vs multi-tier (Hermes) storage "
            "crossed with static compression codecs, plus the combined "
            f"multi-compression multi-tier engine (scaled 1/{scale})."
        ),
        columns=[
            "scenario",
            "codec",
            "compression_s",
            "io_s",
            "total_s",
            "ratio",
        ],
    )
    config = _vpic_config(scale, nprocs)

    scenarios: list[tuple[str, str, str]] = []
    for codec in FIG1_CODECS:
        scenarios.append(("Single Tier (PFS)", codec, "static-pfs"))
    for codec in FIG1_CODECS:
        scenarios.append(("Multi-Tiered (Hermes)", codec, "hermes"))
    scenarios.append(("Multi-Comp Multi-Tiered", "dynamic", "hcompress"))

    # Shrinking the rank count must shrink capacities too, or the tiers
    # absorb the whole (smaller) dataset and every multi-tier scenario
    # degenerates to RAM speed.
    cap_scale = scale * max(2560 // nprocs, 1)
    for scenario, codec, kind in scenarios:
        hierarchy = scaled_hierarchy(_PAPER_RAM, _PAPER_NVME, _PAPER_BB, cap_scale)
        if kind == "static-pfs":
            backend = make_backend("STWC", hierarchy, stwc_codec=codec)
        elif kind == "hermes":
            if codec == "none":
                backend = make_backend("MTNC", hierarchy)
            else:
                backend = make_backend(
                    f"HERMES+{codec}", hierarchy, hermes_codec=codec
                )
        else:
            backend = make_backend(
                "HC",
                hierarchy,
                priority=Priority(compression=1.0, ratio=1.0, decompression=0.0),
                seed=seed,
            )
        result = run_vpic(backend, config, hierarchy, rng=rng)
        comp_per_rank = result.compression_seconds_total / config.nprocs
        table.add_row(
            scenario,
            codec,
            comp_per_rank,
            max(result.elapsed_seconds - comp_per_rank, 0.0),
            result.elapsed_seconds,
            result.achieved_ratio,
        )
    table.note(
        "Paper: PFS/none 4270 s; Hermes/none 2.5x; PFS+Brotli 1.93x "
        "(ratio ~2); PFS+Zlib ratio ~5 but 3431 s compressing; Bzip ~no "
        "reduction; combined engine ~2x over either optimization alone."
    )
    return table
