"""Lifecycle figure — zipfian trace: TCO bill with and without the daemon.

Not a figure from the paper: HCompress places data once, at write time.
This experiment extends the evaluation to the data-lifecycle axis the
paper's TCO motivation points at — as the access distribution cools,
write-time placement strands cold blobs on expensive fast tiers and hot
blobs on slow ones. The background lifecycle daemon re-decides tier and
codec from observed access temperature against the modeled $/GB·s
objective.

Result shape: the lifecycle run's empirical bill (storage + access +
migration dollars over the same seeded trace) comes in well below the
baseline's, while the mean hot-read wait *also* improves — the daemon is
not trading latency for cost.
"""

from __future__ import annotations

import numpy as np

from ..lifecycle.workload import ZipfTraceConfig, run_zipf_trace
from .common import ExperimentTable

__all__ = ["run_fig_lifecycle"]


def run_fig_lifecycle(
    tasks: int = 48,
    reads: int = 384,
    zipf_s: float = 1.4,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Replay the zipfian trace with and without lifecycle tiering."""
    config = ZipfTraceConfig(tasks=tasks, reads=reads, zipf_s=zipf_s)
    table = ExperimentTable(
        name="Lifecycle - zipfian trace TCO",
        description=(
            f"{tasks} blobs x {config.task_kib} KiB, {reads} zipf(s={zipf_s})"
            " reads; empirical bill in modeled dollars (storage integral +"
            " priced read wait + priced migrations) and modeled read waits."
        ),
        columns=[
            "run",
            "total_$",
            "storage_$",
            "access_$",
            "migr_$",
            "hot_read_us",
            "all_reads_us",
            "promotions",
            "demotions",
        ],
    )
    runs = {
        "baseline": run_zipf_trace(config, lifecycle=False, seed=seed),
        "lifecycle": run_zipf_trace(config, lifecycle=True, seed=seed),
    }
    for name, run in runs.items():
        table.add_row(
            name,
            round(run.total_dollars, 4),
            round(run.storage_dollars, 4),
            round(run.access_dollars, 4),
            round(run.migration_dollars, 4),
            round(run.mean_hot_read_seconds * 1e6, 2),
            round(run.mean_read_seconds * 1e6, 2),
            run.promotions,
            run.demotions,
        )
    base, life = runs["baseline"], runs["lifecycle"]
    if base.total_dollars:
        table.note(
            f"lifecycle tiering cuts the modeled bill by "
            f"{1.0 - life.total_dollars / base.total_dollars:.1%} while the "
            f"hot-read wait improves "
            f"{base.mean_hot_read_seconds / life.mean_hot_read_seconds:.2f}x."
        )
    residency = ", ".join(
        f"{tier}={count}" for tier, count in life.tier_residency.items()
    )
    table.note(f"final residency with lifecycle tiering: {residency}.")
    return table
