"""Fig. 3 — anatomy of HCompress write and read operations.

Paper setup: 1K tasks of 1 MB; report the fraction of total time spent in
each internal component. Paper result: ~98% of both paths is I/O +
(de)compression; the engine costs 0.76%, library selection 0.06%, feedback
~1% on writes; metadata parsing 1.15% on reads.

Our engine-internal stages are measured wall-clock and divided by the
configured Python-to-native calibration factor; compression and I/O are
modeled (DESIGN.md §6), so the *fractions* are the comparable quantity.
"""

from __future__ import annotations

import numpy as np

from ..core import HCompress, HCompressConfig
from ..tiers import ares_hierarchy
from ..units import GiB, MiB
from ..workloads import MicroConfig, micro_tasks
from .common import ExperimentTable

__all__ = ["run_fig3"]

#: Paper-reported fractions, for the side-by-side note.
PAPER_WRITE = {
    "hcdp_engine": 0.0076,
    "library_selection": 0.0006,
    "compression": 0.4924,
    "feedback": 0.0100,
    "write": 0.4894,
}
PAPER_READ = {
    "metadata_parsing": 0.0115,
    "library_selection": 0.0006,
    "decompression": 0.4910,
    "feedback": 0.0119,
    "read": 0.4850,
}


def run_fig3(
    n_tasks: int = 1000,
    task_bytes: int = 1 * MiB,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 3: per-component time fractions of write/read ops."""
    rng = rng if rng is not None else np.random.default_rng(0)
    # Tiny upper tiers: the 1 MB tasks land mostly on the slow shared
    # tiers, where compression time and I/O time are comparable — the
    # ~49/49 regime the paper's anatomy was measured in.
    hierarchy = ares_hierarchy(
        ram_capacity=4 * task_bytes,
        nvme_capacity=8 * task_bytes,
        bb_capacity=n_tasks * task_bytes // 8,
        nodes=1,
    )
    engine = HCompress(hierarchy, HCompressConfig(), seed=seed)
    config = MicroConfig(
        nprocs=1,
        tasks_per_proc=n_tasks,
        task_bytes=task_bytes,
        dtype="float64",
        distribution="gamma",
    )
    tasks = micro_tasks(config, rng)
    for task in tasks:
        engine.compress(
            task.sample,
            hints=task.hints,
            modeled_size=task.size,
            task_id=task.task_id,
        )
    for task in tasks:
        engine.decompress(task.task_id)

    table = ExperimentTable(
        name="Fig. 3 - anatomy of operations",
        description=(
            f"{n_tasks} tasks of {task_bytes // MiB} MiB: fraction of total "
            "time per component (write and read paths)."
        ),
        columns=["path", "component", "fraction", "paper_fraction"],
    )
    write = engine.anatomy.write_breakdown()
    for component, fraction in write.items():
        table.add_row("write", component, fraction, PAPER_WRITE.get(component, 0.0))
    read = engine.anatomy.read_breakdown()
    for component, fraction in read.items():
        table.add_row("read", component, fraction, PAPER_READ.get(component, 0.0))
    overhead_w = 1.0 - write.get("compression", 0.0) - write.get("write", 0.0)
    table.note(
        f"Write-path engine overhead (everything except compression+IO): "
        f"{overhead_w:.2%} (paper: ~2%)."
    )
    return table
