"""Fig. 4 — performance of the internal components.

(a) HCDP engine throughput vs task size: 8K write plans per size; the
    paper measures ~2.44 G tasks/s (native C) flat up to 4 MB, dropping
    2-3% beyond as tasks split across tiers. We report our Python engine's
    true wall-clock throughput — absolute numbers differ by the language
    constant, the *shape* (flat, then a small drop past ~4 MB) is the
    reproduced claim.

(b) Compression Cost Predictor accuracy + feedback throughput per data
    distribution: 8K 1 MB writes per distribution; the paper reports
    ~95.5% accuracy and ~20 K feedback events/s flat across distributions.
"""

from __future__ import annotations

import time

import numpy as np

from ..ccp import CostObservation, ObservationKey
from ..core import HCompress, HCompressConfig
from ..hcdp import IOTask
from ..tiers import ares_hierarchy
from ..units import GiB, KiB, MiB
from ..workloads import MicroConfig, micro_tasks
from ..datagen import DISTRIBUTIONS, synthetic_buffer
from .common import ExperimentTable

__all__ = ["run_fig4a", "run_fig4b"]

_SIZES = (4 * KiB, 64 * KiB, 512 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB)


def run_fig4a(
    plans_per_size: int = 8000,
    sizes: tuple[int, ...] = _SIZES,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Fig. 4(a): engine planning throughput across task sizes."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = ExperimentTable(
        name="Fig. 4(a) - HCDP engine throughput",
        description=(
            f"{plans_per_size} write plans per task size; wall-clock "
            "planning throughput of the Python engine (paper: native C at "
            "~2.44e9 tasks/s, flat to 4 MB then -2-3%)."
        ),
        columns=["task_bytes", "tasks_per_s", "relative_to_smallest"],
    )
    # Tier capacities sized so tasks <= 4 MB fit whole (flat region) and
    # larger tasks must split across tiers (the paper's dip region).
    hierarchy = ares_hierarchy(
        ram_capacity=6 * MiB, nvme_capacity=12 * MiB, bb_capacity=48 * MiB, nodes=4
    )
    engine = HCompress(hierarchy, HCompressConfig(), seed=seed)
    sample = synthetic_buffer("float64", "gamma", 64 * KiB, rng)
    analysis = engine.analyzer.analyze(sample)

    first_throughput = None
    for size in sizes:
        t0 = time.perf_counter()
        for i in range(plans_per_size):
            engine.engine.plan(IOTask(f"fig4a/{size}/{i}", size, analysis))
        wall = time.perf_counter() - t0
        throughput = plans_per_size / wall
        if first_throughput is None:
            first_throughput = throughput
        table.add_row(size, throughput, throughput / first_throughput)
    table.note(
        "Shape claim: flat throughput while tasks fit one tier, a small "
        "drop once they split across tiers."
    )
    return table


def run_fig4b(
    tasks_per_distribution: int = 8000,
    task_bytes: int = 1 * MiB,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Fig. 4(b): CCP accuracy (R^2) and feedback throughput per
    distribution."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = ExperimentTable(
        name="Fig. 4(b) - Compression Cost Predictor",
        description=(
            f"{tasks_per_distribution} x {task_bytes // MiB} MiB write "
            "observations per distribution; sliding-window model accuracy "
            "and feedback ingest rate (paper: ~95.5% accuracy, ~20K "
            "events/s)."
        ),
        columns=["distribution", "accuracy_r2", "events_per_s"],
    )
    for distribution in DISTRIBUTIONS:
        hierarchy = ares_hierarchy(
            ram_capacity=1 * GiB, nvme_capacity=2 * GiB, bb_capacity=64 * GiB,
            nodes=4,
        )
        engine = HCompress(hierarchy, HCompressConfig(), seed=seed)
        pool = engine.pool
        # Measure real per-codec ratios once for this distribution, then
        # stream jittered observations through the feedback loop — the
        # drift forces the RLS heads to track, which is what the accuracy
        # metric scores.
        base = {
            name: pool.measure(
                name, synthetic_buffer("float64", distribution, 64 * KiB, rng)
            )
            for name in pool.names[1:]
        }
        t0 = time.perf_counter()
        for i in range(tasks_per_distribution):
            codec = pool.names[1 + i % (len(pool.names) - 1)]
            measured = base[codec]
            jitter = float(rng.lognormal(0.0, 0.08))
            engine.feedback.record(
                CostObservation(
                    key=ObservationKey(
                        "float64", "binary", distribution, codec, task_bytes
                    ),
                    compress_mbps=pool.profile(codec).compress_mbps * jitter,
                    decompress_mbps=pool.profile(codec).decompress_mbps * jitter,
                    ratio=max(measured.ratio * jitter, 1e-3),
                )
            )
        engine.feedback.flush()
        wall = time.perf_counter() - t0
        accuracy = engine.predictor.accuracy("ratio")
        table.add_row(
            distribution,
            accuracy if accuracy is not None else float("nan"),
            tasks_per_distribution / wall,
        )
    table.note(
        "Paper: accuracy ~95.5% across all four distributions, feedback "
        "throughput flat around 20K events/s."
    )
    return table
