"""Fig. 8 — the VPIC-IO + BD-CATS-IO read-after-write workflow.

Paper setup: VPIC writes 10 timesteps, then BD-CATS reads them back for
clustering, at 320-2560 processes on the Fig. 7 hierarchy; HCompress is
configured with all three compression metrics weighted equally.

Paper result: STWC ~1.5x and MTNC ~2.5x over BASE; HCompress ~7x over both
STWC and MTNC (read-after-write patterns benefit most, because compressed
data both fits higher in the hierarchy and reads back smaller).
"""

from __future__ import annotations

import numpy as np

from ..hcdp.priorities import EQUAL
from ..workloads import WorkflowConfig, run_workflow
from .common import ExperimentTable, make_backend
from .fig7_vpic import fig7_hierarchy, fig7_vpic_config

__all__ = ["run_fig8"]


def run_fig8(
    process_counts: tuple[int, ...] = (320, 640, 1280, 2560),
    scale: int = 64,
    backends: tuple[str, ...] = ("BASE", "STWC", "MTNC", "HC"),
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 8: workflow time per (process count, configuration)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = ExperimentTable(
        name="Fig. 8 - VPIC + BD-CATS workflow",
        description=(
            "Write 10 timesteps (VPIC-IO), then read them back (BD-CATS-IO);"
            f" total simulated seconds (scaled 1/{scale})."
        ),
        columns=[
            "nprocs",
            "backend",
            "total_s",
            "write_s",
            "read_s",
            "speedup_vs_base",
        ],
    )
    from ..workloads import BdcatsConfig

    for nprocs in process_counts:
        vpic_config = fig7_vpic_config(nprocs, scale)
        config = WorkflowConfig(
            vpic=vpic_config,
            bdcats=BdcatsConfig(
                nprocs=nprocs,
                timesteps=vpic_config.timesteps,
                cluster_seconds=30.0 / scale,
            ),
        )
        base_time = None
        for backend_name in backends:
            hierarchy = fig7_hierarchy(scale)
            backend = make_backend(backend_name, hierarchy, priority=EQUAL, seed=seed)
            result = run_workflow(backend, config, hierarchy, rng=rng)
            if backend_name == "BASE":
                base_time = result.elapsed_seconds
            speedup = (
                base_time / result.elapsed_seconds
                if base_time and result.elapsed_seconds
                else 1.0
            )
            table.add_row(
                nprocs,
                backend_name,
                result.elapsed_seconds,
                result.write.elapsed_seconds,
                result.read.elapsed_seconds,
                speedup,
            )
    table.note(
        "Paper: STWC ~1.5x, MTNC ~2.5x over BASE; HCompress ~7x over both "
        "STWC and MTNC."
    )
    return table
