"""Fig. 7 — VPIC-IO scaling under the four configurations.

Paper setup: 256 MB per process per timestep, 10 timesteps, hierarchy
fixed at 12.5 GB RAM + 25 GB NVMe (insufficient beyond ~5 steps, forcing a
>60% spill to the burst buffers), CPU kernel at 60 s intervals, process
counts 320 -> 2560. HCompress is configured write-only: priority on
compression time and ratio.

Paper result: HC ~12x over BASE at the largest scale, ~7x on average over
STWC/MTNC; STWC ~1.5x, MTNC ~2x over BASE.
"""

from __future__ import annotations

import numpy as np

from ..hcdp.priorities import Priority
from ..units import GB, MiB
from ..workloads import VpicConfig, run_vpic
from .common import ExperimentTable, make_backend, scaled_hierarchy

__all__ = ["run_fig7", "WRITE_PRIORITY", "fig7_vpic_config", "fig7_hierarchy"]

#: Write-only workload: compression time and ratio matter; decompression
#: never happens (paper §V-C1).
WRITE_PRIORITY = Priority(compression=1.0, ratio=1.0, decompression=0.0)

# "12.5 GB RAM and 25 GB NVMe" (§V-C1) reads as per-node budgets: only then
# does the paper's ">60% of the data spills to the burst buffers" arithmetic
# hold (64 nodes x 37.5 GB ~ 37% of the 6.4 TB the largest run writes).
_PAPER_RAM = 64 * 12_500_000_000  # 12.5 GB x 64 nodes
_PAPER_NVME = 64 * 25 * GB  # 25 GB x 64 nodes
_PAPER_BB = 2_000 * GB
_PAPER_TASK = 256 * MiB
_PAPER_COMPUTE = 60.0
_TIMESTEPS = 10


def fig7_vpic_config(nprocs: int, scale: int) -> VpicConfig:
    """The paper's VPIC parameters shrunk by ``scale``."""
    return VpicConfig(
        nprocs=nprocs,
        timesteps=_TIMESTEPS,
        bytes_per_rank_per_step=max(_PAPER_TASK // scale, 4096),
        compute_seconds=_PAPER_COMPUTE / scale,
        sample_bytes=64 * 1024,
    )


def fig7_hierarchy(scale: int):
    """The paper's fixed 12.5 GB / 25 GB / 2 TB hierarchy, shrunk."""
    return scaled_hierarchy(_PAPER_RAM, _PAPER_NVME, _PAPER_BB, scale=scale)


def run_fig7(
    process_counts: tuple[int, ...] = (320, 640, 1280, 2560),
    scale: int = 64,
    backends: tuple[str, ...] = ("BASE", "STWC", "MTNC", "HC"),
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 7: elapsed time per (process count, configuration)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    table = ExperimentTable(
        name="Fig. 7 - VPIC-IO",
        description=(
            "VPIC-IO checkpointing, 10 timesteps, simulated I/O seconds "
            "(compute phases excluded, per the paper's metric; all sizes "
            f"scaled 1/{scale}, so ratios are scale-invariant)."
        ),
        columns=[
            "nprocs",
            "backend",
            "io_s",
            "elapsed_s",
            "stored_ratio",
            "speedup_vs_base",
        ],
    )
    for nprocs in process_counts:
        config = fig7_vpic_config(nprocs, scale)
        base_time = None
        for backend_name in backends:
            hierarchy = fig7_hierarchy(scale)
            backend = make_backend(
                backend_name, hierarchy, priority=WRITE_PRIORITY, seed=seed
            )
            result = run_vpic(backend, config, hierarchy, rng=rng)
            if backend_name == "BASE":
                base_time = result.io_seconds
            speedup = (
                base_time / result.io_seconds
                if base_time and result.io_seconds
                else 1.0
            )
            table.add_row(
                nprocs,
                backend_name,
                result.io_seconds,
                result.elapsed_seconds,
                result.achieved_ratio,
                speedup,
            )
    table.note(
        "Paper: STWC ~1.5x, MTNC ~2x, HC ~12x over BASE at 2560 procs "
        "(7x average over the other optimizations)."
    )
    return table
