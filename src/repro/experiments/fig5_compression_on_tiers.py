"""Fig. 5 — impact of data compression on multi-tiered storage.

Paper setup: 2560 ranks across 64 nodes issue 128 x 1 MB write tasks each
(320 GB total) into a 64 GB RAM / 192 GB NVMe / 2 TB BB hierarchy. Hermes
solves placement on the *uncompressed* size and then applies one static
codec (so the upper tiers end up under-utilised); HCompress places by
compressed footprint.

Paper result: footprints shrink per codec (brotli -> 203 GB / 634 s, zlib
-> 70 GB / 218 s, lz4 leaves RAM at 17/64 GB); HCompress is up to 8x over
no compression and >= 1.72x over every static codec.
"""

from __future__ import annotations

import numpy as np

from ..hcdp.priorities import Priority
from ..units import GB, MiB, TB
from ..workloads import MicroConfig, run_micro
from .common import ExperimentTable, make_backend, scaled_hierarchy

__all__ = ["run_fig5", "FIG5_CODECS"]

#: The paper's x-axis order (Fig. 5): None + eight static libraries + HC.
FIG5_CODECS = (
    "none",
    "brotli",
    "zlib",
    "huffman",
    "lz4",
    "bzip2",
    "quicklz",
    "lzo",
    "lzma",
    "snappy",
    "pithy",
    "bsc",
)

_PAPER_RAM = 64 * GB
_PAPER_NVME = 192 * GB
_PAPER_BB = 2 * TB
_PAPER_RANKS = 2560
_PAPER_TASKS = 128
_PAPER_TASK_BYTES = 1 * MiB


def run_fig5(
    scale: int = 16,
    nprocs: int = 256,
    codecs: tuple[str, ...] = FIG5_CODECS,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 5: per-tier footprint + elapsed time per scenario.

    ``scale`` divides the per-rank task count; tier capacities track the
    dataset so the paper's capacity *proportions* (RAM 20%, NVMe 60%,
    BB 6.4x of the 320 GB) hold at any scale. ``nprocs`` trades rank
    concurrency against wall time — the per-rank bandwidth share it sets
    is what decides the compression/I-O trade-off.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    tasks_per_proc = max(_PAPER_TASKS // scale, 4)
    table = ExperimentTable(
        name="Fig. 5 - compression on multi-tiered storage",
        description=(
            f"{nprocs} ranks x {tasks_per_proc} x 1 MiB writes; Hermes "
            "placement-then-compression per codec vs HCompress (ranks and "
            f"capacities scaled 1/{scale})."
        ),
        columns=[
            "scenario",
            "ram_gib",
            "nvme_gib",
            "bb_gib",
            "pfs_gib",
            "footprint_gib",
            "elapsed_s",
        ],
    )
    config = MicroConfig(
        nprocs=nprocs,
        tasks_per_proc=tasks_per_proc,
        task_bytes=_PAPER_TASK_BYTES,
        dtype="float64",
        distribution="gamma",
    )

    scenarios: list[tuple[str, str]] = [("None (Hermes)", "mtnc")]
    scenarios += [(f"Hermes+{codec}", codec) for codec in codecs if codec != "none"]
    scenarios.append(("HCompress", "hc"))

    # Capacities proportional to the modeled dataset (paper: 320 GB data
    # against 64 GB RAM / 192 GB NVMe / 2 TB BB).
    paper_total = _PAPER_RANKS * _PAPER_TASKS * _PAPER_TASK_BYTES
    cap_scale = max(paper_total // config.total_bytes, 1)

    for label, kind in scenarios:
        hierarchy = scaled_hierarchy(_PAPER_RAM, _PAPER_NVME, _PAPER_BB, cap_scale)
        if kind == "mtnc":
            backend = make_backend("MTNC", hierarchy)
        elif kind == "hc":
            backend = make_backend(
                "HC",
                hierarchy,
                priority=Priority(compression=1.0, ratio=1.0, decompression=0.0),
                seed=seed,
            )
        else:
            backend = make_backend(
                f"HERMES+{kind}", hierarchy, hermes_codec=kind
            )
        # No flusher here: Fig. 5 measures the placement footprint itself,
        # which draining would erase.
        result = run_micro(
            backend, config, hierarchy, rng=rng, flush=False,
            think_seconds=0.002,
        )
        footprint = result.footprint_by_tier
        gib = 1024**3
        table.add_row(
            label,
            footprint.get("ram", 0) / gib,
            footprint.get("nvme", 0) / gib,
            footprint.get("burst_buffer", 0) / gib,
            footprint.get("pfs", 0) / gib,
            sum(footprint.values()) / gib,
            result.elapsed_seconds,
        )
    table.note(
        "Paper: HCompress up to 8x faster than Hermes/no-compression and "
        ">= 1.72x over every static library; static codecs leave the upper "
        "tiers under-utilised because Hermes reserves by uncompressed size."
    )
    return table
