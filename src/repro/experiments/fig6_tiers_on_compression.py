"""Fig. 6 — impact of multi-tiered storage on data compression.

Paper setup: 2560 ranks, each issuing 512 tasks of "compress + write
512 KB, then read + decompress it" (600 GB total). Each codec runs against
each single tier (the whole dataset fits), against the multi-tier stack
(32 GB RAM / 96 GB NVMe / 1 TB BB), and HCompress runs against the stack.

Paper result: heavy codecs (bsc, brotli, zlib) are flat across tiers
(CPU-bound); light codecs (pithy, snappy, lz4, huffman, lzo) track tier
bandwidth; multi-tier throughput averages the variability out; HCompress
beats every static multi-tier codec by 1.4-3x by matching libraries to
tiers.
"""

from __future__ import annotations

import numpy as np

from ..hcdp.priorities import EQUAL
from ..tiers import StorageHierarchy, Tier
from ..tiers.presets import ares_specs
from ..units import GB, KiB, TB
from ..workloads import MicroConfig, StaticCompressionBackend, run_micro
from .common import ExperimentTable, make_backend, scaled_hierarchy

__all__ = ["run_fig6", "FIG6_CODECS"]

FIG6_CODECS = (
    "bsc",
    "pithy",
    "snappy",
    "lz4",
    "huffman",
    "lzo",
    "brotli",
    "zlib",
)

_PAPER_RAM = 32 * GB
_PAPER_NVME = 96 * GB
_PAPER_BB = 1 * TB
_PAPER_RANKS = 2560
_PAPER_TASKS = 512
_PAPER_TASK_BYTES = 512 * KiB
_SINGLE_TIERS = ("ram", "nvme", "burst_buffer")


def _single_tier_hierarchy(tier_name: str, capacity: int) -> StorageHierarchy:
    """A hierarchy holding just one Ares tier, sized to fit the dataset."""
    specs = {s.name: s for s in ares_specs(1, 1, 1, nodes=64, pfs_capacity=None)}
    base = specs[tier_name]
    spec = type(base)(
        name=base.name,
        capacity=capacity,
        bandwidth=base.bandwidth,
        latency=base.latency,
        lanes=base.lanes,
        shared=base.shared,
    )
    return StorageHierarchy([Tier(spec)])


def run_fig6(
    scale: int = 32,
    nprocs: int = 64,
    codecs: tuple[str, ...] = FIG6_CODECS,
    seed=None,
    rng: np.random.Generator | None = None,
) -> ExperimentTable:
    """Reproduce Fig. 6: write+read task throughput per (codec, tier).

    ``nprocs`` defaults to one rank per node: the figure's published shape
    (CPU-bound codecs flat across tiers) requires the per-rank tier share
    to sit near the heavy codecs' speeds, which the paper's stated 2560
    ranks cannot produce against any plausible burst-buffer hardware — see
    EXPERIMENTS.md for the fidelity note.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    tasks = max(_PAPER_TASKS // scale, 4)
    table = ExperimentTable(
        name="Fig. 6 - multi-tier impact on compression",
        description=(
            f"{nprocs} ranks x {tasks} tasks of compress+write+read+"
            f"decompress {_PAPER_TASK_BYTES // KiB} KiB; throughput in "
            f"tasks/s (ranks/capacities scaled 1/{scale})."
        ),
        columns=["codec", "tier", "tasks_per_s", "elapsed_s"],
    )
    config = MicroConfig(
        nprocs=nprocs,
        tasks_per_proc=tasks,
        task_bytes=_PAPER_TASK_BYTES,
        dtype="float64",
        distribution="gamma",
    )
    dataset = config.total_bytes
    # Multi-tier capacities proportional to the dataset (paper: 600 GB
    # against 32 GB RAM / 96 GB NVMe / 1 TB BB).
    paper_total = _PAPER_RANKS * _PAPER_TASKS * _PAPER_TASK_BYTES
    cap_scale = max(paper_total // dataset, 1)

    for codec in codecs:
        for tier_name in _SINGLE_TIERS:
            hierarchy = _single_tier_hierarchy(tier_name, 2 * dataset)
            backend = StaticCompressionBackend(
                hierarchy, codec=codec, pfs_tier=tier_name
            )
            backend.name = f"{codec}@{tier_name}"
            result = run_micro(
                backend, config, hierarchy, rng=rng, read_back=True, flush=False
            )
            table.add_row(
                codec, tier_name, result.tasks_per_second, result.elapsed_seconds
            )
        multi = scaled_hierarchy(_PAPER_RAM, _PAPER_NVME, _PAPER_BB, cap_scale)
        backend = make_backend(f"HERMES+{codec}", multi, hermes_codec=codec)
        result = run_micro(
            backend, config, multi, rng=rng, read_back=True, flush=False
        )
        table.add_row(
            codec, "multi-tiered", result.tasks_per_second, result.elapsed_seconds
        )

    multi = scaled_hierarchy(_PAPER_RAM, _PAPER_NVME, _PAPER_BB, cap_scale)
    backend = make_backend("HC", multi, priority=EQUAL, seed=seed)
    result = run_micro(
        backend, config, multi, rng=rng, read_back=True, flush=False
    )
    table.add_row(
        "HCompress", "multi-tiered", result.tasks_per_second, result.elapsed_seconds
    )
    table.note(
        "Paper: CPU-bound codecs flat across tiers; I/O-bound codecs track "
        "tier bandwidth; HCompress 1.4-3x over static codecs on the "
        "multi-tier stack (it used pithy on RAM, snappy on NVMe, brotli on "
        "the burst buffers)."
    )
    return table
