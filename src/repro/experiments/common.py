"""Shared experiment harness: result tables, backend factories, scaling.

Every figure module produces an :class:`ExperimentTable` whose rows mirror
the series the paper plots, so EXPERIMENTS.md can record paper-vs-measured
side by side. Paper-scale configurations (terabytes, thousands of ranks)
are shrunk by a single ``scale`` divisor applied uniformly to capacities,
task sizes, and compute intervals — bandwidths stay physical, so every
*ratio* between configurations is scale-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core import HCompress, HCompressConfig
from ..errors import WorkloadError
from ..hcdp.priorities import EQUAL, Priority
from ..hermes import HermesBuffering, HermesWithStaticCompression
from ..tiers import StorageHierarchy, ares_hierarchy
from ..workloads import (
    HCompressBackend,
    HermesBackend,
    HermesStaticBackend,
    IOBackend,
    PfsBaselineBackend,
    StaticCompressionBackend,
)

__all__ = [
    "BACKEND_NAMES",
    "ExperimentTable",
    "make_backend",
    "scaled_hierarchy",
    "speedup_notes",
]

BACKEND_NAMES = ("BASE", "STWC", "MTNC", "HC")


@dataclass
class ExperimentTable:
    """A printable result table (one per reproduced figure)."""

    name: str
    description: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise WorkloadError(
                f"row width {len(values)} != columns {len(self.columns)}"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_markdown(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3g}"
            return str(value)

        lines = [f"### {self.name}", "", self.description, ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n> {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_markdown()


def scaled_hierarchy(
    ram: int | None,
    nvme: int | None,
    bb: int | None,
    scale: int = 1,
    nodes: int = 64,
) -> StorageHierarchy:
    """Ares hierarchy with capacities divided by ``scale`` (bandwidths are
    physical constants and are left untouched)."""
    if scale < 1:
        raise WorkloadError(f"scale must be >= 1, got {scale}")
    div = lambda x: None if x is None else max(x // scale, 1)  # noqa: E731
    return ares_hierarchy(
        ram_capacity=div(ram),
        nvme_capacity=div(nvme),
        bb_capacity=div(bb),
        nodes=nodes,
    )


def make_backend(
    name: str,
    hierarchy: StorageHierarchy,
    priority: Priority = EQUAL,
    stwc_codec: str = "zlib",
    hermes_codec: str | None = None,
    seed=None,
    rng: np.random.Generator | None = None,
) -> IOBackend:
    """Instantiate one of the paper's Table-IV configurations.

    Args:
        name: BASE | STWC | MTNC | HC, or HERMES+<codec> for the Fig. 5
            placement-then-compression variant.
        hierarchy: Fresh hierarchy for this run.
        priority: HC's workload priority.
        stwc_codec: The static codec STWC applies.
        hermes_codec: Codec for the HERMES+<codec> variant.
        seed: Optional pre-built profiler seed (HC bootstrap reuse).
    """
    if name == "BASE":
        return PfsBaselineBackend(hierarchy)
    if name == "STWC":
        return StaticCompressionBackend(hierarchy, codec=stwc_codec)
    if name == "MTNC":
        return HermesBackend(HermesBuffering(hierarchy))
    if name == "HC":
        engine = HCompress(
            hierarchy, HCompressConfig(priority=priority), seed=seed
        )
        return HCompressBackend(engine)
    if name.startswith("HERMES+") or hermes_codec is not None:
        codec = hermes_codec if hermes_codec is not None else name.split("+", 1)[1]
        return HermesStaticBackend(
            HermesWithStaticCompression(hierarchy, codec=codec)
        )
    raise WorkloadError(f"unknown backend name {name!r}")


def speedup_notes(table: ExperimentTable, time_column: str, base: str) -> None:
    """Append 'X over BASE' style notes comparing a time column."""
    rows = table.row_dicts()
    base_rows = [r for r in rows if r.get("backend") == base]
    if not base_rows:
        return
    base_time = base_rows[0][time_column]
    for row in rows:
        if row.get("backend") == base:
            continue
        if row[time_column]:
            table.note(
                f"{row['backend']}: {base_time / row[time_column]:.2f}x over {base}"
            )
