"""Per-figure reproduction harnesses (see DESIGN.md §4 for the index)."""

from .common import (
    BACKEND_NAMES,
    ExperimentTable,
    make_backend,
    scaled_hierarchy,
    speedup_notes,
)
from .fig1_motivation import run_fig1
from .fig3_anatomy import run_fig3
from .fig4_internal import run_fig4a, run_fig4b
from .fig5_compression_on_tiers import run_fig5
from .fig6_tiers_on_compression import run_fig6
from .fig7_vpic import run_fig7
from .fig8_workflow import run_fig8
from .report import render_markdown, run_all

__all__ = [
    "BACKEND_NAMES",
    "ExperimentTable",
    "make_backend",
    "render_markdown",
    "run_all",
    "run_fig1",
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "scaled_hierarchy",
    "speedup_notes",
]
