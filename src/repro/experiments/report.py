"""One-shot experiment report: run every figure and render EXPERIMENTS.md.

``python -m repro.experiments.report [--fast]`` regenerates the full
paper-vs-measured record. ``--fast`` shrinks the sweeps so the whole suite
finishes in a couple of minutes; the full profile is what the committed
EXPERIMENTS.md is produced from. ``--only fig7 ...`` restricts the run to
a subset of figures (the EXPERIMENTS.md reproduction checklist uses this
for per-figure deep dives).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from ..core import HCompressProfiler
from .common import ExperimentTable
from .fig1_motivation import run_fig1
from .fig3_anatomy import run_fig3
from .fig4_internal import run_fig4a, run_fig4b
from .fig5_compression_on_tiers import run_fig5
from .fig6_tiers_on_compression import run_fig6
from .fig7_vpic import run_fig7
from .fig8_workflow import run_fig8
from .fig_lifecycle import run_fig_lifecycle

__all__ = ["run_all", "render_markdown"]


#: Figure keys accepted by ``run_all(only=...)`` / ``--only``.
FIGURES = (
    "fig1", "fig3", "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8",
    "lifecycle",
)


def run_all(
    fast: bool = False,
    verbose: bool = True,
    only: tuple[str, ...] | None = None,
) -> list[ExperimentTable]:
    """Run every reproduced table/figure; returns their result tables.

    ``only`` restricts the run to a subset of :data:`FIGURES` (the model
    seed is still profiled once up front, so single-figure runs stay
    reproducible against the full report).
    """
    seed = HCompressProfiler(rng=np.random.default_rng(0)).quick_seed()
    rng = np.random.default_rng(7)

    if fast:
        jobs = [
            ("fig1", lambda: run_fig1(scale=64, nprocs=320, seed=seed, rng=rng)),
            ("fig3", lambda: run_fig3(n_tasks=200, seed=seed, rng=rng)),
            ("fig4a", lambda: run_fig4a(plans_per_size=500, seed=seed, rng=rng)),
            (
                "fig4b",
                lambda: run_fig4b(tasks_per_distribution=1000, seed=seed, rng=rng),
            ),
            ("fig5", lambda: run_fig5(scale=64, seed=seed, rng=rng)),
            ("fig6", lambda: run_fig6(scale=64, seed=seed, rng=rng)),
            (
                "fig7",
                lambda: run_fig7(
                    process_counts=(320, 2560), scale=64, seed=seed, rng=rng
                ),
            ),
            (
                "fig8",
                lambda: run_fig8(
                    process_counts=(320, 2560), scale=64, seed=seed, rng=rng
                ),
            ),
            (
                "lifecycle",
                lambda: run_fig_lifecycle(reads=192, seed=seed, rng=rng),
            ),
        ]
    else:
        jobs = [
            ("fig1", lambda: run_fig1(scale=64, seed=seed, rng=rng)),
            ("fig3", lambda: run_fig3(seed=seed, rng=rng)),
            ("fig4a", lambda: run_fig4a(seed=seed, rng=rng)),
            ("fig4b", lambda: run_fig4b(seed=seed, rng=rng)),
            ("fig5", lambda: run_fig5(seed=seed, rng=rng)),
            ("fig6", lambda: run_fig6(seed=seed, rng=rng)),
            ("fig7", lambda: run_fig7(scale=64, seed=seed, rng=rng)),
            ("fig8", lambda: run_fig8(scale=64, seed=seed, rng=rng)),
            ("lifecycle", lambda: run_fig_lifecycle(seed=seed, rng=rng)),
        ]

    if only is not None:
        unknown = sorted(set(only) - set(FIGURES))
        if unknown:
            raise ValueError(f"unknown figures {unknown}; choose from {FIGURES}")
        jobs = [job for job in jobs if job[0] in only]

    tables = []
    for name, job in jobs:
        t0 = time.perf_counter()
        table = job()
        if verbose:
            print(
                f"[{name}] done in {time.perf_counter() - t0:.1f}s",
                file=sys.stderr,
            )
        tables.append(table)
    return tables


def render_markdown(tables: list[ExperimentTable], header: str = "") -> str:
    parts = []
    if header:
        parts.append(header)
    for table in tables:
        parts.append(table.to_markdown())
    return "\n\n".join(parts) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shrunk sweeps")
    parser.add_argument(
        "--only",
        nargs="+",
        choices=FIGURES,
        default=None,
        help="run only these figures (e.g. --only fig7)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write markdown to this path"
    )
    args = parser.parse_args(argv)
    tables = run_all(fast=args.fast, only=tuple(args.only) if args.only else None)
    text = render_markdown(tables)
    if args.output:
        args.output.write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
