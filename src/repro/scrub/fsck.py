"""``hcompress fsck``: offline and live integrity checking of a store.

The scrubber patrols a *running* engine; fsck is the complement for
everything else — a crashed deployment before restore, a directory of
unknown provenance, a CI gate after a chaos run. It cross-checks every
durable artifact against the others:

* **snapshot ↔ journal** — both parse, LSNs are monotone, the journal
  suffix continues exactly where the snapshot's ``journal_lsn`` left off
  (a gap means lost mutations), and a torn tail is reported (and cut
  back with ``--repair``, the same truncation ``Journal.open`` performs).
* **catalog** — reconstructed snapshot-then-suffix, the way restore
  replays it; a piece key claimed by two tasks is corruption no replay
  can hide.
* **shard manifest ↔ shard/replica directories** (sharded roots) — the
  manifest parses, every directory it names exists, and each shard's and
  standby replica's recovery directory passes the single-store checks.
* **catalog ↔ tier extents** (live engines) — orphaned extents,
  duplicated keys, missing referenced keys, and per-tier capacity-ledger
  drift (the sum of accounted extents vs the ledger's ``used``).
* **digest spot-checks** (live engines) — a bounded sample of
  payload-bearing pieces is re-read and validated end to end.

Findings are machine-readable (:meth:`FsckReport.to_dict`); the CLI maps
:attr:`FsckReport.exit_code` straight to the process exit status
(0 clean / 1 warnings / 2 errors / 3 store unreadable). ``repair=True``
applies only the conservative subset — truncating torn journal tails,
deleting leftover ``*.tmp`` files, and (live) evicting orphaned or
duplicated extents — never anything that invents data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..codecs.metadata import unwrap_payload
from ..errors import CodecError, RecoveryError, SchemaError, TierError
from ..hashing import content_hash64
from ..recovery.journal import JOURNAL_NAME, replay_journal
from ..recovery.snapshot import SNAPSHOT_NAME, read_snapshot

__all__ = [
    "Finding",
    "FsckReport",
    "fsck_engine",
    "fsck_store",
    "validate_entry",
]


def validate_entry(entry, blob: bytes) -> bool:
    """Whether a stored blob matches its catalog entry end to end.

    Checks the stored-blob CRC32 first (cheap, catches at-rest rot), then
    — when the entry carries a content digest — decodes the piece and
    compares the digest of the *uncompressed* bytes, which catches what
    the blob CRC cannot: a stale blob whose CRC matches itself but not
    the data the catalog promises.
    """
    crc = entry[3]  # accepts CatalogEntry and raw 4/5-element tuples
    if crc is not None and zlib.crc32(blob) != crc:
        return False
    digest = entry[4] if len(entry) > 4 else None
    if digest is not None:
        try:
            data, _header = unwrap_payload(blob)
        except (SchemaError, CodecError):
            return False
        if content_hash64(data) != digest:
            return False
    return True


@dataclass(frozen=True)
class Finding:
    """One fsck observation.

    ``severity`` is ``"warning"`` (suspicious but the store restores),
    ``"error"`` (the store is inconsistent), or ``"fatal"`` (the store
    cannot even be read). ``repaired`` records that ``repair=True``
    actually fixed it in place.
    """

    check: str
    severity: str
    detail: str
    repaired: bool = False


@dataclass
class FsckReport:
    """Everything one fsck pass found, with the CLI's exit-code mapping."""

    store: str
    findings: list[Finding] = field(default_factory=list)
    tasks: int = 0
    pieces: int = 0
    digests_checked: int = 0

    def add(
        self, check: str, severity: str, detail: str, repaired: bool = False
    ) -> None:
        self.findings.append(Finding(check, severity, detail, repaired))

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.severity == severity)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 clean / 1 warnings only / 2 errors / 3 store unreadable.

        A repaired finding still counts: fsck reports what it *found*,
        and a second run proves the repair (exit 0).
        """
        if self.count("fatal"):
            return 3
        if self.count("error"):
            return 2
        if self.count("warning"):
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "store": self.store,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "tasks": self.tasks,
            "pieces": self.pieces,
            "digests_checked": self.digests_checked,
            "errors": self.count("error") + self.count("fatal"),
            "warnings": self.count("warning"),
            "findings": [
                {
                    "check": f.check,
                    "severity": f.severity,
                    "detail": f.detail,
                    "repaired": f.repaired,
                }
                for f in self.findings
            ],
        }

    def merge(self, other: "FsckReport", prefix: str) -> None:
        """Fold a sub-store's report in, prefixing its check names."""
        for f in other.findings:
            self.findings.append(
                Finding(f"{prefix}:{f.check}", f.severity, f.detail, f.repaired)
            )
        self.tasks += other.tasks
        self.pieces += other.pieces
        self.digests_checked += other.digests_checked


# -- offline: recovery directories --------------------------------------------


def fsck_store(directory: str | Path, repair: bool = False) -> FsckReport:
    """Check one store on disk: a recovery directory, or a sharded root.

    A directory containing a shard manifest (``shard-map.json``) is
    checked as a deployment: the manifest itself, then every shard
    recovery directory it names, then every standby replica directory
    beside them — each with the full single-store cross-checks, findings
    prefixed with the sub-directory name. Anything else is checked as a
    single engine's recovery directory.
    """
    # Imported lazily: repro.shard pulls the engine package in, and
    # core.config already imports repro.scrub for ScrubConfig.
    from ..shard.manifest import MANIFEST_NAME, ShardManifestError, read_manifest

    directory = Path(directory)
    report = FsckReport(store=str(directory))
    if not directory.is_dir():
        report.add("store", "fatal", f"{directory} is not a directory")
        return report
    if not (directory / MANIFEST_NAME).exists():
        _fsck_recovery_dir(directory, report, repair)
        return report

    try:
        manifest = read_manifest(directory)
    except ShardManifestError as exc:
        report.add("manifest", "fatal", str(exc))
        return report
    for shard_id in range(manifest.shards):
        name = manifest.directories.get(shard_id)
        if name is None:
            report.add(
                "manifest.directories", "error",
                f"shard {shard_id} has no directory entry",
            )
            continue
        shard_dir = directory / name
        if not shard_dir.is_dir():
            report.add(
                "manifest.directories", "error",
                f"shard {shard_id} directory {name!r} is missing",
            )
            continue
        sub = FsckReport(store=str(shard_dir))
        _fsck_recovery_dir(shard_dir, sub, repair)
        report.merge(sub, name)
    # Standby replicas live flat beside the primaries (shard-NN-rK); the
    # manifest does not enumerate them, so discover by naming convention.
    for replica_dir in sorted(directory.glob("shard-*-r*")):
        if not replica_dir.is_dir():
            continue
        sub = FsckReport(store=str(replica_dir))
        _fsck_recovery_dir(replica_dir, sub, repair)
        report.merge(sub, replica_dir.name)
    return report


def _fsck_recovery_dir(
    directory: Path, report: FsckReport, repair: bool
) -> None:
    """The single-store checks: snapshot ↔ journal ↔ reconstructed catalog."""
    snapshot = None
    snapshot_path = directory / SNAPSHOT_NAME
    journal_path = directory / JOURNAL_NAME
    if not snapshot_path.exists() and not journal_path.exists():
        report.add(
            "store", "fatal",
            f"{directory} holds neither {SNAPSHOT_NAME} nor {JOURNAL_NAME}",
        )
        return
    if snapshot_path.exists():
        try:
            snapshot = read_snapshot(directory)
        except RecoveryError as exc:
            report.add("snapshot", "fatal", str(exc))
            return
    else:
        report.add(
            "snapshot", "warning",
            "no snapshot (engine never checkpointed); "
            "catalog reconstructed from the journal alone",
        )

    replay = replay_journal(journal_path)
    if replay.truncated:
        if repair:
            with open(journal_path, "r+b") as handle:
                handle.truncate(replay.valid_bytes)
        report.add(
            "journal.tail", "warning",
            f"torn tail ({replay.reason}); "
            f"{replay.valid_bytes} valid bytes keep {len(replay.records)} "
            "records",
            repaired=repair,
        )
    last_lsn = 0
    for record in replay.records:
        if record.lsn <= last_lsn:
            report.add(
                "journal.lsn", "error",
                f"non-monotone LSN {record.lsn} after {last_lsn}",
            )
        last_lsn = record.lsn

    snapshot_lsn = snapshot.journal_lsn if snapshot is not None else 0
    suffix = [r for r in replay.records if r.lsn > snapshot_lsn]
    if suffix and suffix[0].lsn > snapshot_lsn + 1:
        report.add(
            "journal.gap", "error",
            f"journal resumes at LSN {suffix[0].lsn} but the snapshot "
            f"covers only {snapshot_lsn}: records "
            f"{snapshot_lsn + 1}..{suffix[0].lsn - 1} are lost",
        )

    # Reconstruct the catalog exactly the way restore replays it.
    catalog: dict[str, list] = (
        {task: list(entries) for task, entries in snapshot.catalog.items()}
        if snapshot is not None
        else {}
    )
    for record in suffix:
        if record.kind == "commit":
            catalog[record.task_id] = list(record.entries)
        elif record.kind == "evict":
            catalog.pop(record.task_id, None)
    report.tasks += len(catalog)
    owners: dict[str, str] = {}
    for task_id, entries in catalog.items():
        for entry in entries:
            report.pieces += 1
            key = entry[0]
            if key in owners:
                report.add(
                    "catalog.duplicate", "error",
                    f"piece key {key!r} claimed by tasks "
                    f"{owners[key]!r} and {task_id!r}",
                )
            else:
                owners[key] = task_id

    for tmp in sorted(directory.glob("*.tmp")):
        if repair:
            tmp.unlink()
        report.add(
            "store.tmp", "warning",
            f"leftover temporary file {tmp.name!r} "
            "(crash mid-atomic-replace)",
            repaired=repair,
        )


# -- live: a running engine ----------------------------------------------------


def fsck_engine(
    engine, digest_samples: int = 8, repair: bool = False
) -> FsckReport:
    """Cross-check a live engine's catalog against its tiers.

    ``digest_samples`` bounds how many payload-bearing pieces are
    re-read and validated end to end (0 disables the spot-check).
    ``repair=True`` evicts orphaned and duplicated extents — the same
    sweep restore performs, safe because no catalog entry references
    them (orphans) or reads resolve elsewhere (duplicates).
    """
    report = FsckReport(store="<engine>")
    manager = engine.manager
    catalog = {
        task_id: manager.task_entries(task_id)
        for task_id in manager.task_ids()
    }
    report.tasks = len(catalog)
    referenced: dict[str, tuple] = {}
    for task_id, entries in catalog.items():
        for entry in entries:
            report.pieces += 1
            if entry.key in referenced:
                report.add(
                    "catalog.duplicate", "error",
                    f"piece key {entry.key!r} claimed by two tasks",
                )
            referenced[entry.key] = entry

    claimed: set[str] = set()
    for tier in engine.hierarchy:
        if not tier.available:
            report.add(
                "tier.down", "warning",
                f"tier {tier.spec.name!r} is unavailable; "
                "its extents were not checked",
            )
            continue
        ledger = 0
        for key in sorted(tier.keys()):
            extent = tier.extent(key)
            ledger += extent.accounted_size
            if key not in referenced:
                if repair:
                    tier.evict(key)
                report.add(
                    "extent.orphan", "error",
                    f"tier {tier.spec.name!r} holds unreferenced key "
                    f"{key!r} ({extent.accounted_size} bytes)",
                    repaired=repair,
                )
            elif key in claimed:
                # find() already resolved this key to an upper tier; the
                # copy here is a stale leftover.
                if repair:
                    tier.evict(key)
                report.add(
                    "extent.duplicate", "warning",
                    f"key {key!r} duplicated on tier {tier.spec.name!r}",
                    repaired=repair,
                )
            else:
                claimed.add(key)
        if not repair and ledger != tier.used:
            # (After repairs the evictions legitimately moved the ledger.)
            report.add(
                "tier.ledger", "error",
                f"tier {tier.spec.name!r} ledger drift: extents sum to "
                f"{ledger} bytes but the ledger says {tier.used}",
            )
    for key in sorted(set(referenced) - claimed):
        report.add(
            "extent.missing", "error",
            f"catalog references key {key!r} but no tier holds it",
        )

    checked = 0
    for key in sorted(referenced):
        if checked >= digest_samples:
            break
        if key in manager.quarantined:
            continue
        tier = engine.hierarchy.find(key)
        if tier is None or not tier.available:
            continue
        if not tier.extent(key).has_payload:
            continue
        try:
            blob = tier.get(key)
        except TierError:
            continue
        checked += 1
        if not validate_entry(referenced[key], blob):
            report.add(
                "digest.mismatch", "error",
                f"piece {key!r} on tier {tier.spec.name!r} fails "
                "end-to-end validation (latent corruption)",
            )
    report.digests_checked = checked
    if manager.quarantined:
        report.add(
            "quarantine", "warning",
            f"{len(manager.quarantined)} piece(s) quarantined: "
            + ", ".join(sorted(manager.quarantined)),
        )
    return report
