"""The background scrubber: walk the catalog, re-read blobs, self-heal.

Foreground reads only verify what they touch; a bit that rots in a cold
blob between operations goes unnoticed until the data is needed — and
compressed tiers amplify the blast radius, because one flipped stored
byte loses the whole logical extent behind it. The :class:`Scrubber`
closes that window: a cooperative daemon (the ``LifecycleDaemon`` mold —
off by default, stepped on the modeled clock, paused under QoS brownout,
one per shard) walks the catalog at a bounded bytes/step budget,
re-reads every payload-bearing piece, and verifies the stored CRC plus
the end-to-end content digest.

On a mismatch it repairs in escalating order (docs/INTEGRITY.md):

1. **re-read** — bounded re-reads of the home tier; transient in-flight
   corruption heals without touching stored state.
2. **surviving copy** — another tier still holding the same key (a
   flusher/lifecycle copy the crash sweeps have not reclaimed yet) whose
   bytes validate.
3. **replica hook** — the manager's ``on_corrupt`` hook, the pluggable
   replica source (the scrub-chaos harness wires it to a mirror of the
   standby's shipped state).

A blob healed from rung 2/3 is rewritten under a *new* generation key
with the write path's WAL discipline — copy, idempotent journal
re-point, evict — pinned by the swept ``scrub.pre_repair`` /
``scrub.post_copy`` / ``scrub.post_journal`` / ``scrub.post_evict``
crash sites, so a crash at any instant leaves exactly one readable copy.
Only when every rung is exhausted is the piece quarantined: further
reads fail fast with :class:`~repro.errors.IntegrityError` instead of
burning retry budget on unhealable data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import CapacityError, TierError
from ..lifecycle.daemon import LifecycleDaemon
from .config import ScrubConfig
from .fsck import validate_entry

__all__ = ["Repair", "ScrubStats", "Scrubber"]


@dataclass(frozen=True)
class Repair:
    """One detected corruption and what the escalation ladder did."""

    task_id: str
    key: str           # the corrupt piece key
    new_key: str       # healed rewrite key ("" when no rewrite was needed)
    tier: str          # tier the corruption was found on
    source: str        # "reread" | "survivor" | "hook" | "" (none worked)
    outcome: str       # "healed" | "quarantined"
    modeled_seconds: float


@dataclass
class ScrubStats:
    """Cumulative scrubber counters (mirrored by ``Observability``)."""

    scans: int = 0            # full catalog passes started
    steps: int = 0
    paused: int = 0
    tasks_scanned: int = 0
    pieces_scanned: int = 0
    bytes_scanned: int = 0
    corruptions: int = 0      # validation failures detected by the walk
    repairs: int = 0          # healed (any rung)
    rewrites: int = 0         # healed via a WAL-disciplined rewrite
    quarantined: int = 0
    failed: int = 0           # repair attempts lost to races/capacity
    last_scan: float = 0.0
    repair_log: list[Repair] = field(default_factory=list)


class Scrubber:
    """Per-engine background integrity scrubber.

    Constructed by :class:`~repro.core.hcompress.HCompress` when
    ``ScrubConfig.enabled`` — engines with the subsystem off hold
    ``None`` and stay byte-identical. Reads go through the public
    :class:`~repro.tiers.Tier` API (so injected faults apply to scrub
    traffic like any other) and placement mutates exclusively through
    the manager's WAL-disciplined ``replace_task_entries``.
    """

    def __init__(self, engine, config: ScrubConfig) -> None:
        self.engine = engine
        self.config = config
        self.clock = (
            engine._clock if engine._clock is not None else time.monotonic
        )
        self.stats = ScrubStats()
        self._next_scan = float("-inf")
        self._pending: list[str] = []  # task ids left in the current pass
        self._step_seconds = 0.0  # modeled I/O charged by the last step

    # -- the daemon step ------------------------------------------------------

    def step(self, force: bool = False) -> list[Repair]:
        """One scrub tick: walk a budget's worth of catalog, heal what rots.

        Self-rate-limited to ``scan_interval`` unless ``force``; returns
        the corruptions handled this step (empty on a skipped or paused
        tick). Never raises for a piece it cannot heal — exhausted pieces
        are quarantined and counted; the typed error surfaces on the next
        foreground read.
        """
        now = self.clock()
        if not force and now < self._next_scan:
            return []
        qos = self.engine.qos
        if (
            qos is not None
            and int(qos.brownout.level) > self.config.max_brownout_level
        ):
            # Overloaded: background re-reads yield to foreground traffic.
            # The scan clock still advances so a long brownout does not
            # queue a burst of back-to-back scans when pressure lifts.
            self.stats.paused += 1
            self._next_scan = now + self.config.scan_interval
            return []
        obs = self.engine.obs
        if obs is None:
            return self._step(now)
        with obs.region("scrub.step") as sp:
            repairs = self._step(now)
            sp.set_attr("repairs", len(repairs))
            sp.charge_modeled(self._step_seconds)
        return repairs

    def _step(self, now: float) -> list[Repair]:
        self.stats.steps += 1
        self.stats.last_scan = now
        self._next_scan = now + self.config.scan_interval
        self._step_seconds = 0.0
        obs = self.engine.obs
        if obs is not None:
            obs.record_scrub_step()
        manager = self.engine.manager
        if not self._pending:
            self._pending = manager.task_ids()
            if self._pending:
                self.stats.scans += 1
        budget = self.config.bytes_per_step
        handled: list[Repair] = []
        while self._pending and budget > 0:
            if len(handled) >= self.config.max_repairs_per_step:
                break
            task_id = self._pending.pop(0)
            repairs, nbytes = self._scrub_task(task_id)
            budget -= max(nbytes, 1)
            handled.extend(repairs)
        for repair in handled:
            self.stats.repair_log.append(repair)
            if obs is not None:
                obs.record_scrub_repair(repair.outcome, repair.source)
        return handled

    # -- one task's walk ------------------------------------------------------

    def _scrub_task(self, task_id: str) -> tuple[list[Repair], int]:
        """Verify every payload-bearing piece of one task; returns the
        repairs performed and the accounted bytes re-read."""
        engine = self.engine
        manager = engine.manager
        hierarchy = engine.hierarchy
        try:
            entries = manager.task_entries(task_id)
        except TierError:
            return [], 0  # evicted between steps
        self.stats.tasks_scanned += 1
        repairs: list[Repair] = []
        nbytes = 0
        for index, entry in enumerate(entries):
            tier = hierarchy.find(entry.key)
            if tier is None or not tier.available:
                # Lost pieces are the foreground read path's typed error;
                # a dark tier is scrubbed once it comes back.
                continue
            extent = tier.extent(entry.key)
            if not extent.has_payload:
                continue  # accounting-only modeled piece: nothing to read
            if entry.key in manager.quarantined:
                # Known-bad: re-reading teaches nothing. But quarantine
                # is a holding state, not a verdict — when a repair
                # source may have appeared since (a replica hook wired
                # up, a copy landed on another tier), climb the ladder
                # again; healing lifts the quarantine.
                if manager.on_corrupt is None and not any(
                    other is not tier
                    and other.available
                    and entry.key in other
                    for other in hierarchy
                ):
                    continue
                repair = self._repair(task_id, index, entry, tier, extent)
                if repair is not None:
                    repairs.append(repair)
                    entries = manager.task_entries(task_id)
                continue
            self.stats.pieces_scanned += 1
            nbytes += extent.accounted_size
            self._step_seconds += tier.io_seconds(extent.accounted_size)
            try:
                blob = tier.get(entry.key)
            except TierError:
                self.stats.failed += 1
                continue  # transient read fault; next pass retries
            if self._validate(entry, blob):
                continue
            self.stats.corruptions += 1
            repair = self._repair(task_id, index, entry, tier, extent)
            if repair is not None:
                repairs.append(repair)
                # Entries may have been re-pointed; reload for later pieces.
                entries = manager.task_entries(task_id)
        self.stats.bytes_scanned += nbytes
        return repairs, nbytes

    @staticmethod
    def _validate(entry, blob: bytes) -> bool:
        """Whether a blob matches its catalog entry end to end."""
        return validate_entry(entry, blob)

    # -- the repair ladder ----------------------------------------------------

    def _repair(self, task_id, index, entry, tier, extent) -> Repair | None:
        """Escalate through the repair sources for one corrupt piece.

        ``SimulatedCrashError`` deliberately propagates from the crash
        sites: it models process death, and recovery's sweeps must clean
        up whatever it strands.
        """
        engine = self.engine
        manager = engine.manager
        crashpoints = engine.crashpoints
        if crashpoints is not None:
            crashpoints.reached("scrub.pre_repair")
        seconds = 0.0

        # Rung 1: bounded re-reads — in-flight corruption heals without
        # touching stored state (the stored bytes were never wrong).
        for _attempt in range(manager.shi.resilience.read_repair_retries):
            seconds += tier.io_seconds(extent.accounted_size)
            try:
                blob = tier.get(entry.key)
            except TierError:
                continue
            if self._validate(entry, blob):
                self.stats.repairs += 1
                self._step_seconds += seconds
                manager.clear_quarantine(entry.key)
                return Repair(
                    task_id, entry.key, "", tier.spec.name, "reread",
                    "healed", seconds,
                )

        # Rung 2: a surviving copy of the same key on another tier
        # (interrupted flusher/lifecycle copies recovery has not swept).
        good: bytes | None = None
        source = ""
        for other in engine.hierarchy:
            if other is tier or not other.available or entry.key not in other:
                continue
            try:
                blob = other.get(entry.key)
            except TierError:
                continue
            seconds += other.io_seconds(len(blob))
            if self._validate(entry, blob):
                good, source = blob, "survivor"
                break

        # Rung 3: the replica hook — the engine's pluggable corruption
        # source (a standby's shipped state, erasure reconstruction, ...).
        if good is None and manager.on_corrupt is not None:
            replacement = manager.on_corrupt(entry.key, b"")
            if replacement is not None and self._validate(entry, replacement):
                good, source = replacement, "hook"

        if good is None:
            # Every source exhausted: quarantine. Reads fail fast and
            # typed from here on instead of re-burning retry budget.
            # Idempotent: a retried-and-still-unhealable key stays one
            # quarantine event, not a new one per pass.
            if entry.key not in manager.quarantined:
                manager.quarantined.add(entry.key)
                manager.quarantine_events += 1
                self.stats.quarantined += 1
            self._step_seconds += seconds
            return Repair(
                task_id, entry.key, "", tier.spec.name, "", "quarantined",
                seconds,
            )
        return self._rewrite(task_id, index, entry, tier, good, source, seconds)

    def _rewrite(
        self, task_id, index, entry, tier, good: bytes, source: str,
        seconds: float,
    ) -> Repair | None:
        """Persist a healed blob under a new key with WAL discipline.

        Copy -> journal re-point -> evict, exactly the lifecycle
        migration choreography, so a crash at any of the ``scrub.*``
        sites leaves each blob readable at exactly one place after
        recovery's orphan sweep.
        """
        # Imported here, not at module scope: core.config carries a
        # ScrubConfig field, so a top-level import would be circular.
        from ..core.manager import CatalogEntry

        engine = self.engine
        manager = engine.manager
        crashpoints = engine.crashpoints
        entries = manager.task_entries(task_id)
        generation = LifecycleDaemon._next_generation(task_id, entries)
        new_key = f"{task_id}/g{generation}/{index}"

        # Prefer healing in place (same tier); fall back to any tier with
        # room — data safety outranks placement, and the lifecycle daemon
        # can re-tier the blob later.
        target = None
        for candidate in [tier] + [
            t for t in engine.hierarchy if t is not tier
        ]:
            if candidate.available and candidate.fits(len(good)):
                target = candidate
                break
        if target is None:
            self.stats.failed += 1
            self._step_seconds += seconds
            return None
        try:
            target.put(new_key, good)
        except (TierError, CapacityError):
            self.stats.failed += 1
            self._step_seconds += seconds
            return None
        seconds += target.io_seconds(len(good))
        if crashpoints is not None:
            crashpoints.reached("scrub.post_copy")

        new_entries = list(entries)
        new_entries[index] = CatalogEntry(
            new_key, entry.length, entry.codec, entry.crc32, entry.digest
        )
        manager.replace_task_entries(
            task_id, new_entries, crash_site="scrub.post_journal"
        )

        # Release the rotten extent — and any stray same-key survivors,
        # which the re-point just turned into orphans.
        for holder in engine.hierarchy:
            if entry.key in holder:
                holder.evict(entry.key)
        if crashpoints is not None:
            crashpoints.reached("scrub.post_evict")
        manager.clear_quarantine(entry.key)
        self.stats.repairs += 1
        self.stats.rewrites += 1
        self._step_seconds += seconds
        return Repair(
            task_id, entry.key, new_key, target.spec.name, source, "healed",
            seconds,
        )

    # -- status ---------------------------------------------------------------

    def status(self) -> dict:
        """JSON-friendly scrubber state for the CLI and the shard router."""
        stats = self.stats
        return {
            "enabled": True,
            "scans": stats.scans,
            "steps": stats.steps,
            "paused": stats.paused,
            "tasks_scanned": stats.tasks_scanned,
            "pieces_scanned": stats.pieces_scanned,
            "bytes_scanned": stats.bytes_scanned,
            "corruptions": stats.corruptions,
            "repairs": stats.repairs,
            "rewrites": stats.rewrites,
            "quarantined": stats.quarantined,
            "failed": stats.failed,
            "pending_tasks": len(self._pending),
        }
