"""Configuration of the end-to-end integrity subsystem (``repro.scrub``)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ScrubConfig"]


@dataclass(frozen=True)
class ScrubConfig:
    """End-to-end integrity policy: content digests + background scrubbing.

    Everything defaults off; a default-constructed engine records no
    digests, constructs no scrubber, and produces byte-identical
    catalogs, journals, and snapshots to a build without the subsystem.

    Attributes:
        enabled: Run the background :class:`~repro.scrub.Scrubber`
            daemon. Like the lifecycle daemon it is strictly
            cooperative — it scans only when ``step()`` is called.
        content_digests: Record an end-to-end digest of every
            materialised piece's *uncompressed* bytes
            (:func:`repro.hashing.content_hash64`) in its catalog entry
            at write, batch, migration, and repair time. Digest-less
            entries keep the legacy 4-element serialized form, so old
            checkpoints restore and feature-off state is byte-identical.
        verify_reads: Verify the content digest on every decode, after
            the per-tier CRC — catches corruption the stored-blob CRC
            cannot see. Requires ``content_digests``.
        scan_interval: Modeled seconds between scrub steps (the daemon
            self-rate-limits; ``step(force=True)`` overrides).
        bytes_per_step: Re-read budget per step, in accounted bytes. The
            walk stops starting new tasks once the budget is consumed
            (at least one task is always scanned), bounding the
            foreground interference of one step.
        max_repairs_per_step: Cap on repair *rewrites* executed in one
            step; corruptions found beyond it wait for the next step.
        max_brownout_level: Highest QoS brownout rung at which scrubbing
            still runs; above it the step pauses (counted) — background
            re-reads must never compound an overload.
    """

    enabled: bool = False
    content_digests: bool = False
    verify_reads: bool = False
    scan_interval: float = 8.0
    bytes_per_step: int = 8 * 1024 * 1024
    max_repairs_per_step: int = 4
    max_brownout_level: int = 0

    def __post_init__(self) -> None:
        if self.verify_reads and not self.content_digests:
            raise ValueError(
                "verify_reads requires content_digests (there would be "
                "no recorded digest to verify)"
            )
        if self.scan_interval < 0:
            raise ValueError("scan_interval must be >= 0")
        if self.bytes_per_step < 1:
            raise ValueError("bytes_per_step must be >= 1")
        if self.max_repairs_per_step < 1:
            raise ValueError("max_repairs_per_step must be >= 1")
        if self.max_brownout_level < 0:
            raise ValueError("max_brownout_level must be >= 0")
