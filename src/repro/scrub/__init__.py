"""End-to-end integrity: digests, scrubbing, self-healing, and fsck.

Per-tier CRCs protect a blob *in flight*; nothing in the base engine
protects data *at rest* across its whole lifetime — a byte that rots in
a cold blob between operations surfaces only when the data is finally
read, long after every repair source is gone. This package closes the
loop end to end:

* :class:`ScrubConfig` — the subsystem's policy object, carried as
  ``HCompressConfig.scrub``. Everything defaults off, and off means
  byte-identical catalogs, journals, and snapshots.
* content digests — a stable digest of each piece's *uncompressed*
  bytes recorded in the catalog at write/batch/migration/repair time
  and (optionally) verified on every decode, so corruption is caught
  against what the user stored, not just against the stored blob.
* :class:`Scrubber` — the background patrol-and-repair daemon: walks
  the catalog at a bounded bytes/step budget, re-validates every
  payload-bearing piece, and heals mismatches through an escalating
  ladder (re-read, surviving copy, replica hook) with the write path's
  WAL discipline; unhealable pieces are quarantined behind the typed
  :class:`~repro.errors.IntegrityError`.
* :func:`fsck_store` / :func:`fsck_engine` — offline and live
  cross-checking of snapshot ↔ journal ↔ catalog ↔ tier extents ↔
  shard manifest ↔ replica directories, surfaced as
  ``hcompress fsck`` with machine-readable findings and distinct
  exit codes.

docs/INTEGRITY.md walks through the threat model and the crash
argument for repair.
"""

from .config import ScrubConfig
from .fsck import Finding, FsckReport, fsck_engine, fsck_store, validate_entry
from .scrubber import Repair, ScrubStats, Scrubber

__all__ = [
    "Finding",
    "FsckReport",
    "Repair",
    "ScrubConfig",
    "ScrubStats",
    "Scrubber",
    "fsck_engine",
    "fsck_store",
    "validate_entry",
]
