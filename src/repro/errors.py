"""Exception hierarchy for the HCompress reproduction.

Every error raised by :mod:`repro` derives from :class:`HCompressError`, so
callers can catch the whole family with one clause while still being able to
discriminate the precise failure mode.
"""

from __future__ import annotations


class HCompressError(Exception):
    """Base class for all errors raised by this library."""


class CodecError(HCompressError):
    """A compression or decompression operation failed."""


class CorruptDataError(CodecError):
    """Compressed payload failed integrity validation during decode."""


class IntegrityError(CorruptDataError):
    """A blob failed end-to-end integrity checks and every repair source
    is exhausted.

    Raised only after the repair escalation ladder (bounded re-reads,
    scrub re-encode from a surviving good copy) has run dry; the blob is
    quarantined — further reads fail fast with this error instead of
    burning retry budget on data that cannot be healed. Carries the
    logical ``key`` and owning ``task_id`` so operators can locate the
    loss. It IS a :class:`CorruptDataError`, so existing typed-error
    handling absorbs it.
    """

    def __init__(self, message: str, *, key: str = "", task_id: str = ""):
        super().__init__(message)
        self.key = key
        self.task_id = task_id


class UnknownCodecError(CodecError, KeyError):
    """A codec name or id was requested that is not in the registry."""

    def __str__(self) -> str:  # KeyError quotes its args; keep a readable text
        return Exception.__str__(self)


class CapacityError(HCompressError):
    """A tier or hierarchy could not satisfy an allocation request."""


class TierError(HCompressError):
    """A storage-tier operation was invalid (unknown tier, bad offset, ...)."""


class TierUnavailableError(TierError):
    """The target tier is marked down (outage injected or real).

    Raised by every :class:`~repro.tiers.tier.Tier` access — put, get and
    extent alike — so resilient callers (SHI failover, the flusher) can
    route around the outage instead of treating it as a logic error.
    """


class TransientIOError(TierError):
    """A single I/O operation failed in a retryable way.

    Injected by :class:`~repro.faults.FaultyDevice`; real deployments map
    EIO/timeout-class failures here. Retrying the same operation may
    succeed, unlike :class:`TierUnavailableError` which signals a whole
    tier is down.
    """


class RetryExhaustedError(TierError):
    """An operation still failed after the configured retry budget.

    Chains the last underlying failure as ``__cause__``.
    """


class AllTiersUnavailableError(TierUnavailableError):
    """Failover ran out of candidates: *every* tier rejected the operation.

    Raised by the SHI write path after bounded retries against each
    candidate tier, so a hierarchy-wide outage surfaces as one typed
    error instead of looping or silently degrading. Chains the last
    per-tier failure as ``__cause__``.
    """


class CircuitOpenError(TierUnavailableError):
    """A tier was skipped because its circuit breaker is open.

    The QoS governor quarantines a tier after repeated SHI failures (or
    latency violations) inside the breaker window; while the breaker is
    open the SHI treats the tier exactly like an injected outage and
    fails over, so a flapping tier cannot absorb every retry budget.
    """


class QosError(HCompressError):
    """Base class for quality-of-service policy rejections.

    Deliberately *not* a :class:`TierError`: QoS rejections are policy
    decisions, not storage faults, so the engine's replan-on-tier-failure
    path must never catch and retry them.
    """


class TaskShedError(QosError):
    """Admission control rejected the task under overload.

    Carries the QoS class and shed reason so callers can retry later,
    downgrade, or surface backpressure. Only classes below the protected
    class are ever shed; the decision is drawn from a seeded RNG so shed
    traces are replayable.
    """

    def __init__(self, message: str, *, qos_class: int = 0, reason: str = ""):
        super().__init__(message)
        self.qos_class = qos_class
        self.reason = reason


class DeadlineExceededError(QosError):
    """An operation's modeled completion exceeded its deadline budget.

    Raised at plan time when no candidate tier/codec can finish within
    the remaining budget, or at execute time when the per-piece
    remaining-budget check trips; any pieces already placed are rolled
    back before the error surfaces.
    """


class PlacementError(HCompressError):
    """The HCDP engine could not produce a feasible schema."""


class SchemaError(HCompressError):
    """A compression/placement schema is malformed or violates an invariant."""


class AnalyzerError(HCompressError):
    """The input analyzer could not characterise a buffer."""


class ModelError(HCompressError):
    """The compression-cost predictor was used before fitting, or misfit."""


class SeedError(HCompressError):
    """A profiler seed file is missing, unreadable, or structurally invalid."""


class SimulationError(HCompressError):
    """The discrete-event simulator reached an inconsistent state."""


class FormatError(HCompressError):
    """An h5lite container or record buffer is malformed."""


class WorkloadError(HCompressError):
    """A workload generator received inconsistent parameters."""


class RecoveryError(HCompressError):
    """Crash-recovery state (journal, snapshot) is missing or inconsistent."""


class JournalCorruptError(RecoveryError):
    """A write-ahead journal frame failed structural or CRC validation.

    Replay never raises this for a *tail* problem (torn tails truncate
    cleanly); it is reserved for callers that demand a fully-intact
    journal, e.g. verification tooling.
    """


class ShardError(HCompressError):
    """Base class for sharded scale-out (``repro.shard``) failures."""


class ShardUnavailableError(ShardError, TierUnavailableError):
    """The shard owning the routed key is DOWN (crashed or quarantined).

    Raised *fast* by the router — before any planning or engine work —
    for traffic routed to a shard the supervisor has marked DOWN. It IS
    a :class:`TierUnavailableError`, so callers' existing
    failover/replan/unavailability handling absorbs it; per-tenant
    isolation means only keys hashing to the dead shard ever see it.
    Carries ``shard_id`` and ``reason`` for dashboards and tests.
    """

    def __init__(self, message: str, *, shard_id: int = -1, reason: str = ""):
        super().__init__(message)
        self.shard_id = shard_id
        self.reason = reason


class ShardManifestError(ShardError, RecoveryError):
    """The shard-map manifest is missing, corrupt, or inconsistent.

    A recovery-class failure: the manifest is the durable description of
    the shard layout, so a sharded restore cannot proceed without it.
    Also raised when a manifest write would clobber a newer version
    (a concurrent bump won the race) — the loser must re-read, never
    roll the version back.
    """


class ShardStateError(ShardError):
    """A shard-control operation hit a shard in the wrong state.

    Raised by :meth:`~repro.shard.ShardedHCompress.kill_shard` /
    :meth:`~repro.shard.ShardedHCompress.restore_shard` /
    :meth:`~repro.shard.ShardedHCompress.failover` for an unknown shard
    id, or one whose current state makes the operation meaningless
    (killing a DOWN shard, restoring an UP one). Typed — with the shard
    id and observed state — so operator tooling can distinguish "bad
    request" from infrastructure failure.
    """

    def __init__(self, message: str, *, shard_id: int = -1, state: str = ""):
        super().__init__(message)
        self.shard_id = shard_id
        self.state = state


class FailoverInProgressError(ShardError, QosError):
    """The shard's standby is mid-promotion; retry after the window.

    Raised by the router's pre-dispatch gate while a failover is
    completing (the modeled promotion window). It IS a
    :class:`QosError` — a deliberate, retryable policy rejection, not an
    infrastructure fault — so the engine's replan-on-tier-failure paths
    never absorb it and the supervisor never counts it toward a failure
    threshold. Carries ``shard_id`` and ``retry_after`` (modeled seconds
    until the promoted engine starts serving).
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: int = -1,
        retry_after: float = 0.0,
    ):
        super().__init__(message)
        self.shard_id = shard_id
        self.retry_after = retry_after


class SimulatedCrashError(HCompressError):
    """A crash-point arbiter killed the engine at an instrumented site.

    Models abrupt process death for the crash-consistency harness: no
    component may catch this to roll back or clean up — whatever state
    the crash left behind is exactly what recovery must cope with.
    """
