"""Per-tier circuit breakers: closed / open / half-open on the sim clock.

Each tier gets a :class:`CircuitBreaker` fed by SHI outcomes (errors and,
optionally, latency violations). Repeated failures inside a sliding
window trip the breaker open; while open the SHI skips the tier exactly
like an injected outage, so a flapping tier stops absorbing every retry
budget. After a deterministic quarantine the breaker goes half-open and
admits a bounded number of probe writes: all-success closes it, any
failure reopens it with exponentially longer quarantine (capped). No
jitter anywhere — breaker traces must replay exactly under a fixed seed.

State restores conservatively: a checkpoint taken mid-probe comes back
OPEN with a fresh quarantine window, never half-open or closed, so a
restart cannot resurrect a sick tier as healthy.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .config import QosConfig

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """State machine guarding one tier."""

    def __init__(
        self,
        tier: str,
        config: QosConfig,
        on_event: Callable[..., None] | None = None,
    ):
        self.tier = tier
        self.config = config
        self.state = CLOSED
        self.transitions = 0
        self._on_event = on_event
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._open_seconds = config.breaker_open_seconds
        self._reopen_count = 0
        self._probes_granted = 0
        self._probe_successes = 0

    # -- state transitions -------------------------------------------------

    def _transition(self, state: str, now: float) -> None:
        prev, self.state = self.state, state
        self.transitions += 1
        if self._on_event is not None:
            self._on_event("breaker", round(now, 9), self.tier, prev, state)

    def _open(self, now: float, *, reopen: bool) -> None:
        if reopen:
            self._reopen_count += 1
            self._open_seconds = min(
                self.config.breaker_open_seconds
                * self.config.breaker_backoff_factor**self._reopen_count,
                self.config.breaker_open_cap,
            )
        else:
            self._reopen_count = 0
            self._open_seconds = self.config.breaker_open_seconds
        self._opened_at = now
        self._failures.clear()
        self._probes_granted = 0
        self._probe_successes = 0
        self._transition(OPEN, now)

    # -- queries -----------------------------------------------------------

    def blocked(self, now: float) -> bool:
        """Non-mutating: would a write be denied right now?

        Planning uses this so that looking at a tier never consumes a
        half-open probe slot.
        """
        if self.state == OPEN:
            return now - self._opened_at < self._open_seconds
        if self.state == HALF_OPEN:
            return self._probes_granted >= self.config.breaker_probes
        return False

    def allow(self, now: float) -> bool:
        """Mutating write gate: may transition OPEN -> HALF_OPEN and
        consumes a probe slot while half-open."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at < self._open_seconds:
                return False
            self._transition(HALF_OPEN, now)
            self._probes_granted = 1
            self._probe_successes = 0
            return True
        # HALF_OPEN: bounded probes until their outcomes decide the state.
        if self._probes_granted < self.config.breaker_probes:
            self._probes_granted += 1
            return True
        return False

    # -- outcome feed ------------------------------------------------------

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.breaker_probes:
                self._failures.clear()
                self._reopen_count = 0
                self._open_seconds = self.config.breaker_open_seconds
                self._probes_granted = 0
                self._probe_successes = 0
                self._transition(CLOSED, now)
        elif self.state == CLOSED:
            self._prune(now)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._open(now, reopen=True)
        elif self.state == CLOSED:
            self._failures.append(now)
            self._prune(now)
            if len(self._failures) >= self.config.breaker_failure_threshold:
                self._open(now, reopen=False)
        # OPEN: an in-flight operation finishing late changes nothing.

    def _prune(self, now: float) -> None:
        horizon = now - self.config.breaker_window
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    # -- checkpoint/restore ------------------------------------------------

    def export_state(self) -> dict:
        return {
            "state": self.state,
            "opened_at": self._opened_at,
            "open_seconds": self._open_seconds,
            "reopen_count": self._reopen_count,
        }

    def restore_state(self, raw: dict, now: float) -> None:
        """Conservative restore: HALF_OPEN comes back as OPEN with a fresh
        quarantine window — a restart never resurrects a tier mid-probe."""
        state = raw.get("state", CLOSED)
        self._failures.clear()
        self._probes_granted = 0
        self._probe_successes = 0
        self._reopen_count = int(raw.get("reopen_count", 0))
        if state in (OPEN, HALF_OPEN):
            self.state = OPEN
            self._opened_at = now
            self._open_seconds = min(
                max(
                    float(raw.get("open_seconds", self.config.breaker_open_seconds)),
                    self.config.breaker_open_seconds,
                ),
                self.config.breaker_open_cap,
            )
        else:
            self.state = CLOSED
            self._opened_at = 0.0
            self._open_seconds = self.config.breaker_open_seconds


class BreakerBoard:
    """The full set of per-tier breakers plus their merged event trace."""

    def __init__(self, tiers: list[str], config: QosConfig):
        self.trace: list[tuple] = []
        self.breakers = {
            name: CircuitBreaker(name, config, on_event=self._record)
            for name in tiers
        }

    def _record(self, *event) -> None:
        self.trace.append(tuple(event))

    def allow(self, tier: str, now: float) -> bool:
        breaker = self.breakers.get(tier)
        return True if breaker is None else breaker.allow(now)

    def blocked(self, tier: str, now: float) -> bool:
        breaker = self.breakers.get(tier)
        return False if breaker is None else breaker.blocked(now)

    def record(self, tier: str, ok: bool, now: float) -> None:
        breaker = self.breakers.get(tier)
        if breaker is None:
            return
        if ok:
            breaker.record_success(now)
        else:
            breaker.record_failure(now)

    def quarantined(self, now: float) -> tuple[str, ...]:
        return tuple(
            name for name, b in self.breakers.items() if b.blocked(now)
        )

    @property
    def transitions(self) -> int:
        return sum(b.transitions for b in self.breakers.values())

    def export_state(self) -> dict:
        return {name: b.export_state() for name, b in self.breakers.items()}

    def restore_state(self, raw: dict, now: float) -> None:
        for name, breaker in self.breakers.items():
            if name in raw:
                breaker.restore_state(raw[name], now)
