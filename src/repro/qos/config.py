"""QoS policy configuration: admission, breakers, deadlines, brownout.

One frozen dataclass (:class:`QosConfig`) gathers every overload-protection
knob, mirroring the shape of :class:`~repro.core.config.ResilienceConfig`.
The master ``enabled`` switch defaults to off, and a disabled config keeps
the engine byte-identical to a build without the subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..hcdp.priorities import ARCHIVAL_IO, ASYNC_IO, READ_AFTER_WRITE, Priority
from ..units import MiB

__all__ = ["QosClass", "QosConfig", "qos_class_for_priority"]


class QosClass(IntEnum):
    """Task service classes, ordered by importance (lowest sheds first).

    The paper's Table II priority presets map onto these classes:
    archival traffic is best-effort, async I/O is batch, read-after-write
    is interactive. ``CRITICAL`` is reserved for callers that must never
    be shed (metadata, recovery traffic).
    """

    BEST_EFFORT = 0
    BATCH = 1
    INTERACTIVE = 2
    CRITICAL = 3


def qos_class_for_priority(priority: Priority) -> QosClass:
    """Default QoS class of a Table II priority preset.

    Unknown/custom priorities map to ``BATCH`` — the neutral middle class.
    """
    if priority == ARCHIVAL_IO:
        return QosClass.BEST_EFFORT
    if priority == ASYNC_IO:
        return QosClass.BATCH
    if priority == READ_AFTER_WRITE:
        return QosClass.INTERACTIVE
    return QosClass.BATCH


@dataclass(frozen=True)
class QosConfig:
    """Overload-protection policy for an HCompress engine.

    Attributes:
        enabled: Master switch. When off the engine constructs no
            governor and every request path behaves byte-identically to
            a build without QoS.
        max_backlog_bytes: Admission backlog bound. Intake bytes above
            this are shed outright (fill > 1); between ``shed_soft_fill``
            and 1 the controller sheds probabilistically, lowest classes
            first.
        shed_soft_fill: Backlog fill fraction where probabilistic
            shedding of sub-protected classes begins.
        protected_class: Tasks of this class or higher are never shed by
            the admission controller (brownout level 3 sheds strictly
            *below* it too).
        drain_bytes_per_s: Modeled rate at which the admission backlog
            drains. ``None`` derives it from the hierarchy sink tier's
            aggregate bandwidth.
        shed_seed: Seed of the shed-decision RNG, so overload traces are
            replayable.
        breaker_enabled: Per-tier circuit breakers on/off (independent of
            admission so tests can isolate the mechanisms).
        breaker_failure_threshold: Failures inside ``breaker_window``
            that trip a closed breaker open.
        breaker_window: Sliding failure-count window in modeled seconds.
        breaker_open_seconds: Initial quarantine after tripping; each
            failed half-open probe multiplies it by
            ``breaker_backoff_factor`` up to ``breaker_open_cap``.
        breaker_backoff_factor: Reopen backoff multiplier (deterministic,
            no jitter — breaker traces must replay exactly).
        breaker_open_cap: Upper bound on a single quarantine period.
        breaker_probes: Probe writes admitted in half-open before the
            breaker either closes (all succeed) or reopens (any fails).
        breaker_latency_threshold: Optional modeled-seconds bound; a
            *successful* tier operation slower than this still counts as
            a breaker failure (a crawling tier is quarantined like a
            failing one). ``None`` disables latency feedback.
        default_deadline: Optional deadline (modeled seconds) applied to
            every operation that does not pass one explicitly.
        brownout_enabled: Pressure-driven degradation ladder on/off.
        brownout_high: Pressure at/above which the ladder escalates one
            level (prefer fastest codec -> skip compression -> shed).
        brownout_low: Pressure at/below which it recovers one level;
            the gap against ``brownout_high`` provides hysteresis.
        brownout_dwell: Minimum modeled seconds between ladder moves.
        default_class: QoS class assumed for tasks submitted without one.
        tenant_classes: Tenant-scoped service classes: ``(tenant, class)``
            pairs consulted when a task arrives with a ``tenant`` but no
            explicit ``qos_class``. Tenants not listed fall back to
            ``default_class``. A tuple of pairs (not a dict) keeps the
            config hashable/frozen.
        tenant_quota_fraction: Per-tenant cap on the admission backlog,
            as a fraction of ``max_backlog_bytes``. A sub-protected task
            whose tenant already holds more than this share of the
            backlog is shed with reason ``"tenant-quota"`` — one noisy
            tenant cannot monopolise the shed lottery's survivors.
            ``None`` (default) disables per-tenant accounting entirely.
    """

    enabled: bool = False
    max_backlog_bytes: int = 64 * MiB
    shed_soft_fill: float = 0.75
    protected_class: QosClass = QosClass.INTERACTIVE
    drain_bytes_per_s: float | None = None
    shed_seed: int = 0
    breaker_enabled: bool = True
    breaker_failure_threshold: int = 3
    breaker_window: float = 1.0
    breaker_open_seconds: float = 0.25
    breaker_backoff_factor: float = 2.0
    breaker_open_cap: float = 8.0
    breaker_probes: int = 1
    breaker_latency_threshold: float | None = None
    default_deadline: float | None = None
    brownout_enabled: bool = True
    brownout_high: float = 0.85
    brownout_low: float = 0.60
    brownout_dwell: float = 0.25
    default_class: QosClass = QosClass.BATCH
    tenant_classes: tuple[tuple[str, QosClass], ...] = ()
    tenant_quota_fraction: float | None = None

    def class_for_tenant(self, tenant: str | None) -> QosClass:
        """Service class of ``tenant`` (``default_class`` when unmapped)."""
        if tenant is not None:
            for name, qos_class in self.tenant_classes:
                if name == tenant:
                    return QosClass(qos_class)
        return self.default_class

    def __post_init__(self) -> None:
        if self.max_backlog_bytes < 1:
            raise ValueError("max_backlog_bytes must be >= 1")
        if not 0.0 < self.shed_soft_fill <= 1.0:
            raise ValueError("shed_soft_fill must be in (0, 1]")
        if self.drain_bytes_per_s is not None and self.drain_bytes_per_s <= 0:
            raise ValueError("drain_bytes_per_s must be positive (or None)")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_window <= 0:
            raise ValueError("breaker_window must be positive")
        if self.breaker_open_seconds <= 0:
            raise ValueError("breaker_open_seconds must be positive")
        if self.breaker_backoff_factor < 1.0:
            raise ValueError("breaker_backoff_factor must be >= 1")
        if self.breaker_open_cap < self.breaker_open_seconds:
            raise ValueError("breaker_open_cap must be >= breaker_open_seconds")
        if self.breaker_probes < 1:
            raise ValueError("breaker_probes must be >= 1")
        if (
            self.breaker_latency_threshold is not None
            and self.breaker_latency_threshold <= 0
        ):
            raise ValueError("breaker_latency_threshold must be positive")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be positive (or None)")
        if not 0.0 <= self.brownout_low < self.brownout_high <= 1.0:
            raise ValueError("need 0 <= brownout_low < brownout_high <= 1")
        if self.brownout_dwell < 0:
            raise ValueError("brownout_dwell must be >= 0")
        seen = set()
        for entry in self.tenant_classes:
            if len(entry) != 2 or not entry[0]:
                raise ValueError(
                    "tenant_classes entries must be (tenant, QosClass) pairs"
                )
            if entry[0] in seen:
                raise ValueError(f"tenant {entry[0]!r} mapped twice")
            seen.add(entry[0])
            QosClass(entry[1])  # raises ValueError on an unknown class
        if self.tenant_quota_fraction is not None and not (
            0.0 < self.tenant_quota_fraction <= 1.0
        ):
            raise ValueError("tenant_quota_fraction must be in (0, 1]")
