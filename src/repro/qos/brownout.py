"""Brownout ladder: explicit, observable degradation under pressure.

The governor feeds monitor-reported pressure (worst bounded-tier fill,
combined with admission backlog fill) into a hysteretic controller that
moves one rung at a time:

    0 NORMAL            full-fidelity planning
    1 PREFER_FAST       restrict codec candidates to identity + fastest
    2 SKIP_COMPRESSION  identity placement only (no codec work at all)
    3 SHED_LOW          additionally shed every class below protected

Escalation happens at/above ``brownout_high``, recovery at/below
``brownout_low``; the gap plus a minimum dwell between moves prevents
flapping. Every move is appended to a deterministic trace.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable

from .config import QosClass, QosConfig

__all__ = ["BrownoutLevel", "BrownoutController"]


class BrownoutLevel(IntEnum):
    NORMAL = 0
    PREFER_FAST = 1
    SKIP_COMPRESSION = 2
    SHED_LOW = 3


class BrownoutController:
    """Hysteretic one-rung-at-a-time degradation ladder."""

    def __init__(
        self,
        config: QosConfig,
        on_event: Callable[..., None] | None = None,
    ):
        self.config = config
        self.level = BrownoutLevel.NORMAL
        self.transitions = 0
        self.trace: list[tuple] = []
        self._on_event = on_event
        self._last_move: float | None = None

    def update(self, pressure: float, now: float) -> BrownoutLevel:
        if not self.config.brownout_enabled:
            return self.level
        dwell_ok = (
            self._last_move is None
            or now - self._last_move >= self.config.brownout_dwell
        )
        if not dwell_ok:
            return self.level
        if (
            pressure >= self.config.brownout_high
            and self.level < BrownoutLevel.SHED_LOW
        ):
            self._move(self.level + 1, pressure, now)
        elif (
            pressure <= self.config.brownout_low
            and self.level > BrownoutLevel.NORMAL
        ):
            self._move(self.level - 1, pressure, now)
        return self.level

    def _move(self, level: int, pressure: float, now: float) -> None:
        prev, self.level = self.level, BrownoutLevel(level)
        self.transitions += 1
        self._last_move = now
        event = (
            "brownout", round(now, 9), int(prev), int(self.level),
            round(pressure, 6),
        )
        self.trace.append(event)
        if self._on_event is not None:
            self._on_event(*event)

    def codec_filter(self) -> str | None:
        """Planner codec restriction implied by the current rung."""
        if self.level >= BrownoutLevel.SKIP_COMPRESSION:
            return "none"
        if self.level == BrownoutLevel.PREFER_FAST:
            return "fastest"
        return None

    def shed_floor(self) -> QosClass | None:
        """Admission floor implied by the current rung (None = no floor)."""
        if self.level >= BrownoutLevel.SHED_LOW:
            return self.config.protected_class
        return None

    def export_state(self) -> dict:
        return {"level": int(self.level), "transitions": self.transitions}

    def restore_state(self, raw: dict, now: float) -> None:
        self.level = BrownoutLevel(int(raw.get("level", 0)))
        self.transitions = int(raw.get("transitions", 0))
        self._last_move = now
