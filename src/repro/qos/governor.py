"""The QoS governor: one facade over admission, breakers, and brownout.

``HCompress`` constructs a governor when ``QosConfig.enabled`` and
threads it through the request path:

* ``observe`` feeds monitor pressure into the brownout ladder,
* ``admit`` gates intake (raising :class:`~repro.errors.TaskShedError`),
* ``codec_filter`` / ``quarantined_tiers`` constrain HCDP planning,
* ``breaker_allow`` / ``record_tier_outcome`` are the SHI's write gate
  and outcome feed,
* ``tier_quarantined`` is the flusher's non-mutating destination check.

All timing runs on the engine clock (simulated seconds when a SimClock
is wired, a deterministic call counter otherwise), and every decision is
appended to a replayable event trace.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from .admission import AdmissionController
from .breaker import BreakerBoard
from .brownout import BrownoutController, BrownoutLevel
from .config import QosClass, QosConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..monitor.system_monitor import SystemStatus
    from ..tiers import StorageHierarchy

__all__ = ["QosGovernor"]


class QosGovernor:
    """Engine-lifetime QoS state: one admission controller, one breaker
    per tier, one brownout ladder, one merged event trace."""

    def __init__(
        self,
        config: QosConfig,
        hierarchy: "StorageHierarchy",
        clock: Callable[[], float] | None = None,
        obs=None,
    ):
        self.config = config
        self.obs = obs
        if clock is None:
            counter = itertools.count()
            clock = lambda: float(next(counter)) * 1e-6  # noqa: E731
        self._clock = clock
        drain = config.drain_bytes_per_s
        if drain is None:
            drain = hierarchy[len(hierarchy) - 1].spec.bandwidth
        self.admission = AdmissionController(config, drain)
        self.breakers = (
            BreakerBoard(hierarchy.names, config)
            if config.breaker_enabled
            else None
        )
        self.brownout = BrownoutController(config, on_event=self._on_brownout)
        self.deadline_exceeded = 0

    def now(self) -> float:
        return self._clock()

    def _on_brownout(self, *event) -> None:
        if self.obs is not None:
            self.obs.record_brownout(int(event[2]), int(event[3]))

    # -- monitor feedback --------------------------------------------------

    def observe(self, status: "SystemStatus") -> BrownoutLevel:
        """Feed monitor pressure (combined with admission backlog fill)
        into the brownout ladder."""
        now = self.now()
        pressure = max(status.pressure(), min(1.0, self.admission.fill(now)))
        return self.brownout.update(pressure, now)

    # -- admission ---------------------------------------------------------

    def admit(
        self,
        task_id: int,
        size: int,
        qos_class: QosClass | None,
        tenant: str | None = None,
    ) -> None:
        """Gate one task's intake; an explicit ``qos_class`` wins, else the
        tenant's configured class, else the config default."""
        if qos_class is None:
            cls = self.config.class_for_tenant(tenant)
        else:
            cls = QosClass(qos_class)
        now = self.now()
        try:
            self.admission.admit(
                task_id, size, cls, now, floor=self.brownout.shed_floor(),
                tenant=tenant,
            )
        except Exception:
            if self.obs is not None:
                self.obs.record_qos_shed(cls.name)
            raise
        if self.obs is not None:
            self.obs.record_qos_admitted(cls.name)

    # -- planning constraints ----------------------------------------------

    def codec_filter(self) -> str | None:
        return self.brownout.codec_filter()

    def quarantined_tiers(self) -> tuple[str, ...]:
        if self.breakers is None:
            return ()
        return self.breakers.quarantined(self.now())

    # -- SHI gate and outcome feed -----------------------------------------

    def breaker_allow(self, tier: str) -> bool:
        if self.breakers is None:
            return True
        return self.breakers.allow(tier, self.now())

    def tier_quarantined(self, tier: str) -> bool:
        if self.breakers is None:
            return False
        return self.breakers.blocked(tier, self.now())

    def record_tier_outcome(self, tier: str, ok: bool, seconds: float = 0.0) -> None:
        if self.breakers is None:
            return
        threshold = self.config.breaker_latency_threshold
        if ok and threshold is not None and seconds > threshold:
            ok = False  # a crawling tier counts as a failing one
        self.breakers.record(tier, ok, self.now())

    # -- bookkeeping -------------------------------------------------------

    def record_deadline_exceeded(self, operation: str) -> None:
        self.deadline_exceeded += 1
        if self.obs is not None:
            self.obs.record_deadline_exceeded(operation)

    def event_trace(self) -> tuple:
        """Deterministic merged trace: admission sheds, breaker
        transitions, brownout moves (each stream internally ordered)."""
        breaker_trace = () if self.breakers is None else tuple(self.breakers.trace)
        return (
            tuple(self.admission.trace),
            breaker_trace,
            tuple(self.brownout.trace),
        )

    # -- checkpoint/restore ------------------------------------------------

    def export_state(self) -> dict:
        state = {
            "admission": self.admission.export_state(),
            "brownout": self.brownout.export_state(),
            "deadline_exceeded": self.deadline_exceeded,
        }
        if self.breakers is not None:
            state["breakers"] = self.breakers.export_state()
        return state

    def restore_state(self, raw: dict) -> None:
        now = self.now()
        self.admission.restore_state(raw.get("admission", {}), now)
        self.brownout.restore_state(raw.get("brownout", {}), now)
        self.deadline_exceeded = int(raw.get("deadline_exceeded", 0))
        if self.breakers is not None and "breakers" in raw:
            self.breakers.restore_state(raw["breakers"], now)
