"""Admission control: bounded intake backlog with class-aware shedding.

The controller models the engine's intake as a byte backlog that fills on
every admitted task and drains at a modeled rate (defaulting to the sink
tier's aggregate bandwidth). Shedding is class-aware and monotone in
severity:

* fill <= ``shed_soft_fill``      -> everything admitted
* soft band (soft < fill <= 1)    -> sub-protected classes shed with
  probability ``excess ** (1 + class)`` — lower classes shed first, drawn
  from a seeded RNG so the trace replays exactly
* fill > 1                        -> every sub-protected class shed

Protected classes (``protected_class`` and above) are never shed by the
controller; the brownout ladder may additionally impose a shed *floor*
that deterministically rejects classes below it.

With ``QosConfig.tenant_quota_fraction`` set the controller additionally
tracks each tenant's live share of the backlog (drained proportionally
with the whole queue) and sheds a sub-protected task whose tenant would
exceed its quota with reason ``"tenant-quota"`` — the fair-sharding leg
of the shed lottery: one storming tenant saturates only its own slice,
not every tenant's admission odds.
"""

from __future__ import annotations

import random

from ..errors import TaskShedError
from .config import QosClass, QosConfig

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-backlog intake gate with seeded, replayable shed decisions."""

    def __init__(self, config: QosConfig, drain_bytes_per_s: float):
        if drain_bytes_per_s <= 0:
            raise ValueError("drain_bytes_per_s must be positive")
        self.config = config
        self.drain_bytes_per_s = float(drain_bytes_per_s)
        self.backlog_bytes = 0.0
        self.admitted = 0
        self.shed = 0
        self.shed_by_class: dict[int, int] = {}
        self.shed_by_tenant: dict[str, int] = {}
        self.tenant_bytes: dict[str, float] = {}
        self.trace: list[tuple] = []
        self._rng = random.Random(config.shed_seed)
        self._last_drain: float | None = None

    def _drain(self, now: float) -> None:
        if self._last_drain is not None and now > self._last_drain:
            before = self.backlog_bytes
            self.backlog_bytes = max(
                0.0,
                before - (now - self._last_drain) * self.drain_bytes_per_s,
            )
            if self.tenant_bytes:
                # Per-tenant shares drain proportionally with the queue
                # (the drain model has no notion of per-tenant ordering).
                if self.backlog_bytes <= 0.0:
                    self.tenant_bytes.clear()
                elif before > 0.0:
                    factor = self.backlog_bytes / before
                    for tenant in self.tenant_bytes:
                        self.tenant_bytes[tenant] *= factor
        self._last_drain = now

    def fill(self, now: float) -> float:
        """Current backlog fill fraction (drains lazily to ``now``)."""
        self._drain(now)
        return self.backlog_bytes / self.config.max_backlog_bytes

    def admit(
        self,
        task_id: int,
        size: int,
        qos_class: QosClass,
        now: float,
        floor: QosClass | None = None,
        tenant: str | None = None,
    ) -> None:
        """Admit the task into the backlog or raise :class:`TaskShedError`.

        ``floor`` is the brownout shed floor: classes strictly below it
        are rejected outright regardless of fill. ``tenant`` scopes the
        task to a per-tenant quota when one is configured.
        """
        self._drain(now)
        fill = (self.backlog_bytes + size) / self.config.max_backlog_bytes
        quota = self.config.tenant_quota_fraction
        reason = None
        if floor is not None and qos_class < floor:
            reason = "brownout"
        elif qos_class >= self.config.protected_class:
            pass  # protected classes are never shed
        elif (
            quota is not None
            and tenant is not None
            and (self.tenant_bytes.get(tenant, 0.0) + size)
            / self.config.max_backlog_bytes
            > quota
        ):
            reason = "tenant-quota"
        elif fill > 1.0:
            reason = "overload"
        elif fill > self.config.shed_soft_fill:
            excess = (fill - self.config.shed_soft_fill) / (
                1.0 - self.config.shed_soft_fill
            )
            # Lower classes get a larger shed probability (excess < 1, so a
            # higher exponent shrinks it); the draw order is deterministic.
            if self._rng.random() < excess ** (1 + int(qos_class)):
                reason = "pressure"
        if reason is not None:
            self.shed += 1
            self.shed_by_class[int(qos_class)] = (
                self.shed_by_class.get(int(qos_class), 0) + 1
            )
            if tenant is not None:
                self.shed_by_tenant[tenant] = (
                    self.shed_by_tenant.get(tenant, 0) + 1
                )
            self.trace.append(
                ("shed", round(now, 9), task_id, int(qos_class), reason,
                 round(fill, 6))
            )
            raise TaskShedError(
                f"task {task_id} (class {QosClass(qos_class).name}) shed: "
                f"{reason} (backlog fill {fill:.3f})",
                qos_class=int(qos_class),
                reason=reason,
            )
        self.backlog_bytes += size
        if quota is not None and tenant is not None:
            self.tenant_bytes[tenant] = (
                self.tenant_bytes.get(tenant, 0.0) + size
            )
        self.admitted += 1

    def export_state(self) -> dict:
        return {
            "backlog_bytes": self.backlog_bytes,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_class": dict(self.shed_by_class),
            "shed_by_tenant": dict(self.shed_by_tenant),
            "tenant_bytes": dict(self.tenant_bytes),
        }

    def restore_state(self, raw: dict, now: float) -> None:
        self.backlog_bytes = float(raw.get("backlog_bytes", 0.0))
        self.admitted = int(raw.get("admitted", 0))
        self.shed = int(raw.get("shed", 0))
        self.shed_by_class = {
            int(k): int(v) for k, v in raw.get("shed_by_class", {}).items()
        }
        self.shed_by_tenant = {
            str(k): int(v) for k, v in raw.get("shed_by_tenant", {}).items()
        }
        self.tenant_bytes = {
            str(k): float(v) for k, v in raw.get("tenant_bytes", {}).items()
        }
        self._last_drain = now
