"""Admission control: bounded intake backlog with class-aware shedding.

The controller models the engine's intake as a byte backlog that fills on
every admitted task and drains at a modeled rate (defaulting to the sink
tier's aggregate bandwidth). Shedding is class-aware and monotone in
severity:

* fill <= ``shed_soft_fill``      -> everything admitted
* soft band (soft < fill <= 1)    -> sub-protected classes shed with
  probability ``excess ** (1 + class)`` — lower classes shed first, drawn
  from a seeded RNG so the trace replays exactly
* fill > 1                        -> every sub-protected class shed

Protected classes (``protected_class`` and above) are never shed by the
controller; the brownout ladder may additionally impose a shed *floor*
that deterministically rejects classes below it.
"""

from __future__ import annotations

import random

from ..errors import TaskShedError
from .config import QosClass, QosConfig

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-backlog intake gate with seeded, replayable shed decisions."""

    def __init__(self, config: QosConfig, drain_bytes_per_s: float):
        if drain_bytes_per_s <= 0:
            raise ValueError("drain_bytes_per_s must be positive")
        self.config = config
        self.drain_bytes_per_s = float(drain_bytes_per_s)
        self.backlog_bytes = 0.0
        self.admitted = 0
        self.shed = 0
        self.shed_by_class: dict[int, int] = {}
        self.trace: list[tuple] = []
        self._rng = random.Random(config.shed_seed)
        self._last_drain: float | None = None

    def _drain(self, now: float) -> None:
        if self._last_drain is not None and now > self._last_drain:
            self.backlog_bytes = max(
                0.0,
                self.backlog_bytes
                - (now - self._last_drain) * self.drain_bytes_per_s,
            )
        self._last_drain = now

    def fill(self, now: float) -> float:
        """Current backlog fill fraction (drains lazily to ``now``)."""
        self._drain(now)
        return self.backlog_bytes / self.config.max_backlog_bytes

    def admit(
        self,
        task_id: int,
        size: int,
        qos_class: QosClass,
        now: float,
        floor: QosClass | None = None,
    ) -> None:
        """Admit the task into the backlog or raise :class:`TaskShedError`.

        ``floor`` is the brownout shed floor: classes strictly below it
        are rejected outright regardless of fill.
        """
        self._drain(now)
        fill = (self.backlog_bytes + size) / self.config.max_backlog_bytes
        reason = None
        if floor is not None and qos_class < floor:
            reason = "brownout"
        elif qos_class >= self.config.protected_class:
            pass  # protected classes are never shed
        elif fill > 1.0:
            reason = "overload"
        elif fill > self.config.shed_soft_fill:
            excess = (fill - self.config.shed_soft_fill) / (
                1.0 - self.config.shed_soft_fill
            )
            # Lower classes get a larger shed probability (excess < 1, so a
            # higher exponent shrinks it); the draw order is deterministic.
            if self._rng.random() < excess ** (1 + int(qos_class)):
                reason = "pressure"
        if reason is not None:
            self.shed += 1
            self.shed_by_class[int(qos_class)] = (
                self.shed_by_class.get(int(qos_class), 0) + 1
            )
            self.trace.append(
                ("shed", round(now, 9), task_id, int(qos_class), reason,
                 round(fill, 6))
            )
            raise TaskShedError(
                f"task {task_id} (class {QosClass(qos_class).name}) shed: "
                f"{reason} (backlog fill {fill:.3f})",
                qos_class=int(qos_class),
                reason=reason,
            )
        self.backlog_bytes += size
        self.admitted += 1

    def export_state(self) -> dict:
        return {
            "backlog_bytes": self.backlog_bytes,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_class": dict(self.shed_by_class),
        }

    def restore_state(self, raw: dict, now: float) -> None:
        self.backlog_bytes = float(raw.get("backlog_bytes", 0.0))
        self.admitted = int(raw.get("admitted", 0))
        self.shed = int(raw.get("shed", 0))
        self.shed_by_class = {
            int(k): int(v) for k, v in raw.get("shed_by_class", {}).items()
        }
        self._last_drain = now
