"""Quality-of-service subsystem: overload protection & graceful degradation.

Four cooperating mechanisms, all governed by one frozen
:class:`~repro.qos.config.QosConfig` and byte-identical to a build
without QoS when disabled:

* :mod:`~repro.qos.admission` — bounded intake backlog with class-aware,
  seeded load shedding (:class:`~repro.errors.TaskShedError`),
* :mod:`~repro.qos.breaker` — per-tier closed/open/half-open circuit
  breakers fed by SHI outcomes on the simulated clock,
* :mod:`~repro.qos.deadline` — per-operation remaining-budget carrier
  threaded through planning and execution
  (:class:`~repro.errors.DeadlineExceededError`),
* :mod:`~repro.qos.brownout` — hysteretic degradation ladder (prefer
  fastest codec → skip compression → shed lowest class).

:class:`~repro.qos.governor.QosGovernor` is the engine-facing facade.
"""

from .admission import AdmissionController
from .breaker import BreakerBoard, CircuitBreaker
from .brownout import BrownoutController, BrownoutLevel
from .config import QosClass, QosConfig, qos_class_for_priority
from .deadline import Deadline
from .governor import QosGovernor

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "BrownoutController",
    "BrownoutLevel",
    "CircuitBreaker",
    "Deadline",
    "QosClass",
    "QosConfig",
    "QosGovernor",
    "qos_class_for_priority",
]
