"""Deadline propagation: a remaining-budget carrier for one operation.

A :class:`Deadline` is created at the API boundary (``HCompress.compress``
/ ``decompress``) and threaded through planning and execution. It tracks
two time sources: the engine's clock (simulated wall time, advanced by
retry backoff and fault injection) and the *modeled* service time the
current operation has consumed so far, which the manager accumulates
per piece. Both count against the same budget, so a task stalled by
backoff and a task slowed by heavy codecs hit the deadline identically
and deterministically.
"""

from __future__ import annotations

from typing import Callable

from ..errors import DeadlineExceededError

__all__ = ["Deadline"]


def _zero_clock() -> float:
    return 0.0


class Deadline:
    """Budget in modeled seconds for one write or read operation."""

    __slots__ = ("budget", "_clock", "_start")

    def __init__(self, budget: float, clock: Callable[[], float] | None = None):
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = float(budget)
        self._clock = clock if clock is not None else _zero_clock
        self._start = self._clock()

    def elapsed(self, consumed: float = 0.0) -> float:
        """Clock time since creation plus ``consumed`` modeled seconds."""
        return (self._clock() - self._start) + consumed

    def remaining(self, consumed: float = 0.0) -> float:
        """Budget left after clock drift and ``consumed`` modeled seconds."""
        return self.budget - self.elapsed(consumed)

    def exceeded(self, consumed: float = 0.0) -> bool:
        return self.remaining(consumed) <= 0.0

    def check(self, what: str, consumed: float = 0.0) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.exceeded(consumed):
            raise DeadlineExceededError(
                f"{what}: deadline of {self.budget:.6g}s exceeded "
                f"({self.elapsed(consumed):.6g}s elapsed)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(budget={self.budget!r}, remaining={self.remaining()!r})"
