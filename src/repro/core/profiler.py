"""The HCompress Profiler (paper §IV-A).

Runs before the application to produce the JSON seed: it evaluates every
compression library against a corpus of inputs (predefined, per the paper,
or user-provided) and benchmarks the storage hierarchy into a "system
signature". Ratios are always measured on real bytes; speeds come from the
nominal profile table by default (``mode="nominal"``) or from wall-clock
measurement of our Python codecs (``mode="measured"`` — useful for
validating the pipeline, not for reproducing figure shapes; see
DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from ..ccp.features import ObservationKey
from ..ccp.seed import CostObservation, SeedData
from ..codecs.pool import CompressionLibraryPool
from ..errors import SeedError
from ..tiers import StorageHierarchy
from ..datagen import corpus, synthetic_buffer
from ..units import KiB

__all__ = ["HCompressProfiler"]

_DEFAULT_SIZES = (64 * KiB, 1024 * KiB)


class HCompressProfiler:
    """Seed generator: codec benchmarking + hierarchy discovery."""

    def __init__(
        self,
        pool: CompressionLibraryPool | None = None,
        mode: str = "nominal",
        rng: np.random.Generator | None = None,
    ) -> None:
        if mode not in ("nominal", "measured"):
            raise SeedError(f"profiler mode must be nominal/measured, got {mode!r}")
        self.pool = pool if pool is not None else CompressionLibraryPool()
        self.mode = mode
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # -- codec profiling ------------------------------------------------------

    def profile_codecs(
        self,
        inputs: dict[tuple[str, str], bytes] | None = None,
        sizes: tuple[int, ...] = _DEFAULT_SIZES,
    ) -> list[CostObservation]:
        """Measure every library over the corpus.

        Args:
            inputs: Optional user corpus keyed (dtype, distribution); when
                omitted the predefined corpus covers the four distributions
                across four numeric dtypes plus text.
            sizes: Buffer sizes evaluated (ratio is mildly size-dependent).
        """
        observations: list[CostObservation] = []
        for size in sizes:
            if inputs is None:
                batch = corpus(size, self.rng)
            else:
                batch = {k: v[:size] for k, v in inputs.items()}
            for (dtype, distribution), data in batch.items():
                if not data:
                    continue
                data_format = "csv" if dtype == "text" else "binary"
                for name in self.pool.names[1:]:
                    measured = self.pool.measure(name, data)
                    profile = self.pool.profile(name)
                    if self.mode == "nominal":
                        comp, decomp = profile.compress_mbps, profile.decompress_mbps
                    else:
                        comp, decomp = measured.compress_mbps, measured.decompress_mbps
                    ratio = max(measured.ratio, 1e-3)
                    # Register each buffer under its raw format and under
                    # the self-described container label: h5lite framing
                    # does not change codec behaviour, and covering both
                    # keeps the model accurate on the metadata fast path.
                    for fmt in (data_format, "h5lite"):
                        observations.append(
                            CostObservation(
                                key=ObservationKey(
                                    dtype, fmt, distribution, name, len(data)
                                ),
                                compress_mbps=comp,
                                decompress_mbps=decomp,
                                ratio=ratio,
                            )
                        )
        return observations

    # -- hierarchy discovery --------------------------------------------------

    @staticmethod
    def system_signature(hierarchy: StorageHierarchy) -> dict[str, dict[str, float]]:
        """Benchmark summary of the storage stack (availability, bandwidth,
        latency, capacity per tier)."""
        signature = {}
        for level, tier in enumerate(hierarchy):
            spec = tier.spec
            signature[spec.name] = {
                "level": float(level),
                "bandwidth": float(spec.bandwidth),
                "latency": float(spec.latency),
                "lanes": float(spec.lanes),
                "capacity": float(-1 if spec.capacity is None else spec.capacity),
            }
        return signature

    # -- one-shot seed ---------------------------------------------------------

    def generate_seed(
        self,
        hierarchy: StorageHierarchy | None = None,
        inputs: dict[tuple[str, str], bytes] | None = None,
        sizes: tuple[int, ...] = _DEFAULT_SIZES,
        weights: dict[str, float] | None = None,
    ) -> SeedData:
        """The profiler's full output: observations + system signature."""
        return SeedData(
            observations=self.profile_codecs(inputs, sizes),
            system_signature=(
                self.system_signature(hierarchy) if hierarchy is not None else {}
            ),
            weights=weights,
        )

    def quick_seed(self, sizes: tuple[int, ...] = (8 * KiB, 32 * KiB)) -> SeedData:
        """A fast, reduced corpus (all dtypes x distributions, small
        buffers) — the default bootstrap when no seed file is configured."""
        inputs = {}
        for dtype in ("float64", "float32", "int64", "int32"):
            for distribution in ("uniform", "normal", "exponential", "gamma"):
                inputs[(dtype, distribution)] = synthetic_buffer(
                    dtype, distribution, max(sizes), self.rng
                )
        return self.generate_seed(inputs=inputs, sizes=sizes)
