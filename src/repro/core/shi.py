"""Storage Hardware Interface (paper §IV-A).

The SHI is the only component that touches the tiers: it places decorated
sub-task payloads, finds and reads them back, and reports the modeled I/O
time of each operation so callers (the main library, or the event
simulator) can charge it. Keys are ``"{task_id}/{piece_index}"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TierError
from ..tiers import StorageHierarchy, Tier

__all__ = ["StorageHardwareInterface", "IoReceipt"]


@dataclass(frozen=True)
class IoReceipt:
    """Outcome of one SHI operation."""

    key: str
    tier: str
    nbytes: int
    seconds: float


class StorageHardwareInterface:
    """Thin placement/retrieval layer over a :class:`StorageHierarchy`."""

    def __init__(self, hierarchy: StorageHierarchy) -> None:
        self.hierarchy = hierarchy

    @staticmethod
    def piece_key(task_id: str, index: int) -> str:
        return f"{task_id}/{index}"

    def write(
        self,
        key: str,
        tier_name: str,
        payload: bytes | None,
        accounted_size: int | None = None,
    ) -> IoReceipt:
        """Place one payload on the named tier.

        Returns a receipt carrying the uncontended modeled I/O time
        (latency + accounted size / lane bandwidth).
        """
        tier = self.hierarchy.by_name(tier_name)
        extent = tier.put(key, payload, accounted_size)
        seconds = tier.spec.io_seconds(extent.accounted_size)
        return IoReceipt(key, tier_name, extent.accounted_size, seconds)

    def read(self, key: str) -> tuple[bytes, IoReceipt]:
        """Locate ``key`` anywhere in the hierarchy and read it."""
        tier = self.hierarchy.find(key)
        if tier is None:
            raise TierError(f"key {key!r} not present in any tier")
        payload = tier.get(key)
        extent = tier.extent(key)
        seconds = tier.spec.io_seconds(extent.accounted_size)
        return payload, IoReceipt(key, tier.spec.name, extent.accounted_size, seconds)

    def locate(self, key: str) -> Tier | None:
        return self.hierarchy.find(key)

    def accounted_size(self, key: str) -> int:
        tier = self.hierarchy.find(key)
        if tier is None:
            raise TierError(f"key {key!r} not present in any tier")
        return tier.extent(key).accounted_size

    def delete(self, key: str) -> int:
        """Evict ``key``; returns the accounted bytes released."""
        tier = self.hierarchy.find(key)
        if tier is None:
            raise TierError(f"key {key!r} not present in any tier")
        return tier.evict(key)
