"""Storage Hardware Interface (paper §IV-A).

The SHI is the only component that touches the tiers: it places decorated
sub-task payloads, finds and reads them back, and reports the modeled I/O
time of each operation so callers (the main library, or the event
simulator) can charge it. Keys are ``"{task_id}/{piece_index}"``.

Resilience: every operation runs under a :class:`ResilienceConfig` policy —
transient failures (:class:`TransientIOError`) are retried with exponential
backoff plus seeded jitter, and a write whose target tier is down or full
fails over to the nearest tier that fits. Backoff sleeps are *charged to
the modeled clock* (they inflate the receipt's ``seconds`` and are reported
through ``on_wait``), never slept in wall time, so chaos runs stay
deterministic and replayable. Every retry/failover decision is appended to
``stats.trace`` for replay comparison.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import (
    AllTiersUnavailableError,
    CapacityError,
    CircuitOpenError,
    RetryExhaustedError,
    TierError,
    TierUnavailableError,
    TransientIOError,
)
from ..tiers import StorageHierarchy, Tier
from .config import ResilienceConfig

__all__ = ["StorageHardwareInterface", "IoReceipt", "ResilienceStats"]


@dataclass(frozen=True)
class IoReceipt:
    """Outcome of one SHI operation.

    ``seconds`` is the uncontended modeled I/O time (latency + accounted
    size / lane bandwidth, scaled by any injected slowdown) plus any
    backoff charged while retrying. ``tier`` is where the data actually
    landed, which differs from the requested tier after a failover.
    """

    key: str
    tier: str
    nbytes: int
    seconds: float
    retries: int = 0
    failover: bool = False


@dataclass
class ResilienceStats:
    """Cumulative resilience counters plus the deterministic event trace."""

    retries: int = 0
    failovers: int = 0
    backoff_seconds: float = 0.0
    exhausted: int = 0
    trace: list[tuple] = field(default_factory=list)

    def record(self, *event) -> None:
        self.trace.append(tuple(event))


class StorageHardwareInterface:
    """Resilient placement/retrieval layer over a :class:`StorageHierarchy`.

    Args:
        hierarchy: The managed tier stack.
        resilience: Retry/failover policy; defaults to
            :class:`ResilienceConfig` defaults.
        on_wait: Optional hook invoked with every backoff duration so the
            owner can advance a simulated clock (and with it any fault
            injector) while the operation "sleeps". Never wall-clock.
        obs: Optional :class:`~repro.obs.Observability` sink; per-tier
            bytes/time and retry/failover events are pushed into its
            registry, independently of the legacy ``stats`` counters.
        crashpoints: Optional crash-point arbiter
            (:class:`~repro.recovery.Crashpoints`); the write path honours
            the ``shi.write.pre_put``/``post_put``/``failover`` sites.
        qos: Optional :class:`~repro.qos.QosGovernor`. When present, the
            write path consults its per-tier circuit breakers (an open
            breaker is skipped like an injected outage) and feeds every
            tier outcome — success with its modeled latency, or failure —
            back into them.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        resilience: ResilienceConfig | None = None,
        on_wait=None,
        obs=None,
        crashpoints=None,
        qos=None,
    ) -> None:
        self.hierarchy = hierarchy
        self.resilience = (
            resilience if resilience is not None else ResilienceConfig()
        )
        self.on_wait = on_wait
        self.obs = obs
        self.crashpoints = crashpoints
        self.qos = qos
        self.stats = ResilienceStats()
        self._rng = random.Random(self.resilience.jitter_seed)

    @staticmethod
    def piece_key(task_id: str, index: int) -> str:
        return f"{task_id}/{index}"

    # -- retry plumbing ------------------------------------------------------

    def _backoff(self, attempt: int, key: str, tier: str) -> float:
        """One backoff sleep, charged to the modeled clock."""
        seconds = self.resilience.backoff_seconds(attempt, self._rng)
        self.stats.retries += 1
        self.stats.backoff_seconds += seconds
        self.stats.record("retry", key, tier, attempt, round(seconds, 9))
        if self.obs is not None:
            self.obs.record_retry(tier, seconds)
        if self.on_wait is not None:
            self.on_wait(seconds)
        return seconds

    def _check_retry_deadline(
        self,
        charged_backoff: float,
        key: str,
        operation: str,
        last_error: TierError | None,
    ) -> None:
        """Cap cumulative backoff across retries *and* failover candidates.

        Attempt counts bound retries per tier, but a failover chain
        multiplies them; once total charged backoff crosses the policy's
        ``retry_deadline`` the operation fails typed instead of stalling.
        """
        deadline = self.resilience.retry_deadline
        if deadline is not None and charged_backoff > deadline:
            self.stats.exhausted += 1
            self.stats.record(
                "retry_deadline", key, operation, round(charged_backoff, 9)
            )
            raise AllTiersUnavailableError(
                f"{operation} of {key!r} exceeded retry_deadline "
                f"({deadline}s): {charged_backoff:.6g}s of cumulative backoff"
            ) from last_error

    def _failover_candidates(self, level: int) -> list[Tier]:
        """Tiers to try after ``level`` fails: lower (closer to the sink)
        first — they are the capacity refuge — then upper tiers."""
        below = [self.hierarchy[i] for i in range(level + 1, len(self.hierarchy))]
        above = [self.hierarchy[i] for i in range(level - 1, -1, -1)]
        return below + above

    # -- write path ----------------------------------------------------------

    def write(
        self,
        key: str,
        tier_name: str,
        payload: bytes | None,
        accounted_size: int | None = None,
    ) -> IoReceipt:
        """Place one payload on the named tier, retrying transient errors
        and failing over to the next tier that fits when the target is
        down or full.

        Raises:
            RetryExhaustedError: Every candidate tier kept failing
                transiently past the retry budget.
            AllTiersUnavailableError: Failover exhausted every candidate
                tier (all down or full) — a hierarchy-wide outage.
            TierError: No tier could accept the write at all.
        """
        if self.obs is None:
            return self._write(key, tier_name, payload, accounted_size)
        with self.obs.region("shi.write", key=key, tier=tier_name) as sp:
            receipt = self._write(key, tier_name, payload, accounted_size)
            sp.set_attr("landed_tier", receipt.tier)
            sp.set_attr("nbytes", receipt.nbytes)
            sp.charge_modeled(receipt.seconds)
            self.obs.record_io(receipt, "write")
        return receipt

    def _write(
        self,
        key: str,
        tier_name: str,
        payload: bytes | None,
        accounted_size: int | None = None,
    ) -> IoReceipt:
        policy = self.resilience
        tier = self.hierarchy.by_name(tier_name)
        candidates = [tier]
        if policy.failover:
            candidates += self._failover_candidates(
                self.hierarchy.level_of(tier_name)
            )
        charged_backoff = 0.0
        last_error: TierError | None = None
        for rank, candidate in enumerate(candidates):
            name = candidate.spec.name
            if self.qos is not None and not self.qos.breaker_allow(name):
                # The breaker quarantines the tier like an injected
                # outage: skip it without spending a single attempt.
                last_error = CircuitOpenError(
                    f"tier {name!r} skipped: circuit breaker open"
                )
                self.stats.record("breaker_open", key, name)
                continue
            if rank > 0 and self.crashpoints is not None:
                self.crashpoints.reached("shi.write.failover")
            attempt = 0
            while True:
                try:
                    if self.crashpoints is not None:
                        self.crashpoints.reached("shi.write.pre_put")
                    extent = candidate.put(key, payload, accounted_size)
                    if self.crashpoints is not None:
                        self.crashpoints.reached("shi.write.post_put")
                except TransientIOError as exc:
                    last_error = exc
                    if self.qos is not None:
                        self.qos.record_tier_outcome(name, False)
                    attempt += 1
                    if attempt > policy.max_retries:
                        self.stats.exhausted += 1
                        self.stats.record("exhausted", key, name)
                        if self.obs is not None:
                            self.obs.record_exhausted(name)
                        break  # try the next candidate
                    charged_backoff += self._backoff(attempt, key, name)
                    self._check_retry_deadline(
                        charged_backoff, key, "write", last_error
                    )
                    continue
                except (TierUnavailableError, CapacityError) as exc:
                    last_error = exc
                    if self.qos is not None and isinstance(
                        exc, TierUnavailableError
                    ):
                        # An outage is a health failure; a full tier is not.
                        self.qos.record_tier_outcome(name, False)
                    self.stats.record(
                        "unplaceable", key, name, type(exc).__name__
                    )
                    break  # not retryable on this tier; fail over
                failover = name != tier_name
                if failover:
                    self.stats.failovers += 1
                    self.stats.record("failover", key, tier_name, name)
                    if self.obs is not None:
                        self.obs.record_failover(tier_name, name)
                seconds = candidate.io_seconds(extent.accounted_size)
                if self.qos is not None:
                    self.qos.record_tier_outcome(name, True, seconds)
                return IoReceipt(
                    key,
                    name,
                    extent.accounted_size,
                    seconds + charged_backoff,
                    retries=attempt,
                    failover=failover,
                )
        if isinstance(last_error, TransientIOError):
            raise RetryExhaustedError(
                f"write of {key!r} failed after {policy.max_retries} retries "
                f"on every candidate tier"
            ) from last_error
        if last_error is None:
            raise TierError(f"no tier accepted write of {key!r}")
        if len(candidates) > 1:
            # Failover was on and still ran out of candidates: surface the
            # hierarchy-wide outage as one typed error (bounded — each
            # candidate got at most the per-tier retry budget) instead of
            # re-raising whichever tier happened to fail last.
            self.stats.record("all_tiers_unavailable", key)
            raise AllTiersUnavailableError(
                f"write of {key!r} rejected by all {len(candidates)} tiers "
                f"(each tried with up to {policy.max_retries} retries)"
            ) from last_error
        raise last_error

    # -- read path -----------------------------------------------------------

    def read(self, key: str) -> tuple[bytes, IoReceipt]:
        """Locate ``key`` anywhere in the hierarchy and read it, retrying
        transient failures (and tier outages, which may heal during the
        charged backoff) up to the retry budget."""
        if self.obs is None:
            return self._read(key)
        with self.obs.region("shi.read", key=key) as sp:
            payload, receipt = self._read(key)
            sp.set_attr("tier", receipt.tier)
            sp.set_attr("nbytes", receipt.nbytes)
            sp.charge_modeled(receipt.seconds)
            self.obs.record_io(receipt, "read")
        return payload, receipt

    def _read(self, key: str) -> tuple[bytes, IoReceipt]:
        policy = self.resilience
        attempt = 0
        charged_backoff = 0.0
        while True:
            tier = self.hierarchy.find(key)
            if tier is None:
                raise TierError(f"key {key!r} not present in any tier")
            name = tier.spec.name
            try:
                payload = tier.get(key)
                extent = tier.extent(key)
            except (TransientIOError, TierUnavailableError) as exc:
                if self.qos is not None:
                    self.qos.record_tier_outcome(name, False)
                attempt += 1
                if attempt > policy.max_retries:
                    self.stats.exhausted += 1
                    self.stats.record("exhausted", key, name)
                    if self.obs is not None:
                        self.obs.record_exhausted(name)
                    if isinstance(exc, TransientIOError):
                        raise RetryExhaustedError(
                            f"read of {key!r} failed after "
                            f"{policy.max_retries} retries"
                        ) from exc
                    raise
                charged_backoff += self._backoff(attempt, key, name)
                self._check_retry_deadline(charged_backoff, key, "read", exc)
                continue
            seconds = tier.io_seconds(extent.accounted_size)
            if self.qos is not None:
                self.qos.record_tier_outcome(name, True, seconds)
            return payload, IoReceipt(
                key,
                name,
                extent.accounted_size,
                seconds + charged_backoff,
                retries=attempt,
            )

    def locate(self, key: str) -> Tier | None:
        return self.hierarchy.find(key)

    def accounted_size(self, key: str) -> int:
        tier = self.hierarchy.find(key)
        if tier is None:
            raise TierError(f"key {key!r} not present in any tier")
        return tier.extent(key).accounted_size

    def delete(self, key: str) -> int:
        """Evict ``key``; returns the accounted bytes released."""
        tier = self.hierarchy.find(key)
        if tier is None:
            raise TierError(f"key {key!r} not present in any tier")
        return tier.evict(key)
