"""Transparent interception facade (paper §IV-B).

The paper intercepts POSIX/HDF5 calls via ``LD_PRELOAD`` and routes them to
the native ``Compress``/``Decompress`` API; the Pythonic equivalent is a
file-like object whose ``write``/``read`` calls become HCompress tasks, and
a session context manager standing in for the ``MPI_Init``/``MPI_Finalize``
hooks (component initialisation and seed write-back).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from ..analyzer import MetadataHints
from ..errors import HCompressError
from .hcompress import HCompress

__all__ = ["HCompressFile", "hcompress_session"]


class HCompressFile:
    """File-like facade over an :class:`HCompress` engine.

    Every ``write()`` becomes one compress-and-place task; ``read()``
    returns writes back in order. Mode ``"w"`` truncates (re-registering a
    name evicts its previous tasks), ``"a"`` appends, ``"r"`` reads an
    existing manifest.
    """

    def __init__(self, engine: HCompress, name: str, mode: str = "w") -> None:
        if mode not in ("w", "a", "r"):
            raise HCompressError(f"mode must be one of w/a/r, got {mode!r}")
        self.engine = engine
        self.name = name
        self.mode = mode
        self._closed = False
        self._read_cursor = 0
        manifests = engine.file_manifests
        if mode == "r":
            if name not in manifests:
                raise HCompressError(f"no HCompress file named {name!r}")
            self._tasks = manifests[name]
        elif mode == "a":
            self._tasks = manifests.setdefault(name, [])
        else:  # w: truncate
            for task_id in manifests.get(name, []):
                if task_id in self.engine.manager:
                    self.engine.manager.evict_task(task_id)
            self._tasks = manifests[name] = []

    # -- write side ------------------------------------------------------------

    def write(
        self,
        data: bytes,
        hints: MetadataHints | None = None,
        modeled_size: int | None = None,
    ) -> int:
        """Compress-and-place one buffer; returns the modeled bytes accepted."""
        self._check("w", "a")
        task_id = f"{self.name}#{len(self._tasks)}"
        result = self.engine.compress(
            data, hints=hints, modeled_size=modeled_size, task_id=task_id
        )
        self._tasks.append(task_id)
        return result.task.size

    # -- read side -----------------------------------------------------------

    def read(self) -> bytes | None:
        """Next buffer in write order, or None at end-of-file."""
        self._check("r")
        if self._read_cursor >= len(self._tasks):
            return None
        result = self.engine.decompress(self._tasks[self._read_cursor])
        self._read_cursor += 1
        return result.data

    def read_all(self) -> list[bytes | None]:
        """Every remaining buffer."""
        out = []
        while True:
            chunk = self.read()
            if chunk is None:
                return out
            out.append(chunk)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            chunk = self.read()
            if chunk is None:
                return
            yield chunk

    # -- lifecycle ---------------------------------------------------------------

    @property
    def task_ids(self) -> list[str]:
        return list(self._tasks)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "HCompressFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check(self, *modes: str) -> None:
        if self._closed:
            raise HCompressError(f"file {self.name!r} is closed")
        if self.mode not in modes:
            raise HCompressError(
                f"operation needs mode in {modes}, file is {self.mode!r}"
            )


@contextlib.contextmanager
def hcompress_session(engine: HCompress, seed_path=None):
    """MPI_Init/MPI_Finalize analogue: yields the engine, finalizes on exit
    (flushing feedback and persisting the evolved seed)."""
    try:
        yield engine
    finally:
        engine.finalize(seed_path=seed_path)
