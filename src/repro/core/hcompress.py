"""The HCompress engine (paper §IV): the library's main entry point.

Wires together every component the design figure shows — Input Analyzer,
Compression Cost Predictor, System Monitor, HCDP engine, Compression
Manager, Storage Hardware Interface — behind the paper's two-call API:
``compress(task)`` and ``decompress(task)``.

Timing accounting follows the reproduction's split (DESIGN.md §6):
compression and I/O durations are modeled (nominal codec profiles + tier
specs); engine-internal overheads (HCDP planning, library selection,
feedback) are measured wall-clock and divided by the configured
Python-to-native calibration factor so the Fig. 3 anatomy is comparable to
the paper's C implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from ..analyzer import InputAnalyzer, MetadataHints
from ..ccp import (
    CompressionCostPredictor,
    FeatureEncoder,
    FeedbackLoop,
    SeedData,
    load_seed,
    save_seed,
)
from ..codecs.pool import CompressionLibraryPool
from ..errors import (
    CapacityError,
    DeadlineExceededError,
    HCompressError,
    RecoveryError,
    RetryExhaustedError,
    TierError,
    TierUnavailableError,
)
from ..hcdp import HcdpEngine, IOTask, Operation, Priority, next_task_id
from ..lifecycle import LifecycleDaemon
from ..monitor import SystemMonitor
from ..obs import Observability
from ..qos import Deadline, QosClass, QosGovernor
from ..recovery import (
    JOURNAL_NAME,
    EngineSnapshot,
    Journal,
    read_snapshot,
    write_snapshot,
)
from ..scrub import Scrubber
from ..tiers import StorageHierarchy
from .config import HCompressConfig
from .manager import CompressionManager, ReadResult, WriteResult
from .profiler import HCompressProfiler
from .shi import StorageHardwareInterface

__all__ = ["HCompress", "Anatomy", "RecoveryReport"]


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`HCompress.restore` found and repaired.

    Attributes:
        snapshot_lsn: Journal LSN the snapshot covered.
        records_replayed: Journal records applied on top of the snapshot.
        journal_truncated: The journal had a torn/corrupted tail that was
            cut back to the last intact record.
        orphans_evicted: Tier extents no restored catalog entry references
            (pieces of unacknowledged writes) that were reclaimed.
        duplicates_evicted: Extents present on more than one tier (a crash
            between the flusher's copy and evict) — the copy ``find()``
            prefers is kept, the stale one reclaimed.
        missing_keys: Catalog-referenced keys found on *no* tier. Always 0
            under the WAL discipline (commit records are durable only
            after every piece is placed); nonzero means external tier loss.
        tier_drift: Tiers whose live used-bytes differ from the
            checkpoint's ledger view (expected: post-checkpoint writes).
    """

    snapshot_lsn: int
    records_replayed: int
    journal_truncated: bool
    orphans_evicted: int
    duplicates_evicted: int
    missing_keys: int
    tier_drift: dict[str, int] = field(default_factory=dict)


@dataclass
class Anatomy:
    """Cumulative per-stage time accounting (the Fig. 3 subject).

    Write-path categories: hcdp_engine, library_selection, compression,
    feedback, write_io. Read-path categories: metadata_parsing,
    library_selection (shared), decompression, read_feedback, read_io.
    """

    hcdp_engine: float = 0.0
    library_selection: float = 0.0
    compression: float = 0.0
    feedback: float = 0.0
    write_io: float = 0.0
    metadata_parsing: float = 0.0
    decompression: float = 0.0
    read_feedback: float = 0.0
    read_io: float = 0.0
    write_ops: int = 0
    read_ops: int = 0

    def write_breakdown(self) -> dict[str, float]:
        """Write-op fractions (sums to 1.0 when any write happened)."""
        parts = {
            "hcdp_engine": self.hcdp_engine,
            "library_selection": self.library_selection,
            "compression": self.compression,
            "feedback": self.feedback,
            "write": self.write_io,
        }
        total = sum(parts.values())
        return {k: (v / total if total else 0.0) for k, v in parts.items()}

    def read_breakdown(self) -> dict[str, float]:
        parts = {
            "metadata_parsing": self.metadata_parsing,
            "library_selection": 0.0,  # folded into metadata on reads
            "decompression": self.decompression,
            "feedback": self.read_feedback,
            "read": self.read_io,
        }
        total = sum(parts.values())
        return {k: (v / total if total else 0.0) for k, v in parts.items()}


class HCompress:
    """Hierarchical data compression engine over a storage hierarchy.

    Args:
        hierarchy: The multi-tiered storage stack to manage.
        config: Runtime knobs; defaults are the paper's.
        seed: Profiler output to bootstrap the cost model. When omitted,
            the config's ``seed_path`` is loaded if set, else a quick
            profiling pass runs inline (the paper's HP-before-application
            step, collapsed for convenience).
        clock: Optional time source for the System Monitor (e.g. a
            simulation's ``lambda: sim.now``).
        crashpoints: Optional :class:`~repro.recovery.Crashpoints` arbiter
            threaded through the manager, SHI, and journal so the crash
            harness can kill the engine at instrumented sites.
        obs: Optional pre-built :class:`~repro.obs.Observability` to adopt
            instead of constructing one from the config — lets
            :meth:`restore` continue a crashed engine's registry/trace.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        config: HCompressConfig | None = None,
        seed: SeedData | None = None,
        clock=None,
        crashpoints=None,
        obs=None,
    ) -> None:
        self.config = config if config is not None else HCompressConfig()
        self.hierarchy = hierarchy
        self.crashpoints = crashpoints
        self._clock = clock
        # Observability is strictly opt-in: when disabled, no telemetry
        # object exists and instrumented paths pay one ``is None`` check.
        if obs is not None:
            self.obs = obs
        else:
            self.obs = (
                Observability(self.config.observability, modeled_clock=clock)
                if self.config.observability.enabled
                else None
            )
        self.pool = CompressionLibraryPool(self.config.libraries)
        self.analyzer = InputAnalyzer()
        self.monitor = SystemMonitor(
            hierarchy,
            clock=clock,
            interval=self.config.monitor_interval,
            capacity_bands=self.config.plan_cache.capacity_bands,
        )
        # The predictor's feature vocabulary is keyed off the pool roster,
        # so non-default rosters (e.g. EXTENDED_LIBRARIES with the
        # cache-line codecs) get interaction terms for every member. For
        # the default roster this encoder is identical to the default one.
        self.predictor = CompressionCostPredictor(
            FeatureEncoder(codecs=self.pool.names)
        )
        if seed is None:
            if self.config.seed_path is not None:
                seed = load_seed(self.config.seed_path)
            else:
                profiler = HCompressProfiler(
                    self.pool, rng=np.random.default_rng(0)
                )
                seed = profiler.quick_seed()
        self.seed = seed
        self.predictor.fit_seed(seed.observations)
        self.engine = HcdpEngine(
            self.predictor,
            self.monitor,
            self.pool,
            priority=self.config.priority,
            grain=self.config.grain,
            load_factor=self.config.load_factor,
            drain_penalty=self.config.drain_penalty,
            plan_cache=self.config.plan_cache,
            obs=self.obs,
        )
        # Write-ahead journal: opened (and torn-tail-repaired) before the
        # manager exists so no catalog mutation can precede it.
        recovery = self.config.recovery
        self.journal = (
            Journal(
                Path(recovery.directory) / JOURNAL_NAME,
                fsync_every=recovery.fsync_every,
                fsync=recovery.fsync,
                crashpoints=crashpoints,
            )
            if recovery.enabled
            else None
        )
        self.recovery_report: RecoveryReport | None = None
        # QoS governor: strictly opt-in, like observability. When disabled
        # no governor exists, the SHI carries ``qos=None``, and every
        # request path is byte-identical to a build without the subsystem.
        self.qos = (
            QosGovernor(
                self.config.qos, hierarchy, clock=clock, obs=self.obs
            )
            if self.config.qos.enabled
            else None
        )
        self.shi = StorageHardwareInterface(
            hierarchy, resilience=self.config.resilience, obs=self.obs,
            crashpoints=crashpoints, qos=self.qos,
        )
        self.manager = CompressionManager(
            self.pool, self.shi, executor=self.config.executor, obs=self.obs,
            journal=self.journal, crashpoints=crashpoints,
            content_digests=self.config.scrub.content_digests,
            verify_digests=self.config.scrub.verify_reads,
        )
        # Lifecycle daemon: strictly opt-in, same contract as QoS. When
        # disabled no daemon exists, the read/write paths pay one
        # ``is None`` check, and behavior is byte-identical to a build
        # without the subsystem. Stepping is cooperative — callers drive
        # ``self.lifecycle.step()`` on the simulated clock.
        self.lifecycle = (
            LifecycleDaemon(self, self.config.lifecycle)
            if self.config.lifecycle.enabled
            else None
        )
        # Background scrubber: same opt-in contract. Stepping is
        # cooperative — callers drive ``self.scrub.step()`` alongside the
        # lifecycle daemon's.
        self.scrub = (
            Scrubber(self, self.config.scrub)
            if self.config.scrub.enabled
            else None
        )
        # Degraded-mode replans: writes that failed against a stale system
        # view and were re-planned against a fresh monitor sample.
        self.replans = 0
        self.feedback = FeedbackLoop(
            self.predictor, every_n=self.config.feedback_every_n
        )
        self.anatomy = Anatomy()
        # Named-file manifests for the interception facade (repro.core.api).
        self.file_manifests: dict[str, list[str]] = {}
        self._finalized = False

    # -- paper API: compress / decompress -----------------------------------------

    def compress(
        self,
        data: bytes | None = None,
        *,
        task: IOTask | None = None,
        hints: MetadataHints | None = None,
        modeled_size: int | None = None,
        task_id: str | None = None,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> WriteResult:
        """Compress-and-place one write task.

        Either pass raw ``data`` (with optional analyzer ``hints`` and a
        ``modeled_size`` for representative-sample scaling) or a prebuilt
        :class:`IOTask`.

        ``deadline`` is an optional budget in modeled seconds: planning
        prunes tiers/codecs that cannot complete in time and execution
        checks the remaining budget before each piece, raising
        :class:`~repro.errors.DeadlineExceededError` (honoured with or
        without QoS enabled). ``qos_class`` is the task's service class
        for admission control; with QoS enabled, overloaded intake sheds
        low classes with :class:`~repro.errors.TaskShedError`. ``tenant``
        scopes the task to a tenant for QoS purposes: the tenant's
        configured service class applies when ``qos_class`` is not given,
        and per-tenant backlog quotas count the task against its tenant.
        """
        if self.obs is None:
            return self._compress(
                data, task=task, hints=hints, modeled_size=modeled_size,
                task_id=task_id, deadline=deadline, qos_class=qos_class,
                tenant=tenant,
            )
        with self.obs.region("hcompress.compress") as sp:
            result = self._compress(
                data, task=task, hints=hints, modeled_size=modeled_size,
                task_id=task_id, deadline=deadline, qos_class=qos_class,
                tenant=tenant,
            )
            sp.set_attr("task", result.task.task_id)
            sp.set_attr("size", result.task.size)
            sp.charge_modeled(result.compress_seconds + result.io_seconds)
            self.obs.record_write(result)
        return result

    def _compress(
        self,
        data: bytes | None = None,
        *,
        task: IOTask | None = None,
        hints: MetadataHints | None = None,
        modeled_size: int | None = None,
        task_id: str | None = None,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> WriteResult:
        self._check_open()
        scale = self.config.python_to_native
        if task is None:
            if data is None:
                raise HCompressError("compress() needs data or a task")
            if self.obs is not None:
                with self.obs.region("analyzer.analyze", nbytes=len(data)):
                    analysis = self.analyzer.analyze(data, hints)
            else:
                analysis = self.analyzer.analyze(data, hints)
            task = IOTask(
                task_id=task_id or next_task_id(),
                size=modeled_size if modeled_size is not None else len(data),
                analysis=analysis,
                operation=Operation.WRITE,
                data=data,
            )
        elif data is not None:
            raise HCompressError("pass either data or a task, not both")

        budget = deadline
        if self.qos is not None:
            # Admission + brownout happen before any planning work: a shed
            # task must cost nothing beyond the analyzer pass.
            self.qos.observe(self.monitor.status())
            self.qos.admit(task.task_id, task.size, qos_class, tenant=tenant)
            if budget is None:
                budget = self.config.qos.default_deadline
        dl = Deadline(budget, clock=self._clock) if budget is not None else None

        try:
            wall = time.perf_counter()
            schema = self.engine.plan(task, **self._plan_constraints(dl))
            self.anatomy.hcdp_engine += (time.perf_counter() - wall) / scale

            wall = time.perf_counter()
            for piece in schema.pieces:  # factory lookups (library selection)
                self.pool.codec(piece.codec)
            self.anatomy.library_selection += (
                time.perf_counter() - wall
            ) / scale

            try:
                result = self.manager.execute_write(schema, deadline=dl)
            except (
                TierUnavailableError, RetryExhaustedError, CapacityError,
                TierError,
            ):
                # Degraded-mode replan (§IV-E): the plan was built against a
                # stale SystemStatus — a tier flapped or filled between the
                # monitor's sample and the write landing. The partial write
                # was rolled back by the manager; take a fresh sample so the
                # HCDP engine sees the outage (and any breaker quarantine)
                # and plans around it, then re-execute.
                wall = time.perf_counter()
                self.monitor.sample()
                schema = self.engine.plan(task, **self._plan_constraints(dl))
                self.replans += 1
                self.anatomy.hcdp_engine += (
                    time.perf_counter() - wall
                ) / scale
                result = self.manager.execute_write(schema, deadline=dl)
        except DeadlineExceededError:
            if self.qos is not None:
                self.qos.record_deadline_exceeded("write")
            raise
        if dl is not None and self.obs is not None:
            self.obs.record_deadline_slack(
                "write",
                dl.remaining(result.compress_seconds + result.io_seconds),
            )
        result.schema = schema  # type: ignore[attr-defined]
        self.anatomy.compression += result.compress_seconds
        self.anatomy.write_io += result.io_seconds

        wall = time.perf_counter()
        if self.obs is not None:
            with self.obs.region(
                "ccp.feedback", events=len(result.observations)
            ):
                for observation in result.observations:
                    self.feedback.record(observation)
        else:
            for observation in result.observations:
                self.feedback.record(observation)
        self.anatomy.feedback += (time.perf_counter() - wall) / scale
        self.anatomy.write_ops += 1
        if self.lifecycle is not None:
            self.lifecycle.note_write(result.task.task_id)
        return result

    def compress_batch(
        self,
        items,
        *,
        deadline: float | None = None,
        qos_class: QosClass | None = None,
        tenant: str | None = None,
    ) -> list[WriteResult]:
        """Compress-and-place a batch of write tasks in submission order.

        Each item is raw ``bytes``, a prebuilt :class:`IOTask`, or a dict
        of :meth:`compress` keyword arguments (``data``, ``hints``,
        ``modeled_size``, ``task_id``, ``tenant``). Items are validated
        and task ids assigned up front, in item order. A dict item's
        ``tenant`` overrides the call-level one (it only matters with QoS
        active, or for routing in :class:`~repro.shard.ShardedHCompress`).

        Catalog-, schema-, and telemetry-identical to calling
        :meth:`compress` once per item: planning, execution, and feedback
        still interleave per task (a task's plan depends on the capacity
        its predecessors consumed and on model updates their feedback
        triggered) — the batch form makes each stage cheaper, via the
        engine's signature-keyed batch planner, one prefetched ECC table
        pass per batch, and the manager's bulk ledger debits. With
        observability, QoS, or a ``deadline`` active the batch degrades to
        the instrumented per-task path.
        """
        if self.obs is not None or self.qos is not None or deadline is not None:
            specs: list[dict] = []
            for item in items:
                if isinstance(item, IOTask):
                    specs.append({"task": item})
                elif isinstance(item, (bytes, bytearray, memoryview)):
                    specs.append({"data": bytes(item)})
                elif isinstance(item, dict):
                    specs.append(dict(item))
                else:
                    raise HCompressError(
                        "compress_batch items must be bytes, IOTask, or dicts "
                        f"of compress() kwargs, got {type(item).__name__}"
                    )
            return [
                # a dict item's own tenant wins over the call-level one
                self.compress(
                    **{"tenant": tenant, **spec},
                    deadline=deadline, qos_class=qos_class,
                )
                for spec in specs
            ]
        self._check_open()
        scale = self.config.python_to_native

        tasks: list[IOTask] = []
        # Fully-hinted analysis is pure and counter-free (the analyzer
        # short-circuits before its cache), so a burst reusing one buffer
        # and hint set shares a single InputAnalysis object — which also
        # lets the batch planner's per-analysis feature memo hit.
        analysis_memo: dict[tuple[int, int], tuple] = {}
        for item in items:
            if isinstance(item, dict):
                task = item.get("task")
                if task is None:
                    data = item.get("data")
                    if data is None:
                        raise HCompressError("compress() needs data or a task")
                    hints = item.get("hints")
                    if (
                        hints
                        and hints.dtype
                        and hints.data_format
                        and hints.distribution
                    ):
                        memo_key = (id(data), id(hints))
                        memo = analysis_memo.get(memo_key)
                        if (
                            memo is None
                            or memo[0] is not data
                            or memo[1] is not hints
                        ):
                            memo = (
                                data, hints, self.analyzer.analyze(data, hints)
                            )
                            analysis_memo[memo_key] = memo
                        analysis = memo[2]
                    else:
                        analysis = self.analyzer.analyze(data, hints)
                    modeled_size = item.get("modeled_size")
                    task = IOTask(
                        task_id=item.get("task_id") or next_task_id(),
                        size=(
                            modeled_size
                            if modeled_size is not None
                            else len(data)
                        ),
                        analysis=analysis,
                        operation=Operation.WRITE,
                        data=data,
                    )
                elif item.get("data") is not None:
                    raise HCompressError(
                        "pass either data or a task, not both"
                    )
            elif isinstance(item, IOTask):
                task = item
            elif isinstance(item, (bytes, bytearray, memoryview)):
                data = bytes(item)
                task = IOTask(
                    task_id=next_task_id(),
                    size=len(data),
                    analysis=self.analyzer.analyze(data, None),
                    operation=Operation.WRITE,
                    data=data,
                )
            else:
                raise HCompressError(
                    "compress_batch items must be bytes, IOTask, or dicts "
                    f"of compress() kwargs, got {type(item).__name__}"
                )
            tasks.append(task)

        planner = (
            self.engine.batch_planner()
            if self.engine.batch_fast_path_ok()
            else None
        )
        if planner is not None:
            self.engine.prefetch_candidates(tasks)
        ctx = self.manager.batch_context()
        results: list[WriteResult] = []
        anatomy = self.anatomy
        pool_codec = self.pool.codec
        engine_plan = self.engine.plan
        execute_batched = self.manager.execute_write_batched
        record = self.feedback.record
        perf = time.perf_counter
        # Run lane eligibility: the manager's bulk path must be open too
        # (its gate inputs — obs, QoS, crash-points — cannot change
        # mid-batch, so one check covers the whole loop).
        run_gate = planner is not None and self.manager._batch_fastpath_ok()
        index = 0
        total = len(tasks)
        while index < total:
            task = tasks[index]
            wall = perf()
            schema = (
                planner.plan(task) if planner is not None else engine_plan(task)
            )
            anatomy.hcdp_engine += (perf() - wall) / scale

            wall = perf()
            for piece in schema.pieces:  # factory lookups (library selection)
                pool_codec(piece.codec)
            anatomy.library_selection += (perf() - wall) / scale

            try:
                result = execute_batched(schema, ctx)
            except (
                TierUnavailableError, RetryExhaustedError, CapacityError,
                TierError,
            ):
                # Same degraded-mode replan as the per-task path: fresh
                # sample, fresh plan, sequential re-execute.
                if planner is not None:
                    planner.invalidate()
                wall = perf()
                self.monitor.sample()
                schema = engine_plan(task)
                self.replans += 1
                anatomy.hcdp_engine += (perf() - wall) / scale
                result = self.manager.execute_write(schema)
            if planner is not None:
                planner.note_result(result)
            result.schema = schema  # type: ignore[attr-defined]
            anatomy.compression += result.compress_seconds
            anatomy.write_io += result.io_seconds

            wall = perf()
            for observation in result.observations:
                record(observation)
            anatomy.feedback += (perf() - wall) / scale
            anatomy.write_ops += 1
            results.append(result)
            index += 1

            # -- run lane (DESIGN.md §12) --------------------------------
            # A burst repeats one (size, analysis, sample) shape for many
            # tasks. When the task just executed is a clean fast-path
            # template and the planner can prove the next k identical
            # tasks replan to the same plan (no band/clamp/pressure
            # crossing), the per-task plan/debit/receipt cycle collapses:
            # one bulk ledger debit per tier under a single rollback
            # frame, receipts and feedback per task. A feedback flush
            # inside the run stops it (the model changed), and the loop
            # resumes per-task exactly where the sequential path would
            # replan.
            if (
                not run_gate
                or index >= total
                or not planner._model_valid
                or task.materialised
                or getattr(schema, "_pieces_source", None) is None
            ):
                continue
            scan = index
            size = task.size
            analysis = task.analysis
            data = task.data
            while scan < total:
                peer = tasks[scan]
                if (
                    peer.size != size
                    or peer.analysis is not analysis
                    or peer.data is not data
                    or peer.operation is not Operation.WRITE
                ):
                    break
                scan += 1
            if scan == index:
                continue
            count = min(scan - index, planner.run_quota(task, result))
            obs_per_task = len(result.observations)
            if obs_per_task:
                # Stop the run strictly before a feedback flush could
                # fire: the flush-triggering task replans per-task, where
                # the model update lands between its plan and the next —
                # exactly the sequential interleaving.
                headroom = self.feedback.every_n - 1 - self.feedback.pending
                count = min(count, headroom // obs_per_task)
            if count <= 0:
                continue
            wall = perf()
            emit = planner.emit_schema
            run_schemas = [emit(t) for t in tasks[index:index + count]]
            anatomy.hcdp_engine += (perf() - wall) / scale
            wall = perf()
            for piece in schema.pieces:  # library selection, once per run
                pool_codec(piece.codec)
            anatomy.library_selection += (perf() - wall) / scale

            run_results = self.manager._execute_write_run(run_schemas, ctx)
            executed = len(run_results)
            if not executed:
                continue
            planner.commit_run(executed, size)
            # Every run result carries the template's modeled costs, so
            # the per-task property sums collapse to two constants (the
            # accumulation itself stays one addition per task — repeated
            # float addition, bit-identical to the sequential path's).
            comp_seconds = run_results[0].compress_seconds
            io_seconds = run_results[0].io_seconds
            comp_acc = anatomy.compression
            io_acc = anatomy.write_io
            for run_schema, run_result in zip(run_schemas, run_results):
                run_result.schema = run_schema
                comp_acc += comp_seconds
                io_acc += io_seconds
            anatomy.compression = comp_acc
            anatomy.write_io = io_acc
            wall = perf()
            if obs_per_task:
                # One bulk append: the run's results re-emit the
                # template's observation objects, and the headroom clamp
                # keeps the whole run below the flush cadence.
                self.feedback.record_run(
                    run_results[0].observations, executed
                )
            anatomy.feedback += (perf() - wall) / scale
            anatomy.write_ops += executed
            results.extend(run_results)
            index += executed
        if self.lifecycle is not None:
            for result in results:
                self.lifecycle.note_write(result.task.task_id)
        return results

    def _plan_constraints(self, dl: Deadline | None) -> dict:
        """QoS constraints for one :meth:`HcdpEngine.plan` call.

        Empty (the engine's fast path) when QoS is disabled and no
        deadline was passed.
        """
        kwargs: dict = {}
        if self.qos is not None:
            codec_filter = self.qos.codec_filter()
            if codec_filter is not None:
                kwargs["codec_filter"] = codec_filter
            blocked = self.qos.quarantined_tiers()
            if blocked:
                kwargs["blocked_tiers"] = blocked
        if dl is not None:
            kwargs["deadline_budget"] = dl.remaining()
        return kwargs

    def decompress(
        self,
        task_id: str,
        offset: int | None = None,
        length: int | None = None,
        deadline: float | None = None,
    ) -> ReadResult:
        """Read-and-decompress one previously written task.

        Passing ``offset``/``length`` performs a random-access partial
        read: only the sub-tasks overlapping the range are fetched and
        decompressed (each piece is independently decodable via its
        16-byte header). ``deadline`` bounds the read's modeled time like
        :meth:`compress`'s.
        """
        if self.obs is None:
            return self._decompress(task_id, offset, length, deadline)
        with self.obs.region("hcompress.decompress", task=task_id) as sp:
            result = self._decompress(task_id, offset, length, deadline)
            sp.set_attr("pieces", result.pieces)
            sp.charge_modeled(result.decompress_seconds + result.io_seconds)
            self.obs.record_read(result)
        return result

    def _decompress(
        self,
        task_id: str,
        offset: int | None = None,
        length: int | None = None,
        deadline: float | None = None,
    ) -> ReadResult:
        self._check_open()
        scale = self.config.python_to_native
        budget = deadline
        if budget is None and self.qos is not None:
            budget = self.config.qos.default_deadline
        dl = Deadline(budget, clock=self._clock) if budget is not None else None
        try:
            if offset is not None or length is not None:
                result = self.manager.execute_read_range(
                    task_id, offset or 0,
                    length if length is not None else 2**62, deadline=dl,
                )
            else:
                result = self.manager.execute_read(task_id, deadline=dl)
        except DeadlineExceededError:
            if self.qos is not None:
                self.qos.record_deadline_exceeded("read")
            raise
        self.anatomy.metadata_parsing += result.metadata_seconds / scale
        self.anatomy.decompression += result.decompress_seconds
        self.anatomy.read_io += result.io_seconds
        wall = time.perf_counter()
        self.feedback.flush()
        self.anatomy.read_feedback += (time.perf_counter() - wall) / scale
        self.anatomy.read_ops += 1
        if self.lifecycle is not None:
            self.lifecycle.note_read(task_id)
        return result

    def decompress_batch(
        self, task_ids, *, deadline: float | None = None
    ) -> list[ReadResult]:
        """Read-and-decompress a batch of written tasks in order.

        Result- and telemetry-identical to calling :meth:`decompress` per
        id (full reads only); each task's piece headers are parsed in one
        vectorized pass through the manager's batch read path. Degrades to
        the instrumented per-task path under observability, QoS, or a
        ``deadline``.
        """
        if self.obs is not None or self.qos is not None or deadline is not None:
            return [
                self.decompress(task_id, deadline=deadline)
                for task_id in task_ids
            ]
        self._check_open()
        scale = self.config.python_to_native
        results: list[ReadResult] = []
        for task_id in task_ids:
            result = self.manager.execute_read_batch([task_id])[0]
            self.anatomy.metadata_parsing += result.metadata_seconds / scale
            self.anatomy.decompression += result.decompress_seconds
            self.anatomy.read_io += result.io_seconds
            wall = time.perf_counter()
            self.feedback.flush()
            self.anatomy.read_feedback += (time.perf_counter() - wall) / scale
            self.anatomy.read_ops += 1
            if self.lifecycle is not None:
                self.lifecycle.note_read(task_id)
            results.append(result)
        return results

    # -- runtime control -----------------------------------------------------

    def set_priority(self, priority: Priority) -> None:
        """Swap the workload priority at runtime (paper §IV-F2)."""
        self.engine.set_priority(priority)

    def accuracy(self) -> float | None:
        """Live cost-model accuracy (mean sliding R^2 over the ECC heads)."""
        return self.predictor.mean_accuracy()

    def sync_telemetry(self) -> Observability:
        """Mirror every legacy ad-hoc counter into the metrics registry and
        return the engine's :class:`~repro.obs.Observability` object, ready
        to export (see docs/OBSERVABILITY.md).

        Raises :class:`HCompressError` when observability is disabled —
        enable it with
        ``HCompressConfig(observability=ObservabilityConfig(enabled=True))``.
        """
        if self.obs is None:
            raise HCompressError(
                "observability is disabled; construct the engine with "
                "HCompressConfig(observability=ObservabilityConfig("
                "enabled=True))"
            )
        self.obs.sync_engine(self)
        return self.obs

    def finalize(self, seed_path=None) -> SeedData:
        """Flush feedback, export the evolved model into the seed, and
        (optionally) write it back to JSON — the paper's MPI_Finalize hook.

        The engine refuses further operations afterwards.
        """
        self._check_open()
        self.feedback.flush()
        updated = SeedData(
            observations=self.seed.observations,
            system_signature=HCompressProfiler.system_signature(self.hierarchy),
            weights={
                "compression": self.engine.priority.compression,
                "ratio": self.engine.priority.ratio,
                "decompression": self.engine.priority.decompression,
            },
        )
        path = seed_path if seed_path is not None else self.config.seed_path
        if path is not None:
            save_seed(updated, path)
        self.close()
        return updated

    def close(self) -> None:
        """Release engine resources deterministically (idempotent).

        Shuts down the manager's piece thread pool (joining its workers,
        so repeated engine construction in one process never accumulates
        threads) and syncs + closes the write-ahead journal. The engine
        refuses further operations afterwards. Also the context-manager
        exit: ``with HCompress(...) as engine: ...``.
        """
        self.manager.shutdown()
        if self.journal is not None:
            self.journal.close()
        self._finalized = True

    def __enter__(self) -> "HCompress":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._finalized:
            raise HCompressError("engine already finalized")

    # -- crash recovery (docs/RECOVERY.md) -----------------------------------

    def checkpoint(self, directory: str | Path | None = None) -> Path:
        """Snapshot recoverable engine state; returns the snapshot path.

        Captures the placement catalog, CCP parameters/``model_version``,
        monitor epoch, resilience counters, file manifests, and the tier
        capacity ledger into an atomically-renamed ``snapshot.json``. With
        journaling enabled, pending records are synced first and the
        journal is compacted down to the suffix the snapshot does not
        cover, so restore replays only post-checkpoint mutations.
        """
        self._check_open()
        if directory is None:
            directory = self.config.recovery.directory
        if directory is None:
            raise RecoveryError(
                "checkpoint needs a directory: pass one or enable "
                "RecoveryConfig with a recovery directory"
            )
        if self.obs is None:
            return self._checkpoint(Path(directory))
        with self.obs.region("recovery.checkpoint") as sp:
            path = self._checkpoint(Path(directory))
            sp.set_attr("snapshot_bytes", path.stat().st_size)
            self.obs.record_checkpoint(path.stat().st_size)
        return path

    def _checkpoint(self, directory: Path) -> Path:
        if self.journal is not None:
            self.journal.sync()
            lsn = self.journal.durable_lsn
        else:
            lsn = 0
        stats = self.shi.stats
        snapshot = EngineSnapshot(
            journal_lsn=lsn,
            catalog=self.manager.catalog_snapshot(),
            file_manifests={
                name: list(tasks) for name, tasks in self.file_manifests.items()
            },
            ccp_theta=self.predictor.export_theta(),
            ccp_model_version=self.predictor.model_version,
            ccp_observations=self.predictor.observations_seen,
            monitor_epoch=self.monitor.state_epoch,
            monitor_samples=self.monitor.samples_taken,
            resilience={
                "retries": stats.retries,
                "failovers": stats.failovers,
                "backoff_seconds": stats.backoff_seconds,
                "exhausted": stats.exhausted,
            },
            tier_used={tier.spec.name: tier.used for tier in self.hierarchy},
            replans=self.replans,
            qos=self.qos.export_state() if self.qos is not None else {},
        )
        path = write_snapshot(
            directory, snapshot, fsync=self.config.recovery.fsync
        )
        if self.journal is not None:
            self.journal.compact(lsn)
        return path

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        hierarchy: StorageHierarchy,
        config: HCompressConfig | None = None,
        seed: SeedData | None = None,
        clock=None,
        crashpoints=None,
        obs=None,
    ) -> "HCompress":
        """Rebuild an engine from a recovery directory's snapshot + journal.

        The hierarchy models durable external services, so its contents
        survive the crash and are handed back in; what restore rebuilds is
        the process state — catalog (snapshot, then the journal suffix
        with ``lsn > snapshot.journal_lsn``, tolerating a torn tail), CCP
        parameters/version, monitor epoch, resilience counters — and then
        reconciles the tiers against the restored catalog: unreferenced
        extents (unacknowledged writes) are evicted so no capacity leaks,
        and duplicated extents (a crash between the flusher's copy and
        evict) are reduced to the copy ``find()`` prefers. The outcome is
        recorded in :attr:`recovery_report`.

        The restored engine journals into the same directory, so the
        crash/restore cycle composes.
        """
        directory = Path(directory)
        snapshot = read_snapshot(directory)
        base = config if config is not None else HCompressConfig()
        if (
            not base.recovery.enabled
            or base.recovery.directory is None
            or Path(base.recovery.directory) != directory
        ):
            base = replace(
                base,
                recovery=replace(
                    base.recovery, enabled=True, directory=directory
                ),
            )
        engine = cls(
            hierarchy, base, seed=seed, clock=clock, crashpoints=crashpoints,
            obs=obs,
        )
        if engine.obs is None:
            engine._apply_restore(snapshot)
            return engine
        with engine.obs.region("recovery.restore") as sp:
            engine._apply_restore(snapshot)
            report = engine.recovery_report
            sp.set_attr("records_replayed", report.records_replayed)
            sp.set_attr("orphans_evicted", report.orphans_evicted)
            engine.obs.record_restore(
                report.records_replayed,
                report.orphans_evicted,
                report.duplicates_evicted,
            )
        return engine

    def _apply_restore(self, snapshot: EngineSnapshot) -> None:
        self.manager.restore_catalog(snapshot.catalog)
        # A compacted-to-empty journal file carries no LSN high-water mark;
        # re-seed it from the snapshot so post-restore records never reuse
        # LSNs the snapshot already covers (the next restore would skip them).
        self.journal.ensure_lsn_floor(snapshot.journal_lsn)
        replay = self.journal.recovered
        suffix = [
            record
            for record in replay.records
            if record.lsn > snapshot.journal_lsn
        ]
        for record in suffix:
            self.manager.apply_journal_record(record)
        if snapshot.ccp_theta:
            self.predictor.restore_state(
                snapshot.ccp_theta,
                snapshot.ccp_model_version,
                snapshot.ccp_observations,
            )
        self.monitor.restore_state(
            snapshot.monitor_epoch, snapshot.monitor_samples
        )
        stats = self.shi.stats
        stats.retries = int(snapshot.resilience.get("retries", 0))
        stats.failovers = int(snapshot.resilience.get("failovers", 0))
        stats.backoff_seconds = snapshot.resilience.get("backoff_seconds", 0.0)
        stats.exhausted = int(snapshot.resilience.get("exhausted", 0))
        self.file_manifests = {
            name: list(tasks)
            for name, tasks in snapshot.file_manifests.items()
        }
        self.replans = snapshot.replans
        if self.qos is not None and snapshot.qos:
            # Conservative: a breaker checkpointed open (or mid-probe)
            # restores as open with a fresh quarantine window, so a
            # restart never resurrects a sick tier as healthy.
            self.qos.restore_state(snapshot.qos)
        orphans, duplicates, missing = self._reconcile_tiers()
        self.recovery_report = RecoveryReport(
            snapshot_lsn=snapshot.journal_lsn,
            records_replayed=len(suffix),
            journal_truncated=replay.truncated,
            orphans_evicted=orphans,
            duplicates_evicted=duplicates,
            missing_keys=missing,
            tier_drift={
                tier.spec.name: tier.used - snapshot.tier_used.get(
                    tier.spec.name, 0
                )
                for tier in self.hierarchy
                if tier.used != snapshot.tier_used.get(tier.spec.name, 0)
            },
        )
        # Re-baseline the monitor against the reconciled hierarchy so the
        # first plan sees post-recovery capacity (and the restored epoch).
        self.monitor.sample()

    def _reconcile_tiers(self) -> tuple[int, int, int]:
        """Sweep the tiers against the restored catalog.

        Returns ``(orphans evicted, duplicates evicted, missing keys)``.
        Walks top-down in ``find()`` order so the kept copy of a
        duplicated key is exactly the one reads resolve to. ``evict`` is
        ledger cleanup and works on down tiers too.
        """
        referenced = {
            entry[0]
            for entries in self.manager.catalog_snapshot().values()
            for entry in entries
        }
        claimed: set[str] = set()
        orphans = duplicates = 0
        for tier in self.hierarchy:
            for key in tier.keys():
                if key not in referenced:
                    tier.evict(key)
                    orphans += 1
                elif key in claimed:
                    tier.evict(key)
                    duplicates += 1
                else:
                    claimed.add(key)
        return orphans, duplicates, len(referenced - claimed)
