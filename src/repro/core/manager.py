"""The Compression Manager (paper §IV-G).

Executes HCDP schemas: for every sub-task it instantiates the planned
library through the pool's factory, compresses the piece's bytes, decorates
the payload with the 16-byte metadata header, and hands it to the Storage
Hardware Interface. On the read path it rediscovers the applied library
from the header alone and reassembles the original buffer.

Representative-sample scaling (DESIGN.md §2): when a task models more bytes
than it materialises, each piece compresses the corresponding slice of the
sample, the *measured* ratio is extrapolated to the modeled piece length
for capacity accounting, and nominal-profile codec times are charged for
the modeled length.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from ..ccp.seed import CostObservation
from ..ccp.features import ObservationKey
from ..codecs.base import get_codec
from ..codecs.metadata import (
    HEADER_SIZE,
    unpack_headers,
    unwrap_payload,
    wrap_payload,
)
from ..codecs.pool import CompressionLibraryPool
from ..errors import (
    CodecError,
    CorruptDataError,
    DeadlineExceededError,
    IntegrityError,
    SchemaError,
    TierError,
)
from ..hashing import content_hash64
from ..hcdp.schema import Schema, SubTaskPlan
from ..hcdp.task import IOTask
from ..units import MB
from .config import ExecutorConfig
from .shi import StorageHardwareInterface

__all__ = [
    "CompressionManager",
    "PieceResult",
    "WriteResult",
    "ReadResult",
    "CatalogEntry",
]


class CatalogEntry(NamedTuple):
    """One written piece as the manager remembers it.

    ``digest`` is the end-to-end content digest of the *uncompressed*
    piece bytes (:func:`repro.hashing.content_hash64`), recorded when
    content digests are enabled and ``None`` otherwise — including for
    accounting-only modeled pieces, which carry no payload to digest.
    Serializers emit the legacy 4-element form when the digest is absent,
    so catalogs and journals written with the feature off stay
    byte-identical to pre-digest builds, and both forms parse.
    """

    key: str
    length: int  # modeled uncompressed length
    codec: str
    crc32: int | None  # checksum of the stored blob (None: accounting-only)
    digest: int | None = None  # content digest of the uncompressed bytes


class _PreparedPiece(NamedTuple):
    """Side-effect-free codec output for one piece, ready to place."""

    blob: bytes | None
    measured_ratio: float
    accounted: int
    wall_seconds: float
    digest: int | None = None  # content digest (None: digests off / modeled)


class _ReusablePrep(NamedTuple):
    """Per-(plans, sample, features) write prep, reusable across a batch.

    ``plans`` pins the :class:`SubTaskPlan` objects referenced by the
    identity-based reuse key so their ids stay valid for the session.
    ``ratio_keys`` are the sample-ratio cache keys the sequential path
    would have looked up — replayed on reuse so LRU recency and
    hit counters stay byte-identical.
    """

    plans: tuple
    prepared: list["_PreparedPiece"]
    ratio_keys: tuple
    comp_seconds: tuple
    observations: tuple


class _BatchWriteContext:
    """Caches shared by every write of one batch session.

    Holds one sample digest per distinct sample *object* (a burst reuses
    the same representative buffer across every rank and timestep, so the
    per-piece blake2b collapses to one hash per batch), one reusable
    rollback frame so the fast write path never allocates a fresh undo
    list per task, the prepared-piece reuse table (bursts replan to the
    same shared plan tuple, so codec prep and receipts collapse to one
    computation per distinct plan/sample pair), and a modeled-I/O-time
    memo keyed on ``(tier level, accounted bytes, slowdown)``.
    """

    __slots__ = ("_digests", "rollback_frame", "prepared", "io_cache", "features")

    def __init__(self) -> None:
        self._digests: dict[int, tuple[bytes, bytes]] = {}
        self.rollback_frame: list[tuple[int, str]] = []
        self.prepared: dict[tuple, _ReusablePrep] = {}
        self.io_cache: dict[tuple, float] = {}
        self.features: dict[int, tuple] = {}

    def digest(self, sample: bytes) -> bytes:
        entry = self._digests.get(id(sample))
        if entry is None or entry[0] is not sample:
            entry = (sample, hashlib.blake2b(sample, digest_size=16).digest())
            self._digests[id(sample)] = entry
        return entry[1]


class PieceResult(NamedTuple):
    """Execution record for one sub-task."""

    plan: SubTaskPlan
    key: str
    tier: str
    stored_size: int  # accounted bytes on the tier (header included)
    actual_ratio: float
    compress_seconds: float  # nominal-profile time for the modeled length
    io_seconds: float  # uncontended modeled tier time
    wall_seconds: float  # real Python codec time (diagnostic only)
    spilled: bool = False  # runtime correction: plan's tier was full
    failover: bool = False  # SHI rerouted around an outage at execute time
    retries: int = 0  # transient-error retries charged to this piece


@dataclass(slots=True)
class WriteResult:
    """Execution record for one write task."""

    task: IOTask
    pieces: list[PieceResult] = field(default_factory=list)
    observations: list[CostObservation] = field(default_factory=list)
    # The schema this result executed, attached by the orchestrator after
    # execution. Not part of the result's value.
    schema: object | None = field(default=None, repr=False, compare=False)

    @property
    def total_stored(self) -> int:
        return sum(p.stored_size for p in self.pieces)

    @property
    def compress_seconds(self) -> float:
        return sum(p.compress_seconds for p in self.pieces)

    @property
    def io_seconds(self) -> float:
        return sum(p.io_seconds for p in self.pieces)

    @property
    def achieved_ratio(self) -> float:
        stored = self.total_stored
        return self.task.size / stored if stored else 1.0


@dataclass(slots=True)
class ReadResult:
    """Execution record for one read task."""

    task_id: str
    data: bytes | None
    modeled_size: int
    decompress_seconds: float
    io_seconds: float
    metadata_seconds: float
    pieces: int


class CompressionManager:
    """Schema executor + metadata catalog.

    The catalog maps task ids to their piece keys/codecs so reads can
    enumerate pieces; each piece's *codec* is still taken from its stored
    header (the paper's decentralised-decode property), the catalog only
    provides the key list.
    """

    def __init__(
        self,
        pool: CompressionLibraryPool,
        shi: StorageHardwareInterface,
        on_corrupt: Callable[[str, bytes], bytes | None] | None = None,
        executor: ExecutorConfig | None = None,
        obs=None,
        journal=None,
        crashpoints=None,
        content_digests: bool = False,
        verify_digests: bool = False,
    ) -> None:
        self.pool = pool
        self.shi = shi
        self.obs = obs
        # End-to-end integrity (repro.scrub): when ``content_digests`` is
        # on, every materialised piece's catalog entry records a digest of
        # its *uncompressed* bytes; ``verify_digests`` additionally checks
        # that digest on every decode (catching corruption the per-tier
        # CRC cannot, e.g. a stale-but-valid blob under the right key).
        self.content_digests = content_digests
        self.verify_digests = verify_digests
        # Write-ahead journal (repro.recovery): when present, a catalog
        # mutation is made durable *before* the in-memory catalog changes,
        # so an acknowledged write survives a process crash.
        self.journal = journal
        # Crash-point arbiter (repro.recovery.crashpoints): models abrupt
        # process death at instrumented sites for the crash harness.
        self.crashpoints = crashpoints
        self.executor_config = executor if executor is not None else ExecutorConfig()
        self._catalog: dict[str, list[CatalogEntry]] = {}
        # (codec, feature key, sample digest) -> measured ratio, LRU;
        # modeled tasks measure each codec once per distinct sample instead
        # of once per piece of a burst.
        self._sample_ratios: OrderedDict[tuple, float] = OrderedDict()
        # (id(sample), offset, length) -> (sample ref, content digest);
        # see _piece_digest.
        self._piece_digests: dict[tuple[int, int, int], tuple[bytes, int]] = {}
        self.sample_cache_hits = 0
        self.sample_cache_misses = 0
        self.spill_events = 0
        self.read_repairs = 0
        self.corruption_detected = 0
        # Read-repair escalation (docs/INTEGRITY.md): per-key count of
        # corrupt-read cycles that ended with no verified data. When a key
        # keeps failing, it is quarantined — further reads raise
        # IntegrityError fast instead of burning the retry budget forever.
        self._repair_failures: dict[str, int] = {}
        self.quarantined: set[str] = set()
        self.quarantine_events = 0
        # Pieces whose real codec work ran on the thread pool (diagnostic).
        self.parallel_pieces = 0
        self._pool_executor: ThreadPoolExecutor | None = None
        # Read-repair hook: called with (key, corrupt blob) after re-reads
        # are exhausted; may return a healthy replacement blob (e.g. from a
        # replica or erasure-coded reconstruction) or None to give up.
        self.on_corrupt = on_corrupt

    # -- piece concurrency ---------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool_executor is None:
            workers = self.executor_config.max_workers
            if workers is None:
                workers = min(8, os.cpu_count() or 1)
            self._pool_executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="hcompress-piece"
            )
        return self._pool_executor

    def shutdown(self) -> None:
        """Release the piece thread pool (idempotent)."""
        if self._pool_executor is not None:
            self._pool_executor.shutdown(wait=True)
            self._pool_executor = None

    def _pool_eligible(self, codec_name: str, nbytes: int) -> bool:
        """Whether one piece's codec work should go to the thread pool.

        Only stdlib-backed codecs release the GIL while crunching; our
        from-scratch pure-Python codecs would serialise on it anyway, and
        tiny pieces cost more to dispatch than to compress.
        """
        if not self.executor_config.enabled or codec_name == "none":
            return False
        if nbytes < self.executor_config.min_piece_bytes:
            return False
        return self.pool.codec(codec_name).meta.stdlib

    # -- write path ---------------------------------------------------------

    def execute_write(self, schema: Schema, deadline=None) -> WriteResult:
        """Run a schema; returns accounting plus feedback observations.

        Atomic with respect to the catalog: if any piece fails to place
        (outage with failover disabled, retry budget exhausted) — or the
        optional :class:`~repro.qos.Deadline` budget runs out mid-task —
        every piece already written is rolled back so the caller can
        replan and re-execute the task cleanly.
        """
        if self.obs is None:
            return self._execute_write(schema, deadline)
        with self.obs.region(
            "manager.execute_write",
            task=schema.task.task_id,
            pieces=len(schema.pieces),
        ) as sp:
            result = self._execute_write(schema, deadline)
            sp.set_attr("stored", result.total_stored)
            sp.charge_modeled(result.compress_seconds + result.io_seconds)
        return result

    def _execute_write(
        self, schema: Schema, deadline=None, _prepared=None
    ) -> WriteResult:
        task = schema.task
        if task.task_id in self._catalog:
            raise SchemaError(f"task {task.task_id!r} already written")
        result = WriteResult(task=task)
        entries: list[CatalogEntry] = []
        dtype, data_format, distribution = task.analysis.feature_key()
        feature_key = (dtype, data_format, distribution)

        # Batch drivers hand over pieces they already prepared (the codec
        # work is pure, so preparing ahead of execution changes nothing).
        prepared = (
            _prepared
            if _prepared is not None
            else self._prepare_pieces(schema, feature_key)
        )
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.prepared")
        consumed = 0.0  # modeled seconds this task has spent so far
        try:
            for index, (plan, prep) in enumerate(zip(schema.pieces, prepared)):
                key = self.shi.piece_key(task.task_id, index)
                if deadline is not None:
                    deadline.check(f"write {task.task_id!r}", consumed)
                if self.obs is not None:
                    self.obs.hooks.enter(
                        "manager.piece", key=key, codec=plan.codec,
                        length=plan.length,
                    )
                self.pool.codec(plan.codec)  # library selection (factory path)
                blob = prep.blob
                measured_ratio = prep.measured_ratio
                accounted = prep.accounted
                wall_seconds = prep.wall_seconds

                tier_name, spilled = self._resolve_tier(plan, accounted)
                receipt = self.shi.write(key, tier_name, blob, accounted)
                crc = (
                    zlib.crc32(blob)
                    if blob is not None and self.shi.resilience.verify_checksums
                    else None
                )
                entries.append(
                    CatalogEntry(key, plan.length, plan.codec, crc, prep.digest)
                )
                if self.crashpoints is not None:
                    self.crashpoints.reached("manager.write.piece_placed")

                profile = self.pool.profile(plan.codec)
                comp_seconds = (
                    plan.length / (profile.compress_mbps * MB)
                    if plan.codec != "none"
                    else 0.0
                )
                consumed += comp_seconds + receipt.seconds
                result.pieces.append(
                    PieceResult(
                        plan=plan,
                        key=key,
                        tier=receipt.tier,
                        stored_size=accounted,
                        actual_ratio=measured_ratio,
                        compress_seconds=comp_seconds,
                        io_seconds=receipt.seconds,
                        wall_seconds=wall_seconds,
                        spilled=spilled,
                        failover=receipt.failover,
                        retries=receipt.retries,
                    )
                )
                if self.obs is not None:
                    self.obs.hooks.exit(
                        "manager.piece", key=key, codec=plan.codec,
                        tier=receipt.tier, stored=accounted,
                        retries=receipt.retries, failover=receipt.failover,
                    )
                if plan.codec != "none":
                    result.observations.append(
                        CostObservation(
                            key=ObservationKey(
                                dtype, data_format, distribution, plan.codec,
                                plan.length,
                            ),
                            compress_mbps=profile.compress_mbps,
                            decompress_mbps=profile.decompress_mbps,
                            ratio=max(measured_ratio, 1e-3),
                        )
                    )
        except (TierError, DeadlineExceededError):
            for entry in entries:  # roll back the partial write
                tier = self.shi.locate(entry.key)
                if tier is not None:
                    tier.evict(entry.key)
            raise
        # WAL discipline: the commit record is durable before the catalog
        # mutates (and before the caller sees the ack). A crash between the
        # journal sync and the assignment below recovers the task as
        # committed — pieces are on the tiers and the record names them.
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.pre_journal")
        if self.journal is not None:
            self.journal.commit("commit", task.task_id, tuple(entries))
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.post_journal")
        self._catalog[task.task_id] = entries
        return result

    def _prepare_pieces(
        self, schema: Schema, feature_key: tuple[str, str, str]
    ) -> list["_PreparedPiece"]:
        """Run every piece's *codec* work up front, in schema order.

        Compression is pure (slice in, blob out), so materialised pieces
        whose codec releases the GIL run concurrently on the thread pool;
        everything with side effects — tier resolution, SHI writes, the
        catalog — stays serial in the caller, which keeps execution
        bit-identical with the pool on or off.
        """
        task = schema.task
        sample = task.data
        if task.materialised and sample is not None:
            pooled = [
                self._pool_eligible(plan.codec, plan.length)
                for plan in schema.pieces
            ]
            if sum(pooled) >= 2:
                executor = self._executor()
                futures = {
                    i: executor.submit(self._compress_piece, sample, plan)
                    for i, plan in enumerate(schema.pieces)
                    if pooled[i]
                }
                self.parallel_pieces += len(futures)
                return [
                    futures[i].result()
                    if pooled[i]
                    else self._compress_piece(sample, plan)
                    for i, plan in enumerate(schema.pieces)
                ]
            return [
                self._compress_piece(sample, plan) for plan in schema.pieces
            ]

        prepared = []
        for plan in schema.pieces:
            wall_start = time.perf_counter()
            measured_ratio = (
                self._sample_ratio(sample, plan.codec, feature_key)
                if sample
                else plan.expected_ratio
            )
            accounted = HEADER_SIZE + max(
                1, math.ceil(plan.length / max(measured_ratio, 1e-9))
            )
            prepared.append(
                _PreparedPiece(
                    blob=None,
                    measured_ratio=measured_ratio,
                    accounted=accounted,
                    wall_seconds=time.perf_counter() - wall_start,
                )
            )
        return prepared

    def _compress_piece(self, sample: bytes, plan: SubTaskPlan) -> _PreparedPiece:
        """Pure codec work for one materialised piece (pool-safe)."""
        wall_start = time.perf_counter()
        piece_bytes = sample[plan.offset : plan.offset + plan.length]
        blob, header = wrap_payload(
            piece_bytes,
            start_offset=plan.offset % (1 << 32),
            codec_name=plan.codec,
        )
        measured_ratio = (
            len(piece_bytes) / header.resulting_size
            if header.resulting_size
            else 1.0
        )
        return _PreparedPiece(
            blob=blob,
            measured_ratio=measured_ratio,
            accounted=len(blob),
            wall_seconds=time.perf_counter() - wall_start,
            digest=(
                self._piece_digest(sample, plan.offset, plan.length, piece_bytes)
                if self.content_digests
                else None
            ),
        )

    def _piece_digest(
        self, sample: bytes, offset: int, length: int, piece_bytes: bytes
    ) -> int:
        """Content digest of one piece, identity-cached per sample buffer.

        Bursts reuse one representative sample object across ranks and
        timesteps (the same idiom the sample-ratio LRU and the batch
        digest cache lean on), so the per-piece digest collapses to one
        hash per distinct ``(buffer, offset, length)``. ``bytes`` are
        immutable and the cached strong reference keeps the id from being
        recycled, so an identity hit can only mean identical content.
        Pool-safe: plain dict ops under the GIL, worst case a duplicate
        recomputation.
        """
        key = (id(sample), offset, length)
        hit = self._piece_digests.get(key)
        if hit is not None and hit[0] is sample:
            return hit[1]
        digest = content_hash64(piece_bytes)
        if len(self._piece_digests) > 512:
            self._piece_digests.clear()
        self._piece_digests[key] = (sample, digest)
        return digest

    def _sample_ratio(
        self,
        sample: bytes,
        codec_name: str,
        feature_key: tuple[str, str, str],
        _digest: bytes | None = None,
    ) -> float:
        """Measured ratio of ``codec_name`` on ``sample``, LRU-cached.

        Modeled tasks typically reuse one representative sample across many
        ranks and timesteps; measuring each codec once per distinct
        ``(codec, feature key, sample digest)`` keeps modeled runs
        O(codecs) in real compression work instead of O(pieces). Codec
        failures propagate — a roster member that cannot compress valid
        bytes is a bug, not a condition to paper over. Batch sessions pass
        the digest they already computed for this sample object.
        """
        if codec_name == "none":
            return 1.0
        digest = (
            _digest
            if _digest is not None
            else hashlib.blake2b(sample, digest_size=16).digest()
        )
        cache_key = (codec_name, feature_key, digest)
        cached = self._sample_ratios.get(cache_key)
        if cached is not None:
            self._sample_ratios.move_to_end(cache_key)
            self.sample_cache_hits += 1
            return cached
        self.sample_cache_misses += 1
        payload = self.pool.codec(codec_name).compress(sample)
        ratio = len(sample) / max(len(payload), 1)
        self._sample_ratios[cache_key] = ratio
        while len(self._sample_ratios) > self.executor_config.sample_cache_size:
            self._sample_ratios.popitem(last=False)
        return ratio

    def _resolve_tier(self, plan: SubTaskPlan, accounted: int) -> tuple[str, bool]:
        """Honour the plan's tier, spilling downward when the measured
        footprint no longer fits (the predicted ratio was optimistic).

        Spill corrects *capacity* staleness only. An unavailable tier is
        passed through untouched: outages are the SHI's jurisdiction, whose
        write path fails over (recording the reroute) or surfaces
        :class:`TierUnavailableError` when failover is disabled."""
        hierarchy = self.shi.hierarchy
        level = plan.tier_level
        if not hierarchy[level].available:
            return plan.tier, False
        if hierarchy[level].fits(accounted):
            return plan.tier, False
        for lower in range(level + 1, len(hierarchy)):
            if hierarchy[lower].fits(accounted):
                self.spill_events += 1
                return hierarchy[lower].spec.name, True
        raise TierError(
            f"piece of {accounted} bytes fits no tier at or below "
            f"{plan.tier!r}"
        )

    # -- batched write path (DESIGN.md §12) -----------------------------------

    def batch_context(self) -> "_BatchWriteContext":
        """A fresh batch write session (shared digest cache + undo frame)."""
        return _BatchWriteContext()

    def _batch_fastpath_ok(self, deadline=None) -> bool:
        """Whether the uninstrumented bulk write path may run.

        Observability regions, QoS breaker consultation, crash-point
        sites, and deadline checks all fire *inside* the per-piece loop;
        any of them present forces the per-task path so their side effects
        happen at exactly the sequential sites.
        """
        shi = self.shi
        return (
            self.obs is None
            and deadline is None
            and self.crashpoints is None
            and shi.obs is None
            and shi.qos is None
            and shi.crashpoints is None
        )

    def execute_write_batch(self, schemas: list[Schema], deadline=None) -> list[WriteResult]:
        """Execute a batch of write schemas in order.

        Catalog-, ledger-, and telemetry-identical to calling
        :meth:`execute_write` per schema. The batch form shares one sample
        digest per distinct buffer, groups each task's capacity-ledger
        debits into one :meth:`~repro.tiers.Tier.put_many` per tier, and
        runs the piece thread pool's eligibility/ordering pass once for
        the whole batch instead of once per task (only the
        ``parallel_pieces`` diagnostic can differ). Falls back to the
        per-task path whenever observability, QoS, crash-points, or a
        deadline require the instrumented route.
        """
        if not self._batch_fastpath_ok(deadline):
            return [self.execute_write(schema, deadline) for schema in schemas]
        prepared = self._prepare_pieces_batch(schemas)
        ctx = self.batch_context()
        results = []
        for index, schema in enumerate(schemas):
            if index in prepared:
                results.append(
                    self._execute_write(schema, _prepared=prepared[index])
                )
            else:
                results.append(self._execute_write_fast(schema, ctx))
        return results

    def execute_write_batched(
        self, schema: Schema, ctx: "_BatchWriteContext", deadline=None
    ) -> WriteResult:
        """One write inside a batch session (see :meth:`batch_context`).

        The incremental form of :meth:`execute_write_batch` for drivers
        that must interleave planning with execution (a task's plan
        depends on the capacity its predecessors consumed).
        """
        if not self._batch_fastpath_ok(deadline):
            return self.execute_write(schema, deadline)
        task = schema.task
        if task.materialised and task.data is not None:
            return self._execute_write(schema)
        return self._execute_write_fast(schema, ctx)

    def _prepare_pieces_batch(
        self, schemas: list[Schema]
    ) -> dict[int, list["_PreparedPiece"]]:
        """Pre-run the pure codec work for a batch's materialised tasks.

        One eligibility/ordering pass over every ``(task, piece)`` in the
        batch and at most one pooled submission set, where the per-task
        path re-sorts and re-submits per call. Results are consumed in
        ``(task, piece)`` order, so outputs and first-error surfacing
        match the per-task path; only the ``parallel_pieces`` diagnostic
        can differ (pool eligibility is judged batch-wide).
        """
        out: dict[int, list[_PreparedPiece]] = {}
        tagged: list[tuple[int, int, SubTaskPlan, bytes, bool]] = []
        for index, schema in enumerate(schemas):
            task = schema.task
            if not (task.materialised and task.data is not None):
                continue
            out[index] = [None] * len(schema.pieces)  # type: ignore[list-item]
            for j, plan in enumerate(schema.pieces):
                tagged.append(
                    (
                        index,
                        j,
                        plan,
                        task.data,
                        self._pool_eligible(plan.codec, plan.length),
                    )
                )
        if not tagged:
            return out
        futures: dict[tuple[int, int], Future] = {}
        if sum(1 for item in tagged if item[4]) >= 2:
            executor = self._executor()
            futures = {
                (i, j): executor.submit(self._compress_piece, sample, plan)
                for i, j, plan, sample, pooled in tagged
                if pooled
            }
            self.parallel_pieces += len(futures)
        for i, j, plan, sample, _pooled in tagged:
            future = futures.get((i, j))
            out[i][j] = (
                future.result()
                if future is not None
                else self._compress_piece(sample, plan)
            )
        return out

    def _execute_write_fast(
        self, schema: Schema, ctx: "_BatchWriteContext"
    ) -> WriteResult:
        """Bulk write path for one modeled task inside a batch session.

        Replays the exact decision sequence of :meth:`_execute_write` —
        ratio lookups, spill resolution, receipts — but resolves every
        piece against a pending-delta view of the ledger first and then
        lands each tier's pieces with one :meth:`~repro.tiers.Tier.put_many`
        debit. Modeled pieces carry no payload, so placement can never hit
        device fault injection; anything the dry run cannot guarantee —
        planned tier down (the SHI's failover jurisdiction) or a piece
        fitting no tier (the sequential path's partial-write rollback) —
        delegates to :meth:`_execute_write` with the already-prepared
        pieces, reproducing sequential behaviour including its partial
        spill counts and typed errors.
        """
        task = schema.task
        task_id = task.task_id
        if task_id in self._catalog:
            raise SchemaError(f"task {task_id!r} already written")
        analysis = task.analysis
        feature_entry = ctx.features.get(id(analysis))
        if feature_entry is None or feature_entry[0] is not analysis:
            feature_entry = (analysis, analysis.feature_key())
            ctx.features[id(analysis)] = feature_entry
        feature_key = feature_entry[1]
        dtype, data_format, distribution = feature_key
        sample = task.data
        pieces = schema.pieces
        digest = ctx.digest(sample) if sample else None

        # Bursts replan to the *same* SubTaskPlan objects (the planner's
        # caches hand out shared tuples — ``_pieces_source`` carries the
        # cached tuple itself when the batch planner produced the
        # schema), so the pure prep — ratio lookups, accounted sizes,
        # nominal costs, observation records — collapses to one
        # computation per distinct (plans, sample, features). Reuse
        # replays exactly the sample-ratio cache traffic the sequential
        # path would generate (one hit + recency touch per coded piece);
        # if any key has been evicted since, fall through and recompute
        # so the miss is charged at the sequential site.
        ratios = self._sample_ratios
        source = getattr(schema, "_pieces_source", None)
        if source is not None:
            reuse_key = (id(source), digest, feature_key)
        else:
            reuse_key = (tuple(map(id, pieces)), digest, feature_key)
        entry = ctx.prepared.get(reuse_key)
        if (
            entry is not None
            and (source is None or entry.plans is source)
            and all(k in ratios for k in entry.ratio_keys)
        ):
            prepared = entry.prepared
            for cache_key in entry.ratio_keys:
                ratios.move_to_end(cache_key)
            self.sample_cache_hits += len(entry.ratio_keys)
        else:
            prepared = []
            ratio_keys = []
            comp_seconds: list[float] = []
            observations: list[CostObservation | None] = []
            for plan in pieces:
                wall_start = time.perf_counter()
                codec_name = plan.codec
                self.pool.codec(codec_name)  # library selection (factory path)
                if sample:
                    measured_ratio = self._sample_ratio(
                        sample, codec_name, feature_key, _digest=digest
                    )
                    if codec_name != "none":
                        ratio_keys.append((codec_name, feature_key, digest))
                else:
                    measured_ratio = plan.expected_ratio
                accounted = HEADER_SIZE + max(
                    1, math.ceil(plan.length / max(measured_ratio, 1e-9))
                )
                if codec_name != "none":
                    profile = self.pool.profile(codec_name)
                    comp_seconds.append(plan.length / (profile.compress_mbps * MB))
                    observations.append(
                        CostObservation(
                            key=ObservationKey(
                                dtype, data_format, distribution, codec_name,
                                plan.length,
                            ),
                            compress_mbps=profile.compress_mbps,
                            decompress_mbps=profile.decompress_mbps,
                            ratio=max(measured_ratio, 1e-3),
                        )
                    )
                else:
                    comp_seconds.append(0.0)
                    observations.append(None)
                prepared.append(
                    _PreparedPiece(
                        blob=None,
                        measured_ratio=measured_ratio,
                        accounted=accounted,
                        wall_seconds=time.perf_counter() - wall_start,
                    )
                )
            entry = _ReusablePrep(
                plans=source if source is not None else tuple(pieces),
                prepared=prepared,
                ratio_keys=tuple(ratio_keys),
                comp_seconds=tuple(comp_seconds),
                observations=tuple(observations),
            )
            ctx.prepared[reuse_key] = entry

        hierarchy = self.shi.hierarchy
        pending: dict[int, int] = {}
        placements: list[tuple[int, bool]] = []
        for plan, prep in zip(pieces, prepared):
            level = plan.tier_level
            tier = hierarchy[level]
            if not tier._available:
                # Outages are the SHI's jurisdiction (failover, typed
                # errors): replay this task on the sequential path.
                return self._execute_write(schema, _prepared=prepared)
            remaining = tier.remaining
            if (
                remaining is None
                or prep.accounted + pending.get(level, 0) <= remaining
            ):
                pending[level] = pending.get(level, 0) + prep.accounted
                placements.append((level, False))
                continue
            for lower in range(level + 1, len(hierarchy)):
                tier = hierarchy[lower]
                if not tier._available:
                    continue
                remaining = tier.remaining
                if (
                    remaining is None
                    or prep.accounted + pending.get(lower, 0) <= remaining
                ):
                    pending[lower] = pending.get(lower, 0) + prep.accounted
                    placements.append((lower, True))
                    break
            else:
                # Fits nowhere: sequential placed earlier pieces, counted
                # their spills, rolled back and raised — replay it exactly.
                return self._execute_write(schema, _prepared=prepared)

        piece_key = self.shi.piece_key
        keys = [piece_key(task_id, index) for index in range(len(pieces))]
        by_tier: dict[int, list[tuple[str, bytes | None, int | None]]] = {}
        for key, prep, (level, spilled) in zip(keys, prepared, placements):
            if spilled:
                self.spill_events += 1
            by_tier.setdefault(level, []).append((key, None, prep.accounted))

        placed = ctx.rollback_frame
        placed.clear()
        try:
            for level, items in by_tier.items():
                hierarchy[level].put_many(items)
                placed.extend((level, item[0]) for item in items)
        except TierError:  # pragma: no cover - dry run precludes this
            for level, key in placed:
                hierarchy[level].evict(key)
            raise

        result = WriteResult(task=task)
        result_pieces = result.pieces
        result_observations = result.observations
        entries: list[CatalogEntry] = []
        io_cache = ctx.io_cache
        for plan, prep, key, (level, spilled), comp, obs in zip(
            pieces, prepared, keys, placements,
            entry.comp_seconds, entry.observations,
        ):
            tier = hierarchy[level]
            entries.append(CatalogEntry(key, plan.length, plan.codec, None))
            io_key = (level, prep.accounted, tier._slowdown)
            io = io_cache.get(io_key)
            if io is None:
                io = tier.io_seconds(prep.accounted)
                io_cache[io_key] = io
            result_pieces.append(
                PieceResult(
                    plan=plan,
                    key=key,
                    tier=tier.spec.name,
                    stored_size=prep.accounted,
                    actual_ratio=prep.measured_ratio,
                    compress_seconds=comp,
                    io_seconds=io,
                    wall_seconds=prep.wall_seconds,
                    spilled=spilled,
                    failover=False,
                    retries=0,
                )
            )
            if obs is not None:
                result_observations.append(obs)
        if self.journal is not None:
            self.journal.commit("commit", task_id, tuple(entries))
        self._catalog[task_id] = entries
        return result

    def _execute_write_run(
        self, schemas: list[Schema], ctx: "_BatchWriteContext"
    ) -> list[WriteResult]:
        """Write a run of identical modeled tasks with one bulk ledger debit.

        The caller (the batch driver's run lane) guarantees every schema
        shares the template's ``_pieces_source`` plan tuple, task size,
        analysis, and sample, and that the planner's quota proved every
        piece fits its planned tier for the whole run — so placement needs
        no per-task dry run and each tier's debit lands as a single
        :meth:`~repro.tiers.Tier.put_many` under one rollback frame.
        Receipts, journal commits, and catalog assignments still happen
        per task in order. Feedback is the caller's: the run length is
        pre-clamped so no model update can fall inside it, and the
        observations replay after the run in task order — the same
        pending buffer a per-task loop would leave. Returns the executed
        results (empty when the template's prep is not reusable, which
        sends the caller back to the per-task path; short when a task id
        repeats, so the per-task path surfaces the duplicate exactly).
        """
        first = schemas[0]
        source = first._pieces_source
        task0 = first.task
        analysis = task0.analysis
        feature_entry = ctx.features.get(id(analysis))
        if feature_entry is None or feature_entry[0] is not analysis:
            feature_entry = (analysis, analysis.feature_key())
            ctx.features[id(analysis)] = feature_entry
        feature_key = feature_entry[1]
        sample = task0.data
        digest = ctx.digest(sample) if sample else None
        entry = ctx.prepared.get((id(source), digest, feature_key))
        ratios = self._sample_ratios
        if (
            entry is None
            or entry.plans is not source
            or any(k not in ratios for k in entry.ratio_keys)
        ):
            return []
        prepared = entry.prepared
        catalog = self._catalog
        tids = [schema.task.task_id for schema in schemas]
        fresh = set(tids)
        if len(fresh) != len(tids) or not catalog.keys().isdisjoint(fresh):
            # Rare: re-scan to stop right before the first duplicate so
            # the per-task path surfaces it exactly.
            count = 0
            seen_new: set[str] = set()
            for tid in tids:
                if tid in catalog or tid in seen_new:
                    break
                seen_new.add(tid)
                count += 1
            if count == 0:
                return []
            schemas = schemas[:count]
            tids = tids[:count]
        else:
            count = len(schemas)

        hierarchy = self.shi.hierarchy
        piece_key = self.shi.piece_key
        plen = len(source)
        by_tier: dict[int, list[tuple[str, None, int]]] = {}
        if plen == 1:
            # The common burst shape: one piece per task, one tier.
            accounted0 = prepared[0].accounted
            keys_flat = [tid + "/0" for tid in tids]  # == piece_key(tid, 0)
            keys_all = None
            by_tier[source[0].tier_level] = [
                (key, None, accounted0) for key in keys_flat
            ]
        else:
            keys_all = []
            for tid in tids:
                keys = [piece_key(tid, index) for index in range(plen)]
                keys_all.append(keys)
                for key, plan, prep in zip(keys, source, prepared):
                    by_tier.setdefault(plan.tier_level, []).append(
                        (key, None, prep.accounted)
                    )
        placed = ctx.rollback_frame
        placed.clear()
        try:
            for level, items in by_tier.items():
                hierarchy[level].put_many(items)
                placed.extend((level, item[0]) for item in items)
        except TierError:  # pragma: no cover - the quota precludes this
            for level, key in placed:
                hierarchy[level].evict(key)
            raise

        io_cache = ctx.io_cache
        journal = self.journal
        # Every task of the run shares the template's pieces, so the
        # receipt fields that don't carry the key are constants: resolve
        # tiers, modeled I/O, and catalog columns once per piece.
        piece_consts = []
        for plan, prep, comp, obs in zip(
            source, prepared, entry.comp_seconds, entry.observations
        ):
            level = plan.tier_level
            tier = hierarchy[level]
            io_key = (level, prep.accounted, tier._slowdown)
            io = io_cache.get(io_key)
            if io is None:
                io = tier.io_seconds(prep.accounted)
                io_cache[io_key] = io
            piece_consts.append(
                (
                    plan, plan.length, plan.codec, tier.spec.name,
                    prep.accounted, prep.measured_ratio, prep.wall_seconds,
                    comp, io, obs,
                )
            )
        if plen == 1 and journal is None:
            (
                plan, length, codec, tier_name, accounted, ratio, wall,
                comp, io, obs,
            ) = piece_consts[0]
            obs_list = [obs] if obs is not None else []
            results = [
                WriteResult(
                    schema.task,
                    [
                        PieceResult(
                            plan, key, tier_name, accounted, ratio, comp,
                            io, wall,
                        )
                    ],
                    obs_list.copy(),
                )
                for schema, key in zip(schemas, keys_flat)
            ]
            for tid, key in zip(tids, keys_flat):
                catalog[tid] = [CatalogEntry(key, length, codec, None)]
            ratio_keys = entry.ratio_keys
            if ratio_keys:
                for cache_key in ratio_keys:
                    ratios.move_to_end(cache_key)
                self.sample_cache_hits += count * len(ratio_keys)
            return results
        if keys_all is None:  # plen == 1 with a journal attached
            keys_all = [[key] for key in keys_flat]
        results: list[WriteResult] = []
        for schema, keys in zip(schemas, keys_all):
            task = schema.task
            entries: list[CatalogEntry] = []
            result = WriteResult(task=task)
            result_pieces = result.pieces
            result_observations = result.observations
            for key, (
                plan, length, codec, tier_name, accounted, ratio, wall,
                comp, io, obs,
            ) in zip(keys, piece_consts):
                entries.append(CatalogEntry(key, length, codec, None))
                result_pieces.append(
                    PieceResult(
                        plan, key, tier_name, accounted, ratio, comp, io,
                        wall,
                    )
                )
                if obs is not None:
                    result_observations.append(obs)
            if journal is not None:
                journal.commit("commit", task.task_id, tuple(entries))
            catalog[task.task_id] = entries
            results.append(result)
        ratio_keys = entry.ratio_keys
        if ratio_keys:
            # The sequential traffic: one recency touch per coded piece
            # per task, one counted hit each.
            for cache_key in ratio_keys:
                ratios.move_to_end(cache_key)
            self.sample_cache_hits += count * len(ratio_keys)
        return results

    # -- read path ------------------------------------------------------------

    def task_keys(self, task_id: str) -> list[str]:
        try:
            return [entry.key for entry in self._catalog[task_id]]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None

    def task_pieces(self, task_id: str) -> list[tuple[str, int]]:
        """(key, modeled length) pairs for a written task."""
        try:
            return [
                (entry.key, entry.length) for entry in self._catalog[task_id]
            ]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._catalog

    def task_ids(self) -> list[str]:
        """Cataloged task ids in insertion (write) order."""
        return list(self._catalog)

    def task_entries(self, task_id: str) -> list[CatalogEntry]:
        """The task's catalog entries (key, length, codec, crc32, digest)."""
        try:
            return list(self._catalog[task_id])
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None

    def replace_task_entries(
        self, task_id: str, entries,
        crash_site: str = "lifecycle.post_journal",
    ) -> None:
        """Re-point a task at new piece entries (migration or scrub repair).

        The caller has already placed the new extents; this applies the
        write path's WAL discipline to the re-point: the journal's
        idempotent ``commit`` record — carrying the *full* new entry
        list — is durable before the in-memory catalog mutates, so a
        replay lands on the new placement and a crash before the sync
        keeps the old one. Either way the old keys (after) or the new
        keys (before) are orphans the recovery sweep reclaims.
        ``crash_site`` names the swept post-journal crash window of the
        calling subsystem (lifecycle migration or scrub repair).
        """
        if task_id not in self._catalog:
            raise TierError(f"unknown task {task_id!r}")
        entries = [CatalogEntry(*entry) for entry in entries]
        if self.journal is not None:
            self.journal.commit("commit", task_id, tuple(entries))
        if self.crashpoints is not None:
            self.crashpoints.reached(crash_site)
        self._catalog[task_id] = entries

    def _fetch_blob(self, entry: CatalogEntry) -> bytes:
        """Read one piece's blob through the SHI, verifying its checksum.

        A mismatch triggers read-repair: the blob is re-read up to
        ``read_repair_retries`` times (transient media/bus corruption heals
        on re-read), then the ``on_corrupt`` hook gets a chance to supply a
        healthy replacement, and only then is :class:`CorruptDataError`
        surfaced. Repair is *bounded across calls* too: after
        ``quarantine_after_repairs`` failed repair cycles on the same key
        the piece is quarantined — subsequent reads raise
        :class:`IntegrityError` immediately instead of re-burning the
        retry budget on data that cannot be healed. A scrub repair that
        rewrites the piece lifts the quarantine
        (:meth:`clear_quarantine`).
        """
        key = entry.key
        if key in self.quarantined:
            raise IntegrityError(
                f"piece {key!r} is quarantined: every repair source was "
                "exhausted on earlier reads",
                key=key,
            )
        blob, _receipt = self.shi.read(key)
        if entry.crc32 is None or zlib.crc32(blob) == entry.crc32:
            return blob
        self.corruption_detected += 1
        for _attempt in range(self.shi.resilience.read_repair_retries):
            blob, _receipt = self.shi.read(key)
            if zlib.crc32(blob) == entry.crc32:
                self.read_repairs += 1
                return blob
        if self.on_corrupt is not None:
            replacement = self.on_corrupt(key, blob)
            if replacement is not None and zlib.crc32(replacement) == entry.crc32:
                self.read_repairs += 1
                return replacement
        failures = self._repair_failures.get(key, 0) + 1
        self._repair_failures[key] = failures
        if failures >= self.shi.resilience.quarantine_after_repairs:
            self.quarantined.add(key)
            self.quarantine_events += 1
            raise IntegrityError(
                f"piece {key!r} quarantined after {failures} failed repair "
                "cycles (re-reads and the corruption hook all exhausted)",
                key=key,
            )
        raise CorruptDataError(
            f"piece {key!r} failed checksum validation after "
            f"{self.shi.resilience.read_repair_retries} re-reads"
        )

    def clear_quarantine(self, key: str) -> None:
        """Lift a key's quarantine after an in-place repair (scrub)."""
        self.quarantined.discard(key)
        self._repair_failures.pop(key, None)

    def _unwrap(self, entry: CatalogEntry, blob: bytes, header=None):
        """Decode a blob, mapping malformed-payload failures to
        :class:`CorruptDataError` (a bad header/payload on an
        integrity-checked piece is corruption, not a schema bug).

        With ``verify_digests`` on, the decoded bytes are additionally
        checked against the entry's end-to-end content digest — catching
        corruption the stored-blob CRC cannot see (e.g. a wrong-but-valid
        blob landed under the right key).
        """
        try:
            data, header = unwrap_payload(blob, _header=header)
        except (SchemaError, CodecError) as exc:
            raise CorruptDataError(
                f"piece {entry.key!r} failed to decode: {exc}"
            ) from exc
        if (
            self.verify_digests
            and entry.digest is not None
            and content_hash64(data) != entry.digest
        ):
            self.corruption_detected += 1
            raise CorruptDataError(
                f"piece {entry.key!r} decoded cleanly but failed "
                "content-digest validation"
            )
        return data, header

    def _unwrap_timed(self, entry: CatalogEntry, blob: bytes, header=None):
        """(data, header, wall seconds) for one blob — pure, pool-safe."""
        wall_start = time.perf_counter()
        data, header = self._unwrap(entry, blob, header)
        return data, header, time.perf_counter() - wall_start

    def execute_read(self, task_id: str, deadline=None) -> ReadResult:
        """Read + decompress a task; charges modeled times.

        For materialised tasks the returned ``data`` is the original
        buffer; for sample-scaled tasks it is the reassembled sample (or
        ``None`` when payloads were never stored) while the modeled timing
        still reflects the full modeled size.

        Decompression runs in three phases: fetch every blob serially
        (tier accounting, checksums and read-repair are stateful), decode
        the blobs — on the thread pool for GIL-releasing codecs — and
        reassemble serially in piece order, so results are identical with
        the pool on or off.
        """
        if self.obs is None:
            return self._execute_read(task_id, deadline)
        with self.obs.region("manager.execute_read", task=task_id) as sp:
            result = self._execute_read(task_id, deadline)
            sp.set_attr("pieces", result.pieces)
            sp.charge_modeled(result.decompress_seconds + result.io_seconds)
        return result

    def _execute_read(self, task_id: str, deadline=None) -> ReadResult:
        try:
            pieces = self._catalog[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        io_seconds = 0.0
        modeled = 0
        have_payloads = True
        fetched: list[tuple[CatalogEntry, bytes | None]] = []
        for entry in pieces:
            if deadline is not None:
                deadline.check(f"read {task_id!r}", io_seconds)
            tier = self.shi.locate(entry.key)
            if tier is None:
                raise TierError(f"piece {entry.key!r} lost from every tier")
            extent = tier.extent(entry.key)
            modeled += entry.length
            io_seconds += tier.io_seconds(extent.accounted_size)
            if extent.has_payload:
                fetched.append((entry, self._fetch_blob(entry)))
            else:
                have_payloads = False
                fetched.append((entry, None))
        if deadline is not None:
            # Final check with the full I/O bill: a single-piece read that
            # blew the budget must fail typed, not slip through unchecked.
            deadline.check(f"read {task_id!r}", io_seconds)

        pooled = [
            blob is not None and self._pool_eligible(entry.codec, len(blob))
            for entry, blob in fetched
        ]
        futures: dict[int, Future] = {}
        if sum(pooled) >= 2:
            executor = self._executor()
            futures = {
                i: executor.submit(self._unwrap_timed, entry, blob)
                for i, (entry, blob) in enumerate(fetched)
                if pooled[i]
            }
            self.parallel_pieces += len(futures)

        parts: list[bytes] = []
        decompress_seconds = 0.0
        metadata_seconds = 0.0
        # Results (and any decode error) are consumed in piece order, so
        # the first in-order failure surfaces exactly as on the serial path.
        for i, (entry, blob) in enumerate(fetched):
            if blob is not None:
                data, header, wall = (
                    futures[i].result() if i in futures
                    else self._unwrap_timed(entry, blob)
                )
                metadata_seconds += wall
                parts.append(data)
                # The applied library is rediscovered from the stored
                # header — the paper's decentralised-decode property.
                codec_name = get_codec(header.codec_id).meta.name
            else:
                codec_name = entry.codec
            if codec_name != "none":
                profile = self.pool.profile(codec_name)
                decompress_seconds += entry.length / (
                    profile.decompress_mbps * MB
                )
        data = b"".join(parts) if have_payloads else None
        return ReadResult(
            task_id=task_id,
            data=data,
            modeled_size=modeled,
            decompress_seconds=decompress_seconds,
            io_seconds=io_seconds,
            metadata_seconds=metadata_seconds,
            pieces=len(pieces),
        )

    def execute_read_batch(
        self, task_ids: list[str], deadline=None
    ) -> list[ReadResult]:
        """Read a batch of tasks in order.

        Result- and error-identical to calling :meth:`execute_read` per
        id; the batch form parses each task's 16-byte piece headers in
        one vectorized pass (:func:`repro.codecs.metadata.unpack_headers`)
        instead of one ``struct`` unpack per piece. Falls back to the
        per-task path under observability or a deadline.
        """
        if self.obs is not None or deadline is not None:
            return [self.execute_read(task_id, deadline) for task_id in task_ids]
        return [self._execute_read_fast(task_id) for task_id in task_ids]

    def _execute_read_fast(self, task_id: str) -> ReadResult:
        """:meth:`_execute_read` with one vectorized header parse per task.

        The stateful fetch phase (tier accounting, checksums, read-repair)
        is identical; header parsing for every payload-bearing piece then
        happens in a single numpy pass, and the bodies decode with the
        pre-parsed headers. A batch parse failure drops back to per-piece
        decoding so the first in-order error surfaces exactly as on the
        serial path.
        """
        try:
            pieces = self._catalog[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        io_seconds = 0.0
        modeled = 0
        have_payloads = True
        fetched: list[tuple[CatalogEntry, bytes | None]] = []
        for entry in pieces:
            tier = self.shi.locate(entry.key)
            if tier is None:
                raise TierError(f"piece {entry.key!r} lost from every tier")
            extent = tier.extent(entry.key)
            modeled += entry.length
            io_seconds += tier.io_seconds(extent.accounted_size)
            if extent.has_payload:
                fetched.append((entry, self._fetch_blob(entry)))
            else:
                have_payloads = False
                fetched.append((entry, None))

        headers: list = [None] * len(fetched)
        present = [i for i, (_entry, blob) in enumerate(fetched) if blob is not None]
        if present:
            try:
                parsed = unpack_headers([fetched[i][1] for i in present])
            except SchemaError:
                parsed = None  # per-piece decode will surface the exact error
            if parsed is not None:
                for i, header in zip(present, parsed):
                    headers[i] = header

        pooled = [
            blob is not None and self._pool_eligible(entry.codec, len(blob))
            for entry, blob in fetched
        ]
        futures: dict[int, Future] = {}
        if sum(pooled) >= 2:
            executor = self._executor()
            futures = {
                i: executor.submit(
                    self._unwrap_timed, entry, blob, headers[i]
                )
                for i, (entry, blob) in enumerate(fetched)
                if pooled[i]
            }
            self.parallel_pieces += len(futures)

        parts: list[bytes] = []
        decompress_seconds = 0.0
        metadata_seconds = 0.0
        for i, (entry, blob) in enumerate(fetched):
            if blob is not None:
                data, header, wall = (
                    futures[i].result() if i in futures
                    else self._unwrap_timed(entry, blob, headers[i])
                )
                metadata_seconds += wall
                parts.append(data)
                codec_name = get_codec(header.codec_id).meta.name
            else:
                codec_name = entry.codec
            if codec_name != "none":
                profile = self.pool.profile(codec_name)
                decompress_seconds += entry.length / (
                    profile.decompress_mbps * MB
                )
        data = b"".join(parts) if have_payloads else None
        return ReadResult(
            task_id=task_id,
            data=data,
            modeled_size=modeled,
            decompress_seconds=decompress_seconds,
            io_seconds=io_seconds,
            metadata_seconds=metadata_seconds,
            pieces=len(pieces),
        )

    def execute_read_range(
        self, task_id: str, offset: int, length: int, deadline=None
    ) -> ReadResult:
        """Random-access read: only the sub-tasks overlapping
        ``[offset, offset + length)`` are fetched and decompressed.

        This is the "virtual chunks" benefit of the schema's piece
        structure: because every piece is independently decodable (own
        16-byte header, own codec), a partial read touches a strict subset
        of the task's footprint. Returned ``data`` is the requested slice
        for materialised tasks, ``None`` for modeled ones (timing is still
        charged for the overlapping pieces only).
        """
        if offset < 0 or length < 0:
            raise SchemaError(
                f"invalid range offset={offset} length={length}"
            )
        try:
            pieces = self._catalog[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        if length == 0:
            return ReadResult(task_id, b"", 0, 0.0, 0.0, 0.0, 0)
        end = offset + length
        parts: list[bytes] = []
        io_seconds = 0.0
        decompress_seconds = 0.0
        metadata_seconds = 0.0
        touched = 0
        have_payloads = True
        cursor = 0
        for entry in pieces:
            piece_start, piece_end = cursor, cursor + entry.length
            cursor = piece_end
            if piece_end <= offset or piece_start >= end:
                continue  # no overlap: never touched
            if deadline is not None:
                deadline.check(f"read {task_id!r}", io_seconds)
            touched += 1
            tier = self.shi.locate(entry.key)
            if tier is None:
                raise TierError(f"piece {entry.key!r} lost from every tier")
            extent = tier.extent(entry.key)
            io_seconds += tier.io_seconds(extent.accounted_size)
            if extent.has_payload:
                blob = self._fetch_blob(entry)
                wall_start = time.perf_counter()
                data, header = self._unwrap(entry, blob)
                metadata_seconds += time.perf_counter() - wall_start
                lo = max(offset - piece_start, 0)
                hi = min(end - piece_start, len(data))
                parts.append(data[lo:hi])
                codec_name = get_codec(header.codec_id).meta.name
            else:
                have_payloads = False
                codec_name = entry.codec
            if codec_name != "none":
                profile = self.pool.profile(codec_name)
                decompress_seconds += entry.length / (
                    profile.decompress_mbps * MB
                )
        if deadline is not None and touched:
            # Same final check as the full read: the last touched piece's
            # I/O must also fit the budget.
            deadline.check(f"read {task_id!r}", io_seconds)
        return ReadResult(
            task_id=task_id,
            data=b"".join(parts) if have_payloads else None,
            modeled_size=min(end, cursor) - min(offset, cursor),
            decompress_seconds=decompress_seconds,
            io_seconds=io_seconds,
            metadata_seconds=metadata_seconds,
            pieces=touched,
        )

    def evict_task(self, task_id: str) -> int:
        """Remove every piece of a task; returns released accounted bytes.

        Journaled before any tier frees: a crash mid-evict recovers with
        the task gone from the catalog, and recovery's orphan sweep frees
        whatever pieces the crash left on the tiers.
        """
        keys = self.task_keys(task_id)
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.evict.pre_journal")
        if self.journal is not None:
            self.journal.commit("evict", task_id)
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.evict.post_journal")
        released = 0
        for key in keys:
            released += self.shi.delete(key)
        del self._catalog[task_id]
        return released

    # -- recovery support -----------------------------------------------------

    def catalog_snapshot(self) -> dict[str, list[tuple]]:
        """The catalog as plain tuples, for checkpointing.

        Entries without a content digest serialize in the legacy
        4-element form, so snapshots written with digests off are
        byte-identical to pre-digest builds; digest-bearing entries carry
        the 5th element. Both forms restore
        (:class:`CatalogEntry`'s trailing field defaults to ``None``).
        """
        return {
            task_id: [
                tuple(entry)[:4] if entry.digest is None else tuple(entry)
                for entry in entries
            ]
            for task_id, entries in self._catalog.items()
        }

    def restore_catalog(
        self, catalog: dict[str, list[tuple[str, int, str, int | None]]]
    ) -> None:
        """Replace the catalog wholesale (snapshot application)."""
        self._catalog = {
            task_id: [CatalogEntry(*entry) for entry in entries]
            for task_id, entries in catalog.items()
        }

    def apply_journal_record(self, record) -> None:
        """Apply one replayed journal record to the catalog.

        Idempotent by construction: records carry the full entry list (for
        commits) or a whole-task delete (for evicts), so applying the same
        record — or the same journal — twice leaves identical state.
        """
        if record.kind == "commit":
            self._catalog[record.task_id] = [
                CatalogEntry(*entry) for entry in record.entries
            ]
        elif record.kind == "evict":
            self._catalog.pop(record.task_id, None)
        else:  # pragma: no cover - Journal validates kinds on append
            raise SchemaError(f"unknown journal record kind {record.kind!r}")
