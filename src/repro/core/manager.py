"""The Compression Manager (paper §IV-G).

Executes HCDP schemas: for every sub-task it instantiates the planned
library through the pool's factory, compresses the piece's bytes, decorates
the payload with the 16-byte metadata header, and hands it to the Storage
Hardware Interface. On the read path it rediscovers the applied library
from the header alone and reassembles the original buffer.

Representative-sample scaling (DESIGN.md §2): when a task models more bytes
than it materialises, each piece compresses the corresponding slice of the
sample, the *measured* ratio is extrapolated to the modeled piece length
for capacity accounting, and nominal-profile codec times are charged for
the modeled length.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
import zlib
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from ..ccp.seed import CostObservation
from ..ccp.features import ObservationKey
from ..codecs.base import get_codec
from ..codecs.metadata import HEADER_SIZE, unwrap_payload, wrap_payload
from ..codecs.pool import CompressionLibraryPool
from ..errors import (
    CodecError,
    CorruptDataError,
    DeadlineExceededError,
    SchemaError,
    TierError,
)
from ..hcdp.schema import Schema, SubTaskPlan
from ..hcdp.task import IOTask
from ..units import MB
from .config import ExecutorConfig
from .shi import StorageHardwareInterface

__all__ = [
    "CompressionManager",
    "PieceResult",
    "WriteResult",
    "ReadResult",
    "CatalogEntry",
]


class CatalogEntry(NamedTuple):
    """One written piece as the manager remembers it."""

    key: str
    length: int  # modeled uncompressed length
    codec: str
    crc32: int | None  # checksum of the stored blob (None: accounting-only)


class _PreparedPiece(NamedTuple):
    """Side-effect-free codec output for one piece, ready to place."""

    blob: bytes | None
    measured_ratio: float
    accounted: int
    wall_seconds: float


@dataclass(frozen=True)
class PieceResult:
    """Execution record for one sub-task."""

    plan: SubTaskPlan
    key: str
    tier: str
    stored_size: int  # accounted bytes on the tier (header included)
    actual_ratio: float
    compress_seconds: float  # nominal-profile time for the modeled length
    io_seconds: float  # uncontended modeled tier time
    wall_seconds: float  # real Python codec time (diagnostic only)
    spilled: bool = False  # runtime correction: plan's tier was full
    failover: bool = False  # SHI rerouted around an outage at execute time
    retries: int = 0  # transient-error retries charged to this piece


@dataclass
class WriteResult:
    """Execution record for one write task."""

    task: IOTask
    pieces: list[PieceResult] = field(default_factory=list)
    observations: list[CostObservation] = field(default_factory=list)

    @property
    def total_stored(self) -> int:
        return sum(p.stored_size for p in self.pieces)

    @property
    def compress_seconds(self) -> float:
        return sum(p.compress_seconds for p in self.pieces)

    @property
    def io_seconds(self) -> float:
        return sum(p.io_seconds for p in self.pieces)

    @property
    def achieved_ratio(self) -> float:
        stored = self.total_stored
        return self.task.size / stored if stored else 1.0


@dataclass
class ReadResult:
    """Execution record for one read task."""

    task_id: str
    data: bytes | None
    modeled_size: int
    decompress_seconds: float
    io_seconds: float
    metadata_seconds: float
    pieces: int


class CompressionManager:
    """Schema executor + metadata catalog.

    The catalog maps task ids to their piece keys/codecs so reads can
    enumerate pieces; each piece's *codec* is still taken from its stored
    header (the paper's decentralised-decode property), the catalog only
    provides the key list.
    """

    def __init__(
        self,
        pool: CompressionLibraryPool,
        shi: StorageHardwareInterface,
        on_corrupt: Callable[[str, bytes], bytes | None] | None = None,
        executor: ExecutorConfig | None = None,
        obs=None,
        journal=None,
        crashpoints=None,
    ) -> None:
        self.pool = pool
        self.shi = shi
        self.obs = obs
        # Write-ahead journal (repro.recovery): when present, a catalog
        # mutation is made durable *before* the in-memory catalog changes,
        # so an acknowledged write survives a process crash.
        self.journal = journal
        # Crash-point arbiter (repro.recovery.crashpoints): models abrupt
        # process death at instrumented sites for the crash harness.
        self.crashpoints = crashpoints
        self.executor_config = executor if executor is not None else ExecutorConfig()
        self._catalog: dict[str, list[CatalogEntry]] = {}
        # (codec, feature key, sample digest) -> measured ratio, LRU;
        # modeled tasks measure each codec once per distinct sample instead
        # of once per piece of a burst.
        self._sample_ratios: OrderedDict[tuple, float] = OrderedDict()
        self.sample_cache_hits = 0
        self.sample_cache_misses = 0
        self.spill_events = 0
        self.read_repairs = 0
        self.corruption_detected = 0
        # Pieces whose real codec work ran on the thread pool (diagnostic).
        self.parallel_pieces = 0
        self._pool_executor: ThreadPoolExecutor | None = None
        # Read-repair hook: called with (key, corrupt blob) after re-reads
        # are exhausted; may return a healthy replacement blob (e.g. from a
        # replica or erasure-coded reconstruction) or None to give up.
        self.on_corrupt = on_corrupt

    # -- piece concurrency ---------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool_executor is None:
            workers = self.executor_config.max_workers
            if workers is None:
                workers = min(8, os.cpu_count() or 1)
            self._pool_executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="hcompress-piece"
            )
        return self._pool_executor

    def shutdown(self) -> None:
        """Release the piece thread pool (idempotent)."""
        if self._pool_executor is not None:
            self._pool_executor.shutdown(wait=True)
            self._pool_executor = None

    def _pool_eligible(self, codec_name: str, nbytes: int) -> bool:
        """Whether one piece's codec work should go to the thread pool.

        Only stdlib-backed codecs release the GIL while crunching; our
        from-scratch pure-Python codecs would serialise on it anyway, and
        tiny pieces cost more to dispatch than to compress.
        """
        if not self.executor_config.enabled or codec_name == "none":
            return False
        if nbytes < self.executor_config.min_piece_bytes:
            return False
        return self.pool.codec(codec_name).meta.stdlib

    # -- write path ---------------------------------------------------------

    def execute_write(self, schema: Schema, deadline=None) -> WriteResult:
        """Run a schema; returns accounting plus feedback observations.

        Atomic with respect to the catalog: if any piece fails to place
        (outage with failover disabled, retry budget exhausted) — or the
        optional :class:`~repro.qos.Deadline` budget runs out mid-task —
        every piece already written is rolled back so the caller can
        replan and re-execute the task cleanly.
        """
        if self.obs is None:
            return self._execute_write(schema, deadline)
        with self.obs.region(
            "manager.execute_write",
            task=schema.task.task_id,
            pieces=len(schema.pieces),
        ) as sp:
            result = self._execute_write(schema, deadline)
            sp.set_attr("stored", result.total_stored)
            sp.charge_modeled(result.compress_seconds + result.io_seconds)
        return result

    def _execute_write(self, schema: Schema, deadline=None) -> WriteResult:
        task = schema.task
        if task.task_id in self._catalog:
            raise SchemaError(f"task {task.task_id!r} already written")
        result = WriteResult(task=task)
        entries: list[CatalogEntry] = []
        dtype, data_format, distribution = task.analysis.feature_key()
        feature_key = (dtype, data_format, distribution)

        prepared = self._prepare_pieces(schema, feature_key)
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.prepared")
        consumed = 0.0  # modeled seconds this task has spent so far
        try:
            for index, (plan, prep) in enumerate(zip(schema.pieces, prepared)):
                key = self.shi.piece_key(task.task_id, index)
                if deadline is not None:
                    deadline.check(f"write {task.task_id!r}", consumed)
                if self.obs is not None:
                    self.obs.hooks.enter(
                        "manager.piece", key=key, codec=plan.codec,
                        length=plan.length,
                    )
                self.pool.codec(plan.codec)  # library selection (factory path)
                blob = prep.blob
                measured_ratio = prep.measured_ratio
                accounted = prep.accounted
                wall_seconds = prep.wall_seconds

                tier_name, spilled = self._resolve_tier(plan, accounted)
                receipt = self.shi.write(key, tier_name, blob, accounted)
                crc = (
                    zlib.crc32(blob)
                    if blob is not None and self.shi.resilience.verify_checksums
                    else None
                )
                entries.append(CatalogEntry(key, plan.length, plan.codec, crc))
                if self.crashpoints is not None:
                    self.crashpoints.reached("manager.write.piece_placed")

                profile = self.pool.profile(plan.codec)
                comp_seconds = (
                    plan.length / (profile.compress_mbps * MB)
                    if plan.codec != "none"
                    else 0.0
                )
                consumed += comp_seconds + receipt.seconds
                result.pieces.append(
                    PieceResult(
                        plan=plan,
                        key=key,
                        tier=receipt.tier,
                        stored_size=accounted,
                        actual_ratio=measured_ratio,
                        compress_seconds=comp_seconds,
                        io_seconds=receipt.seconds,
                        wall_seconds=wall_seconds,
                        spilled=spilled,
                        failover=receipt.failover,
                        retries=receipt.retries,
                    )
                )
                if self.obs is not None:
                    self.obs.hooks.exit(
                        "manager.piece", key=key, codec=plan.codec,
                        tier=receipt.tier, stored=accounted,
                        retries=receipt.retries, failover=receipt.failover,
                    )
                if plan.codec != "none":
                    result.observations.append(
                        CostObservation(
                            key=ObservationKey(
                                dtype, data_format, distribution, plan.codec,
                                plan.length,
                            ),
                            compress_mbps=profile.compress_mbps,
                            decompress_mbps=profile.decompress_mbps,
                            ratio=max(measured_ratio, 1e-3),
                        )
                    )
        except (TierError, DeadlineExceededError):
            for entry in entries:  # roll back the partial write
                tier = self.shi.locate(entry.key)
                if tier is not None:
                    tier.evict(entry.key)
            raise
        # WAL discipline: the commit record is durable before the catalog
        # mutates (and before the caller sees the ack). A crash between the
        # journal sync and the assignment below recovers the task as
        # committed — pieces are on the tiers and the record names them.
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.pre_journal")
        if self.journal is not None:
            self.journal.commit("commit", task.task_id, tuple(entries))
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.write.post_journal")
        self._catalog[task.task_id] = entries
        return result

    def _prepare_pieces(
        self, schema: Schema, feature_key: tuple[str, str, str]
    ) -> list["_PreparedPiece"]:
        """Run every piece's *codec* work up front, in schema order.

        Compression is pure (slice in, blob out), so materialised pieces
        whose codec releases the GIL run concurrently on the thread pool;
        everything with side effects — tier resolution, SHI writes, the
        catalog — stays serial in the caller, which keeps execution
        bit-identical with the pool on or off.
        """
        task = schema.task
        sample = task.data
        if task.materialised and sample is not None:

            def compress_piece(plan: SubTaskPlan) -> _PreparedPiece:
                wall_start = time.perf_counter()
                piece_bytes = sample[plan.offset : plan.offset + plan.length]
                blob, header = wrap_payload(
                    piece_bytes,
                    start_offset=plan.offset % (1 << 32),
                    codec_name=plan.codec,
                )
                measured_ratio = (
                    len(piece_bytes) / header.resulting_size
                    if header.resulting_size
                    else 1.0
                )
                return _PreparedPiece(
                    blob=blob,
                    measured_ratio=measured_ratio,
                    accounted=len(blob),
                    wall_seconds=time.perf_counter() - wall_start,
                )

            pooled = [
                self._pool_eligible(plan.codec, plan.length)
                for plan in schema.pieces
            ]
            if sum(pooled) >= 2:
                executor = self._executor()
                futures = {
                    i: executor.submit(compress_piece, plan)
                    for i, plan in enumerate(schema.pieces)
                    if pooled[i]
                }
                self.parallel_pieces += len(futures)
                return [
                    futures[i].result() if pooled[i] else compress_piece(plan)
                    for i, plan in enumerate(schema.pieces)
                ]
            return [compress_piece(plan) for plan in schema.pieces]

        prepared = []
        for plan in schema.pieces:
            wall_start = time.perf_counter()
            measured_ratio = (
                self._sample_ratio(sample, plan.codec, feature_key)
                if sample
                else plan.expected_ratio
            )
            accounted = HEADER_SIZE + max(
                1, math.ceil(plan.length / max(measured_ratio, 1e-9))
            )
            prepared.append(
                _PreparedPiece(
                    blob=None,
                    measured_ratio=measured_ratio,
                    accounted=accounted,
                    wall_seconds=time.perf_counter() - wall_start,
                )
            )
        return prepared

    def _sample_ratio(
        self, sample: bytes, codec_name: str, feature_key: tuple[str, str, str]
    ) -> float:
        """Measured ratio of ``codec_name`` on ``sample``, LRU-cached.

        Modeled tasks typically reuse one representative sample across many
        ranks and timesteps; measuring each codec once per distinct
        ``(codec, feature key, sample digest)`` keeps modeled runs
        O(codecs) in real compression work instead of O(pieces). Codec
        failures propagate — a roster member that cannot compress valid
        bytes is a bug, not a condition to paper over.
        """
        if codec_name == "none":
            return 1.0
        digest = hashlib.blake2b(sample, digest_size=16).digest()
        cache_key = (codec_name, feature_key, digest)
        cached = self._sample_ratios.get(cache_key)
        if cached is not None:
            self._sample_ratios.move_to_end(cache_key)
            self.sample_cache_hits += 1
            return cached
        self.sample_cache_misses += 1
        payload = self.pool.codec(codec_name).compress(sample)
        ratio = len(sample) / max(len(payload), 1)
        self._sample_ratios[cache_key] = ratio
        while len(self._sample_ratios) > self.executor_config.sample_cache_size:
            self._sample_ratios.popitem(last=False)
        return ratio

    def _resolve_tier(self, plan: SubTaskPlan, accounted: int) -> tuple[str, bool]:
        """Honour the plan's tier, spilling downward when the measured
        footprint no longer fits (the predicted ratio was optimistic).

        Spill corrects *capacity* staleness only. An unavailable tier is
        passed through untouched: outages are the SHI's jurisdiction, whose
        write path fails over (recording the reroute) or surfaces
        :class:`TierUnavailableError` when failover is disabled."""
        hierarchy = self.shi.hierarchy
        level = plan.tier_level
        if not hierarchy[level].available:
            return plan.tier, False
        if hierarchy[level].fits(accounted):
            return plan.tier, False
        for lower in range(level + 1, len(hierarchy)):
            if hierarchy[lower].fits(accounted):
                self.spill_events += 1
                return hierarchy[lower].spec.name, True
        raise TierError(
            f"piece of {accounted} bytes fits no tier at or below "
            f"{plan.tier!r}"
        )

    # -- read path ------------------------------------------------------------

    def task_keys(self, task_id: str) -> list[str]:
        try:
            return [entry.key for entry in self._catalog[task_id]]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None

    def task_pieces(self, task_id: str) -> list[tuple[str, int]]:
        """(key, modeled length) pairs for a written task."""
        try:
            return [
                (entry.key, entry.length) for entry in self._catalog[task_id]
            ]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._catalog

    def _fetch_blob(self, entry: CatalogEntry) -> bytes:
        """Read one piece's blob through the SHI, verifying its checksum.

        A mismatch triggers read-repair: the blob is re-read up to
        ``read_repair_retries`` times (transient media/bus corruption heals
        on re-read), then the ``on_corrupt`` hook gets a chance to supply a
        healthy replacement, and only then is :class:`CorruptDataError`
        surfaced.
        """
        blob, _receipt = self.shi.read(entry.key)
        if entry.crc32 is None or zlib.crc32(blob) == entry.crc32:
            return blob
        self.corruption_detected += 1
        for _attempt in range(self.shi.resilience.read_repair_retries):
            blob, _receipt = self.shi.read(entry.key)
            if zlib.crc32(blob) == entry.crc32:
                self.read_repairs += 1
                return blob
        if self.on_corrupt is not None:
            replacement = self.on_corrupt(entry.key, blob)
            if replacement is not None and zlib.crc32(replacement) == entry.crc32:
                self.read_repairs += 1
                return replacement
        raise CorruptDataError(
            f"piece {entry.key!r} failed checksum validation after "
            f"{self.shi.resilience.read_repair_retries} re-reads"
        )

    def _unwrap(self, entry: CatalogEntry, blob: bytes):
        """Decode a blob, mapping malformed-payload failures to
        :class:`CorruptDataError` (a bad header/payload on an
        integrity-checked piece is corruption, not a schema bug)."""
        try:
            return unwrap_payload(blob)
        except (SchemaError, CodecError) as exc:
            raise CorruptDataError(
                f"piece {entry.key!r} failed to decode: {exc}"
            ) from exc

    def _unwrap_timed(self, entry: CatalogEntry, blob: bytes):
        """(data, header, wall seconds) for one blob — pure, pool-safe."""
        wall_start = time.perf_counter()
        data, header = self._unwrap(entry, blob)
        return data, header, time.perf_counter() - wall_start

    def execute_read(self, task_id: str, deadline=None) -> ReadResult:
        """Read + decompress a task; charges modeled times.

        For materialised tasks the returned ``data`` is the original
        buffer; for sample-scaled tasks it is the reassembled sample (or
        ``None`` when payloads were never stored) while the modeled timing
        still reflects the full modeled size.

        Decompression runs in three phases: fetch every blob serially
        (tier accounting, checksums and read-repair are stateful), decode
        the blobs — on the thread pool for GIL-releasing codecs — and
        reassemble serially in piece order, so results are identical with
        the pool on or off.
        """
        if self.obs is None:
            return self._execute_read(task_id, deadline)
        with self.obs.region("manager.execute_read", task=task_id) as sp:
            result = self._execute_read(task_id, deadline)
            sp.set_attr("pieces", result.pieces)
            sp.charge_modeled(result.decompress_seconds + result.io_seconds)
        return result

    def _execute_read(self, task_id: str, deadline=None) -> ReadResult:
        try:
            pieces = self._catalog[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        io_seconds = 0.0
        modeled = 0
        have_payloads = True
        fetched: list[tuple[CatalogEntry, bytes | None]] = []
        for entry in pieces:
            if deadline is not None:
                deadline.check(f"read {task_id!r}", io_seconds)
            tier = self.shi.locate(entry.key)
            if tier is None:
                raise TierError(f"piece {entry.key!r} lost from every tier")
            extent = tier.extent(entry.key)
            modeled += entry.length
            io_seconds += tier.io_seconds(extent.accounted_size)
            if extent.has_payload:
                fetched.append((entry, self._fetch_blob(entry)))
            else:
                have_payloads = False
                fetched.append((entry, None))
        if deadline is not None:
            # Final check with the full I/O bill: a single-piece read that
            # blew the budget must fail typed, not slip through unchecked.
            deadline.check(f"read {task_id!r}", io_seconds)

        pooled = [
            blob is not None and self._pool_eligible(entry.codec, len(blob))
            for entry, blob in fetched
        ]
        futures: dict[int, Future] = {}
        if sum(pooled) >= 2:
            executor = self._executor()
            futures = {
                i: executor.submit(self._unwrap_timed, entry, blob)
                for i, (entry, blob) in enumerate(fetched)
                if pooled[i]
            }
            self.parallel_pieces += len(futures)

        parts: list[bytes] = []
        decompress_seconds = 0.0
        metadata_seconds = 0.0
        # Results (and any decode error) are consumed in piece order, so
        # the first in-order failure surfaces exactly as on the serial path.
        for i, (entry, blob) in enumerate(fetched):
            if blob is not None:
                data, header, wall = (
                    futures[i].result() if i in futures
                    else self._unwrap_timed(entry, blob)
                )
                metadata_seconds += wall
                parts.append(data)
                # The applied library is rediscovered from the stored
                # header — the paper's decentralised-decode property.
                codec_name = get_codec(header.codec_id).meta.name
            else:
                codec_name = entry.codec
            if codec_name != "none":
                profile = self.pool.profile(codec_name)
                decompress_seconds += entry.length / (
                    profile.decompress_mbps * MB
                )
        data = b"".join(parts) if have_payloads else None
        return ReadResult(
            task_id=task_id,
            data=data,
            modeled_size=modeled,
            decompress_seconds=decompress_seconds,
            io_seconds=io_seconds,
            metadata_seconds=metadata_seconds,
            pieces=len(pieces),
        )

    def execute_read_range(
        self, task_id: str, offset: int, length: int, deadline=None
    ) -> ReadResult:
        """Random-access read: only the sub-tasks overlapping
        ``[offset, offset + length)`` are fetched and decompressed.

        This is the "virtual chunks" benefit of the schema's piece
        structure: because every piece is independently decodable (own
        16-byte header, own codec), a partial read touches a strict subset
        of the task's footprint. Returned ``data`` is the requested slice
        for materialised tasks, ``None`` for modeled ones (timing is still
        charged for the overlapping pieces only).
        """
        if offset < 0 or length < 0:
            raise SchemaError(
                f"invalid range offset={offset} length={length}"
            )
        try:
            pieces = self._catalog[task_id]
        except KeyError:
            raise TierError(f"unknown task {task_id!r}") from None
        if length == 0:
            return ReadResult(task_id, b"", 0, 0.0, 0.0, 0.0, 0)
        end = offset + length
        parts: list[bytes] = []
        io_seconds = 0.0
        decompress_seconds = 0.0
        metadata_seconds = 0.0
        touched = 0
        have_payloads = True
        cursor = 0
        for entry in pieces:
            piece_start, piece_end = cursor, cursor + entry.length
            cursor = piece_end
            if piece_end <= offset or piece_start >= end:
                continue  # no overlap: never touched
            if deadline is not None:
                deadline.check(f"read {task_id!r}", io_seconds)
            touched += 1
            tier = self.shi.locate(entry.key)
            if tier is None:
                raise TierError(f"piece {entry.key!r} lost from every tier")
            extent = tier.extent(entry.key)
            io_seconds += tier.io_seconds(extent.accounted_size)
            if extent.has_payload:
                blob = self._fetch_blob(entry)
                wall_start = time.perf_counter()
                data, header = self._unwrap(entry, blob)
                metadata_seconds += time.perf_counter() - wall_start
                lo = max(offset - piece_start, 0)
                hi = min(end - piece_start, len(data))
                parts.append(data[lo:hi])
                codec_name = get_codec(header.codec_id).meta.name
            else:
                have_payloads = False
                codec_name = entry.codec
            if codec_name != "none":
                profile = self.pool.profile(codec_name)
                decompress_seconds += entry.length / (
                    profile.decompress_mbps * MB
                )
        if deadline is not None and touched:
            # Same final check as the full read: the last touched piece's
            # I/O must also fit the budget.
            deadline.check(f"read {task_id!r}", io_seconds)
        return ReadResult(
            task_id=task_id,
            data=b"".join(parts) if have_payloads else None,
            modeled_size=min(end, cursor) - min(offset, cursor),
            decompress_seconds=decompress_seconds,
            io_seconds=io_seconds,
            metadata_seconds=metadata_seconds,
            pieces=touched,
        )

    def evict_task(self, task_id: str) -> int:
        """Remove every piece of a task; returns released accounted bytes.

        Journaled before any tier frees: a crash mid-evict recovers with
        the task gone from the catalog, and recovery's orphan sweep frees
        whatever pieces the crash left on the tiers.
        """
        keys = self.task_keys(task_id)
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.evict.pre_journal")
        if self.journal is not None:
            self.journal.commit("evict", task_id)
        if self.crashpoints is not None:
            self.crashpoints.reached("manager.evict.post_journal")
        released = 0
        for key in keys:
            released += self.shi.delete(key)
        del self._catalog[task_id]
        return released

    # -- recovery support -----------------------------------------------------

    def catalog_snapshot(self) -> dict[str, list[tuple[str, int, str, int | None]]]:
        """The catalog as plain tuples, for checkpointing."""
        return {
            task_id: [tuple(entry) for entry in entries]
            for task_id, entries in self._catalog.items()
        }

    def restore_catalog(
        self, catalog: dict[str, list[tuple[str, int, str, int | None]]]
    ) -> None:
        """Replace the catalog wholesale (snapshot application)."""
        self._catalog = {
            task_id: [CatalogEntry(*entry) for entry in entries]
            for task_id, entries in catalog.items()
        }

    def apply_journal_record(self, record) -> None:
        """Apply one replayed journal record to the catalog.

        Idempotent by construction: records carry the full entry list (for
        commits) or a whole-task delete (for evicts), so applying the same
        record — or the same journal — twice leaves identical state.
        """
        if record.kind == "commit":
            self._catalog[record.task_id] = [
                CatalogEntry(*entry) for entry in record.entries
            ]
        elif record.kind == "evict":
            self._catalog.pop(record.task_id, None)
        else:  # pragma: no cover - Journal validates kinds on append
            raise SchemaError(f"unknown journal record kind {record.kind!r}")
