"""HCompress core: the main engine, manager, SHI, profiler, and API facade."""

from .api import HCompressFile, hcompress_session
from .config import (
    ExecutorConfig,
    HCompressConfig,
    ObservabilityConfig,
    PlanCacheConfig,
    RecoveryConfig,
    ResilienceConfig,
)
from .hcompress import Anatomy, HCompress, RecoveryReport
from .manager import CompressionManager, PieceResult, ReadResult, WriteResult
from .profiler import HCompressProfiler
from .shi import IoReceipt, StorageHardwareInterface

__all__ = [
    "Anatomy",
    "CompressionManager",
    "ExecutorConfig",
    "HCompress",
    "HCompressConfig",
    "HCompressFile",
    "HCompressProfiler",
    "IoReceipt",
    "ObservabilityConfig",
    "PieceResult",
    "PlanCacheConfig",
    "ReadResult",
    "RecoveryConfig",
    "RecoveryReport",
    "ResilienceConfig",
    "StorageHardwareInterface",
    "WriteResult",
    "hcompress_session",
]
