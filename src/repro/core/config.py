"""HCompress runtime configuration.

One frozen dataclass gathers every knob the paper exposes: the priority
weighting (runtime-switchable through the API), the feedback cadence
(``n`` in §IV-D), the split grain, the codec roster, and where the JSON
seed lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..codecs.pool import PAPER_LIBRARIES
from ..hcdp.priorities import EQUAL, Priority
from ..units import PAGE

__all__ = ["HCompressConfig"]


@dataclass(frozen=True)
class HCompressConfig:
    """Configuration for an :class:`~repro.core.hcompress.HCompress` engine.

    Attributes:
        priority: Initial workload priority (Table II presets or custom).
        feedback_every_n: Operations between feedback flushes into the CCP.
        grain: Sub-task split alignment (the paper's 4096 bytes).
        libraries: Codec roster; defaults to the paper's eleven.
        load_factor: Queue-depth sensitivity of the HCDP cost model.
        drain_penalty: Scale of the engine's amortised capacity-pressure
            term (0 disables; see the placement ablation bench).
        seed_path: JSON seed to bootstrap from / finalize to (optional).
        monitor_interval: System Monitor refresh period in seconds of the
            monitor's clock domain.
        python_to_native: Calibration divisor applied to measured Python
            wall time of engine-internal stages when reporting the Fig. 3
            anatomy, so overheads are comparable to the paper's native
            implementation (see DESIGN.md fidelity notes).
    """

    priority: Priority = EQUAL
    feedback_every_n: int = 16
    grain: int = PAGE
    libraries: tuple[str, ...] = field(default_factory=lambda: PAPER_LIBRARIES)
    load_factor: float = 1.0
    drain_penalty: float = 1.0
    seed_path: str | Path | None = None
    monitor_interval: float = 0.0
    python_to_native: float = 50.0

    def __post_init__(self) -> None:
        if self.feedback_every_n < 1:
            raise ValueError("feedback_every_n must be >= 1")
        if self.grain < 1:
            raise ValueError("grain must be >= 1")
        if self.load_factor < 0:
            raise ValueError("load_factor must be >= 0")
        if self.drain_penalty < 0:
            raise ValueError("drain_penalty must be >= 0")
        if self.python_to_native <= 0:
            raise ValueError("python_to_native must be positive")
