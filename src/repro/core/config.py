"""HCompress runtime configuration.

One frozen dataclass gathers every knob the paper exposes: the priority
weighting (runtime-switchable through the API), the feedback cadence
(``n`` in §IV-D), the split grain, the codec roster, and where the JSON
seed lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..codecs.pool import PAPER_LIBRARIES
from ..hcdp.plan_cache import PlanCacheConfig
from ..hcdp.priorities import EQUAL, Priority
from ..lifecycle.config import LifecycleConfig
from ..obs import ObservabilityConfig
from ..qos import QosConfig
from ..scrub.config import ScrubConfig
from ..units import KiB, PAGE

__all__ = [
    "ExecutorConfig",
    "HCompressConfig",
    "LifecycleConfig",
    "ObservabilityConfig",
    "PlanCacheConfig",
    "QosConfig",
    "RecoveryConfig",
    "ResilienceConfig",
    "ScrubConfig",
]


@dataclass(frozen=True)
class RecoveryConfig:
    """Crash-recovery policy: write-ahead journaling and checkpoints.

    Attributes:
        enabled: Master switch. When on, every catalog mutation is
            journaled to ``directory`` *before* the write is acknowledged,
            and :meth:`~repro.core.hcompress.HCompress.checkpoint` /
            :meth:`~repro.core.hcompress.HCompress.restore` operate on
            that directory by default.
        directory: Where the journal and snapshots live. Required when
            ``enabled``.
        fsync_every: Journal group-commit batch — records buffered before
            a sync is forced (1 = strictest: sync on every commit).
        fsync: Issue real ``os.fsync`` calls. Turning this off keeps the
            durability *model* (buffered records are still lost on a
            modeled crash) while speeding up tests and benchmarks.
    """

    enabled: bool = False
    directory: str | Path | None = None
    fsync_every: int = 1
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.enabled and self.directory is None:
            raise ValueError("RecoveryConfig.enabled requires a directory")
        if self.fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")


@dataclass(frozen=True)
class ExecutorConfig:
    """Concurrency policy of the Compression Manager's piece execution.

    The stdlib-backed codecs (zlib/bz2/lzma) release the GIL, so a
    schema's pieces can compress/decompress on a thread pool; from-scratch
    pure-Python codecs gain nothing from threads and always run serially.
    Only the *real* codec byte work is parallelised — modeled time is
    still charged deterministically from the nominal profile table and
    every tier/SHI side effect happens serially in piece order, so
    simulation results are bit-identical with the pool on or off.

    Attributes:
        enabled: Master switch for the thread pool.
        max_workers: Pool width (``None``: ``min(8, cpu_count)``).
        min_piece_bytes: Pieces smaller than this are compressed inline —
            the pool's dispatch overhead would exceed the codec time.
        sample_cache_size: LRU entries of the manager's measured
            sample-ratio cache, keyed ``(codec, feature key, sample
            digest)``.
    """

    enabled: bool = True
    max_workers: int | None = None
    min_piece_bytes: int = 64 * KiB
    sample_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None)")
        if self.min_piece_bytes < 0:
            raise ValueError("min_piece_bytes must be >= 0")
        if self.sample_cache_size < 1:
            raise ValueError("sample_cache_size must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for the resilient I/O paths.

    Attributes:
        max_retries: Retry budget per operation for transient I/O errors
            (0 disables retrying entirely).
        backoff_base: First retry's backoff in (simulated) seconds; each
            subsequent attempt doubles it.
        backoff_cap: Upper bound on a single backoff sleep.
        jitter: Relative jitter applied to every backoff (0 = none,
            0.25 = +/-25%). Drawn from a seeded RNG so retry traces are
            replayable.
        jitter_seed: Seed of that RNG.
        failover: Route a write whose planned tier is down/full to the
            next tier that fits (the SHI write-failover path).
        verify_checksums: Record a CRC32 per stored piece at write time
            and verify it on every read (corruption detection).
        read_repair_retries: Extra re-reads attempted when a checksum
            mismatch is detected before surfacing ``CorruptDataError``
            (transient media/bus corruption heals on re-read).
        quarantine_after_repairs: Failed read-repair cycles tolerated for
            one piece before it is quarantined — subsequent reads fail
            fast with :class:`~repro.errors.IntegrityError` instead of
            burning the retry budget again. The background scrubber lifts
            the quarantine when a later repair heals the piece in place.
        retry_deadline: Cap on *cumulative* backoff charged to one
            operation across every retry and failover candidate, in
            (simulated) seconds. Attempt counts bound retries per tier,
            but a failover chain multiplies them; once total charged
            backoff crosses this cap the operation fails with
            ``AllTiersUnavailableError`` instead of stalling further.
            ``None`` keeps the attempt-count-only behavior.
    """

    max_retries: int = 3
    backoff_base: float = 0.002
    backoff_cap: float = 0.25
    jitter: float = 0.25
    jitter_seed: int = 0
    failover: bool = True
    verify_checksums: bool = True
    read_repair_retries: int = 2
    quarantine_after_repairs: int = 3
    retry_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_deadline is not None and self.retry_deadline <= 0:
            raise ValueError("retry_deadline must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.read_repair_retries < 0:
            raise ValueError("read_repair_retries must be >= 0")
        if self.quarantine_after_repairs < 1:
            raise ValueError("quarantine_after_repairs must be >= 1")

    def backoff_seconds(self, attempt: int, rng) -> float:
        """Backoff before retry ``attempt`` (1-based): exponential with
        seeded jitter, charged to the simulated clock by the caller."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass(frozen=True)
class HCompressConfig:
    """Configuration for an :class:`~repro.core.hcompress.HCompress` engine.

    Attributes:
        priority: Initial workload priority (Table II presets or custom).
        feedback_every_n: Operations between feedback flushes into the CCP.
        grain: Sub-task split alignment (the paper's 4096 bytes).
        libraries: Codec roster; defaults to the paper's eleven.
        load_factor: Queue-depth sensitivity of the HCDP cost model.
        drain_penalty: Scale of the engine's amortised capacity-pressure
            term (0 disables; see the placement ablation bench).
        seed_path: JSON seed to bootstrap from / finalize to (optional).
        monitor_interval: System Monitor refresh period in seconds of the
            monitor's clock domain.
        python_to_native: Calibration divisor applied to measured Python
            wall time of engine-internal stages when reporting the Fig. 3
            anatomy, so overheads are comparable to the paper's native
            implementation (see DESIGN.md fidelity notes).
        resilience: Retry/failover/checksum policy of the resilient I/O
            paths (see :class:`ResilienceConfig`).
        plan_cache: Cross-task plan-cache policy of the HCDP engine
            (see :class:`~repro.hcdp.plan_cache.PlanCacheConfig`).
        executor: Concurrency policy of the Compression Manager's piece
            execution (see :class:`ExecutorConfig`).
        recovery: Crash-recovery policy — write-ahead journaling of the
            catalog plus checkpoint/restore (see :class:`RecoveryConfig`).
            Disabled by default; enabling requires a recovery directory.
        observability: Telemetry opt-in (see
            :class:`~repro.obs.ObservabilityConfig`). Disabled by default;
            when disabled the engine carries no observability object and
            instrumented paths pay only an ``is None`` check.
        qos: Overload-protection policy — admission control, per-tier
            circuit breakers, deadlines, brownout ladder (see
            :class:`~repro.qos.QosConfig`). Disabled by default; when
            disabled the engine constructs no governor and behavior is
            byte-identical to a build without the subsystem.
        lifecycle: Lifecycle-tiering policy — the background daemon that
            re-decides tier + codec as data heats or cools, driven by a
            TCO cost model (see
            :class:`~repro.lifecycle.LifecycleConfig`). Disabled by
            default; when disabled the engine constructs no daemon and
            behavior is byte-identical to a build without the subsystem.
        scrub: End-to-end integrity policy — content digests of the
            uncompressed payload recorded in the catalog, optional
            digest verification on read, and the background scrubbing /
            self-healing-repair daemon (see
            :class:`~repro.scrub.ScrubConfig`). Everything defaults
            off; catalogs, journals, and snapshots then stay
            byte-identical to a build without the subsystem.
    """

    priority: Priority = EQUAL
    feedback_every_n: int = 16
    grain: int = PAGE
    libraries: tuple[str, ...] = field(default_factory=lambda: PAPER_LIBRARIES)
    load_factor: float = 1.0
    drain_penalty: float = 1.0
    seed_path: str | Path | None = None
    monitor_interval: float = 0.0
    python_to_native: float = 50.0
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    plan_cache: PlanCacheConfig = field(default_factory=PlanCacheConfig)
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    qos: QosConfig = field(default_factory=QosConfig)
    lifecycle: LifecycleConfig = field(default_factory=LifecycleConfig)
    scrub: ScrubConfig = field(default_factory=ScrubConfig)

    def __post_init__(self) -> None:
        if self.feedback_every_n < 1:
            raise ValueError("feedback_every_n must be >= 1")
        if self.grain < 1:
            raise ValueError("grain must be >= 1")
        if self.load_factor < 0:
            raise ValueError("load_factor must be >= 0")
        if self.drain_penalty < 0:
            raise ValueError("drain_penalty must be >= 0")
        if self.python_to_native <= 0:
            raise ValueError("python_to_native must be positive")
