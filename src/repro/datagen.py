"""Synthetic data generators by (dtype, distribution) — the profiler's
input corpus and the micro-benchmarks' payload source.

Lives at the package root (not under ``workloads``) because the core
profiler also consumes it; keeping it dependency-light avoids import
cycles.

Each generator produces real bytes whose statistical class matches its
label, so the Input Analyzer, the codecs, and the Compression Cost
Predictor all see self-consistent data. Generation is deterministic given
the numpy Generator passed in.
"""

from __future__ import annotations

import numpy as np

from .errors import WorkloadError

__all__ = [
    "DISTRIBUTIONS",
    "DTYPES",
    "synthetic_values",
    "synthetic_buffer",
    "synthetic_text",
    "corpus",
]

DISTRIBUTIONS = ("uniform", "normal", "exponential", "gamma")
DTYPES = ("float64", "float32", "int64", "int32")

#: Quantisation keeps mantissas from being pure entropy: scientific data is
#: measured/accumulated at finite precision, which is what compressors
#: actually exploit on float streams.
_QUANTA = 1.0 / 4096.0


def synthetic_values(
    distribution: str, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Float64 draws from one of the paper's four distribution classes."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if distribution == "uniform":
        values = rng.uniform(0.0, 1000.0, count)
    elif distribution == "normal":
        values = rng.normal(500.0, 40.0, count)
    elif distribution == "exponential":
        values = rng.exponential(120.0, count)
    elif distribution == "gamma":
        values = rng.gamma(2.0, 60.0, count)
    else:
        raise WorkloadError(f"unknown distribution {distribution!r}")
    return values


def synthetic_buffer(
    dtype: str,
    distribution: str,
    nbytes: int,
    rng: np.random.Generator,
    quantise: bool = True,
) -> bytes:
    """A buffer of approximately ``nbytes`` of the given class.

    The result is exactly ``nbytes`` long (truncated to whole elements then
    zero-padded), so callers can treat it as an opaque I/O payload.
    """
    if nbytes < 0:
        raise WorkloadError(f"nbytes must be >= 0, got {nbytes}")
    np_dtype = np.dtype(dtype)
    count = max(nbytes // np_dtype.itemsize, 0)
    values = synthetic_values(distribution, count, rng)
    if quantise:
        values = np.round(values / _QUANTA) * _QUANTA
    if np_dtype.kind in "iu":
        values = np.clip(values, 0, None)
        array = values.astype(np_dtype)
    else:
        array = values.astype(np_dtype)
    raw = array.tobytes()
    if len(raw) < nbytes:
        raw += bytes(nbytes - len(raw))
    return raw[:nbytes]


_WORDS = (
    "pressure velocity density momentum energy particle timestep checkpoint "
    "simulation lattice plasma field flux boundary kernel tensor gradient "
    "entropy vortex domain halo exchange stencil residual solver iteration"
).split()


def synthetic_text(nbytes: int, rng: np.random.Generator) -> bytes:
    """Plausible log/CSV-adjacent prose for the text data class."""
    if nbytes < 0:
        raise WorkloadError(f"nbytes must be >= 0, got {nbytes}")
    parts: list[str] = []
    total = 0
    while total < nbytes:
        line = " ".join(rng.choice(_WORDS) for _ in range(12))
        line = f"{line} value={rng.integers(0, 10_000)}\n"
        parts.append(line)
        total += len(line)
    return "".join(parts).encode("ascii")[:nbytes]


def corpus(
    nbytes: int, rng: np.random.Generator, include_text: bool = True
) -> dict[tuple[str, str], bytes]:
    """The profiler's standard input corpus.

    Keys are (dtype, distribution); text is keyed ("text", "text").
    """
    out: dict[tuple[str, str], bytes] = {}
    for dtype in DTYPES:
        for distribution in DISTRIBUTIONS:
            out[(dtype, distribution)] = synthetic_buffer(
                dtype, distribution, nbytes, rng
            )
    if include_text:
        out[("text", "text")] = synthetic_text(nbytes, rng)
    return out
