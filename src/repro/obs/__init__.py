"""``repro.obs`` — zero-dependency observability for the HCompress engine.

Three primitives compose the subsystem (see docs/OBSERVABILITY.md):

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counter / gauge /
  fixed-bucket histogram families with one JSON export path;
* :class:`~repro.obs.tracer.Tracer` — structured nested spans carrying
  both wall and modeled (simulated-clock) durations, exportable to
  Chrome's ``chrome://tracing`` format;
* :class:`~repro.obs.hooks.ProfilingHooks` — per-site enter/exit
  callbacks on the engine's hot paths.

:class:`~repro.obs.observability.Observability` bundles all three behind
the ``record_*`` / ``sync_*`` surface the engine uses, and
:class:`~repro.obs.observability.ObservabilityConfig` is the opt-in knob
carried by ``HCompressConfig`` (disabled by default; disabled means the
engine holds no observability object at all).
"""

from .hooks import ProfilingHooks
from .observability import Observability, ObservabilityConfig
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from .tracer import NULL_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "ObservabilityConfig",
    "ProfilingHooks",
    "Span",
    "SpanRecord",
    "Tracer",
    "merge_registries",
]
