"""Lightweight enter/exit profiling hooks for the engine's hot paths.

A :class:`ProfilingHooks` instance is a per-site callback table: consumers
register ``on_enter`` / ``on_exit`` callables against a site name (the
span taxonomy of docs/OBSERVABILITY.md — ``"hcdp.plan"``, ``"shi.write"``,
``"flusher.poll"``, ...) or against the wildcard ``"*"`` to observe every
site. Instrumented code fires ``hooks.enter(site, **ctx)`` before the hot
region and ``hooks.exit(site, **ctx)`` after it, passing whatever context
the site naturally has (task id, tier, byte counts, outcome).

The design constraint is the disabled fast path: an instance with no
registered callbacks costs one truthiness check per fire, and HCompress
holds no hooks object at all (``None``) unless observability is on.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["ProfilingHooks"]

HookFn = Callable[..., None]


class ProfilingHooks:
    """Per-site enter/exit callback registry."""

    __slots__ = ("_enter", "_exit", "fired")

    def __init__(self) -> None:
        self._enter: dict[str, list[HookFn]] = {}
        self._exit: dict[str, list[HookFn]] = {}
        self.fired = 0

    # -- registration --------------------------------------------------------

    def on_enter(self, site: str, fn: HookFn) -> HookFn:
        """Register ``fn(site, **ctx)`` to run when ``site`` is entered.

        ``site="*"`` observes every site. Returns ``fn`` (decorator-friendly).
        """
        self._enter.setdefault(site, []).append(fn)
        return fn

    def on_exit(self, site: str, fn: HookFn) -> HookFn:
        """Register ``fn(site, **ctx)`` to run when ``site`` exits."""
        self._exit.setdefault(site, []).append(fn)
        return fn

    def clear(self) -> None:
        self._enter.clear()
        self._exit.clear()

    @property
    def empty(self) -> bool:
        return not self._enter and not self._exit

    # -- firing (instrumentation side) ---------------------------------------

    def enter(self, site: str, **ctx) -> None:
        if not self._enter:
            return
        for fn in self._enter.get(site, ()):
            fn(site, **ctx)
            self.fired += 1
        for fn in self._enter.get("*", ()):
            fn(site, **ctx)
            self.fired += 1

    def exit(self, site: str, **ctx) -> None:
        if not self._exit:
            return
        for fn in self._exit.get(site, ()):
            fn(site, **ctx)
            self.fired += 1
        for fn in self._exit.get("*", ()):
            fn(site, **ctx)
            self.fired += 1
