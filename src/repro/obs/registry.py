"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Zero-dependency, label-aware metric families in the Prometheus idiom,
sized for an in-process engine rather than a scrape endpoint. A family
(``Counter``, ``Gauge``, ``Histogram``) owns one series per distinct
label-value combination; an unlabeled family is its own single series.

Two write disciplines coexist by design (docs/OBSERVABILITY.md):

* **Push** series are incremented at the instrumentation site (per piece,
  per retry) — the hot-path cost is one dict lookup and an add.
* **Mirror** series are *set* from a legacy ad-hoc counter at export time
  (``Counter.set``); the legacy structure stays the source of truth and
  the registry is the shared export path. The telemetry-drift regression
  test (``tests/obs``) holds the two views equal.

Everything here is plain Python with no locks: HCompress instruments only
its serial control path (codec worker threads never touch the registry).
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field

from ..errors import HCompressError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "merge_registries",
]

#: Default histogram bucket upper bounds for durations in seconds.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Default buckets for compression ratios (1.0 = incompressible).
DEFAULT_RATIO_BUCKETS: tuple[float, ...] = (
    1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 20.0,
)

#: Default buckets for byte sizes (4 KiB .. 1 GiB).
DEFAULT_BYTES_BUCKETS: tuple[float, ...] = tuple(
    float(4096 << (2 * i)) for i in range(10)
)


def _series_key(
    labelnames: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise HCompressError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


@dataclass
class _CounterSeries:
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise HCompressError("counters only increase; use a Gauge")
        self.value += amount

    def set(self, value: float) -> None:
        """Mirror-sync: overwrite with an externally accumulated total."""
        self.value = value


@dataclass
class _GaugeSeries:
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramSeries:
    """Fixed-bucket histogram: counts per upper bound, plus sum/count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1: overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Family:
    """Shared plumbing of a labeled metric family."""

    kind = "abstract"
    _series_cls: type | None = None

    def __init__(
        self, name: str, help: str, labelnames: tuple[str, ...] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], object] = {}

    def _make_series(self):
        return self._series_cls()  # type: ignore[misc]

    def labels(self, **labels: str):
        """The child series for one label-value combination (auto-created)."""
        key = _series_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = self._make_series()
            self._series[key] = series
        return series

    def _default(self):
        """The unlabeled series (only valid for label-less families)."""
        if self.labelnames:
            raise HCompressError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                f"use .labels(...)"
            )
        return self.labels()

    def series_items(self):
        """Iterate ``(labels dict, series)`` pairs in insertion order."""
        for key, series in self._series.items():
            yield dict(zip(self.labelnames, key)), series


class Counter(_Family):
    """Monotone counter family; ``set`` exists only for mirror-sync."""

    kind = "counter"
    _series_cls = _CounterSeries

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    @property
    def value(self) -> float:
        """Total across every series of the family."""
        return sum(s.value for s in self._series.values())


class Gauge(_Family):
    """Point-in-time value family."""

    kind = "gauge"
    _series_cls = _GaugeSeries

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return sum(s.value for s in self._series.values())


class Histogram(_Family):
    """Fixed-bucket distribution family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        if not buckets or list(buckets) != sorted(buckets):
            raise HCompressError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)

    def _make_series(self):
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)


@dataclass
class MetricsRegistry:
    """A named collection of metric families with one JSON export path.

    Families are created idempotently: asking for an existing name returns
    the registered family (declarations must agree on kind and labels, or
    :class:`~repro.errors.HCompressError` is raised — silent redefinition
    is how telemetry drifts).
    """

    _families: dict[str, _Family] = field(default_factory=dict)

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if (
                existing.kind != family.kind
                or existing.labelnames != family.labelnames
            ):
                raise HCompressError(
                    f"metric {family.name!r} re-declared with a different "
                    f"kind or label set"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets))  # type: ignore[return-value]

    # -- queries -------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> _Family | None:
        return self._families.get(name)

    def names(self) -> list[str]:
        return sorted(self._families)

    def value(self, name: str, **labels: str) -> float:
        """One series' current value (counters/gauges only)."""
        family = self._families.get(name)
        if family is None:
            raise HCompressError(f"no metric named {name!r}")
        if isinstance(family, Histogram):
            raise HCompressError(
                f"{name!r} is a histogram; read .labels(...).sum/.count"
            )
        series = family.labels(**labels)
        return series.value  # type: ignore[union-attr]

    # -- export --------------------------------------------------------------

    def collect(self) -> dict:
        """Stable JSON-ready snapshot of every family.

        Schema (``hcompress.metrics.v1``): families sorted by name, series
        in creation order; histogram series carry bucket bounds alongside
        per-bucket counts (the final count is the overflow bucket).
        """
        out: dict = {"schema": "hcompress.metrics.v1", "metrics": {}}
        for name in sorted(self._families):
            family = self._families[name]
            entry: dict = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "series": [],
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            for labels, series in family.series_items():
                if isinstance(series, _HistogramSeries):
                    entry["series"].append(
                        {
                            "labels": labels,
                            "counts": list(series.counts),
                            "sum": series.sum,
                            "count": series.count,
                        }
                    )
                else:
                    entry["series"].append(
                        {"labels": labels, "value": series.value}  # type: ignore[union-attr]
                    )
            out["metrics"][name] = entry
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.collect(), indent=indent, sort_keys=False)


def merge_registries(
    named: "list[tuple[str, MetricsRegistry]]", label: str = "shard"
) -> MetricsRegistry:
    """Merge several engines' registries into one, adding a ``label``.

    Each input registry's families reappear in the merged registry with
    ``label`` appended to their label names and every series tagged with
    that registry's name (e.g. ``shard="3"``), so a sharded deployment
    exports one ``hcompress.metrics.v1`` document with per-shard series
    instead of N disjoint documents. Inputs are untouched; family kinds,
    help text, and histogram buckets must agree across registries (they
    do by construction — every shard runs the same instrumentation).

    This is an aggregation of *distinct engines*; a single-engine export
    must not pass through here (the CLI's one-shard path exports the
    engine's own registry untouched, keeping output byte-identical to an
    unsharded run).
    """
    merged = MetricsRegistry()
    for registry_name, registry in named:
        for family_name in sorted(registry._families):
            family = registry._families[family_name]
            if label in family.labelnames:
                raise HCompressError(
                    f"metric {family_name!r} already has a {label!r} label"
                )
            labelnames = family.labelnames + (label,)
            if isinstance(family, Histogram):
                target = merged.histogram(
                    family_name, family.help, labelnames, family.buckets
                )
            elif isinstance(family, Counter):
                target = merged.counter(family_name, family.help, labelnames)
            else:
                target = merged.gauge(family_name, family.help, labelnames)
            for labels, series in family.series_items():
                out = target.labels(**labels, **{label: registry_name})
                if isinstance(series, _HistogramSeries):
                    out.counts = list(series.counts)
                    out.sum = series.sum
                    out.count = series.count
                else:
                    out.set(series.value)  # type: ignore[union-attr]
    return merged
