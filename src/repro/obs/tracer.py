"""Structured span tracer with dual wall/modeled timelines.

A span is one timed region of the engine's control path
(``tracer.span("hcdp.plan", task="t0")``). Spans nest via an explicit
stack, so a finished trace reconstructs the call tree without any
interpreter-level magic. Every span carries *two* durations:

* **wall** — real ``time.perf_counter`` seconds spent inside the region
  (Python implementation cost), and
* **modeled** — simulated seconds attributed to the region, read from an
  optional modeled clock at enter/exit and/or charged explicitly with
  :meth:`Span.charge_modeled` (compression and I/O times in this repo are
  modeled quantities computed by the engine, not observed on a clock).

This is the split DESIGN.md §6 describes: the reproduction's honest
answer to "where did this task's time go?" needs both numbers side by
side, which is exactly what the Chrome export shows — a ``wall`` process
row and a ``modeled`` process row over one shared timeline.

The trace buffer is a bounded ring (oldest spans drop first), so tracing
a long run cannot exhaust memory.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Span", "SpanRecord", "Tracer", "NULL_SPAN"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, immutable."""

    name: str
    start_wall: float  # seconds since the tracer was created
    wall_seconds: float
    start_modeled: float | None  # modeled clock at enter (None: no clock)
    modeled_seconds: float  # clock delta + explicit charges
    depth: int
    index: int  # creation order, unique per tracer
    parent_index: int | None
    attrs: dict = field(default_factory=dict)


class Span:
    """A live span handle: context manager + attribute/charge sink."""

    __slots__ = (
        "_tracer", "name", "attrs", "_start_wall", "_start_modeled",
        "_charged", "depth", "index", "parent_index",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._charged = 0.0
        self._start_wall = 0.0
        self._start_modeled: float | None = None
        self.depth = 0
        self.index = 0
        self.parent_index: int | None = None

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def charge_modeled(self, seconds: float) -> None:
        """Attribute ``seconds`` of simulated time to this span."""
        self._charged += seconds

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._exit(self)


class _NullSpan:
    """Shared no-op span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def set_attr(self, key: str, value) -> None:
        pass

    def charge_modeled(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Span recorder over a bounded ring buffer.

    Args:
        modeled_clock: Optional zero-argument callable returning the
            current simulated time; when present, spans also record the
            modeled-clock delta across their lifetime.
        max_spans: Ring-buffer capacity for finished spans.
        enabled: When False, :meth:`span` returns the shared
            :data:`NULL_SPAN` and nothing is recorded.
    """

    def __init__(
        self,
        modeled_clock: Callable[[], float] | None = None,
        max_spans: int = 10_000,
        enabled: bool = True,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = enabled
        self.modeled_clock = modeled_clock
        self.spans: deque[SpanRecord] = deque(maxlen=max_spans)
        self._origin = time.perf_counter()
        self._stack: list[Span] = []
        self._next_index = 0
        self.dropped = 0  # finished spans evicted by the ring bound

    def span(self, name: str, **attrs):
        """Open a span (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    # -- span lifecycle (called by Span) -------------------------------------

    def _enter(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.index = self._next_index
        self._next_index += 1
        span.parent_index = self._stack[-1].index if self._stack else None
        self._stack.append(span)
        if self.modeled_clock is not None:
            span._start_modeled = self.modeled_clock()
        span._start_wall = time.perf_counter()

    def _exit(self, span: Span) -> None:
        wall = time.perf_counter() - span._start_wall
        modeled = span._charged
        if span._start_modeled is not None:
            modeled += self.modeled_clock() - span._start_modeled
        # Tolerate exceptions unwinding through enclosing spans.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if len(self.spans) == self.spans.maxlen:
            self.dropped += 1
        self.spans.append(
            SpanRecord(
                name=span.name,
                start_wall=span._start_wall - self._origin,
                wall_seconds=wall,
                start_modeled=span._start_modeled,
                modeled_seconds=modeled,
                depth=span.depth,
                index=span.index,
                parent_index=span.parent_index,
                attrs=span.attrs,
            )
        )

    # -- aggregation ---------------------------------------------------------

    def by_name(self) -> dict[str, dict]:
        """Per-span-name rollup: count and total wall/modeled seconds."""
        rollup: dict[str, dict] = {}
        for record in self.spans:
            entry = rollup.setdefault(
                record.name,
                {"count": 0, "wall_seconds": 0.0, "modeled_seconds": 0.0},
            )
            entry["count"] += 1
            entry["wall_seconds"] += record.wall_seconds
            entry["modeled_seconds"] += record.modeled_seconds
        return rollup

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The trace in Chrome's trace-event JSON format.

        Load the file at ``chrome://tracing`` (or https://ui.perfetto.dev).
        Spans appear twice: on the ``wall`` process with real durations,
        and — when any modeled time was recorded — on the ``modeled``
        process with simulated durations laid out on the span's modeled
        start (falling back to its wall start when no modeled clock ran).
        All timestamps are microseconds, as the format requires.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "wall"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "tid": 0,
                "args": {"name": "modeled"},
            },
        ]
        for record in self.spans:
            args = dict(record.attrs)
            args["modeled_seconds"] = round(record.modeled_seconds, 9)
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": record.depth,
                    "ts": round(record.start_wall * 1e6, 3),
                    "dur": max(round(record.wall_seconds * 1e6, 3), 0.001),
                    "args": args,
                }
            )
            if record.modeled_seconds > 0.0:
                start = (
                    record.start_modeled
                    if record.start_modeled is not None
                    else record.start_wall
                )
                events.append(
                    {
                        "name": record.name,
                        "ph": "X",
                        "pid": 2,
                        "tid": record.depth,
                        "ts": round(start * 1e6, 3),
                        "dur": max(round(record.modeled_seconds * 1e6, 3), 0.001),
                        "args": args,
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
