"""The observability facade: config, instrumentation surface, export.

One :class:`Observability` object per HCompress engine bundles the three
primitives — a :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.tracer.Tracer`, and :class:`~repro.obs.hooks.ProfilingHooks`
— behind the handful of ``record_*`` calls the hot paths make.

Overhead contract (docs/OBSERVABILITY.md): when
``ObservabilityConfig.enabled`` is False (the default), no
``Observability`` object exists at all — every instrumented component
holds ``obs=None`` and pays one identity check per operation
(``benchmarks/bench_obs.py`` verifies the plan path regresses < 2%).
When enabled, hot-path cost is a few dict lookups and float adds per
operation.

Metric families follow two disciplines, split deliberately:

* **push** — incremented at the instrumentation site (per plan, per
  piece, per SHI receipt, per retry). These are *independent
  accumulations*, cross-checked against the legacy ad-hoc counters by
  the telemetry-drift regression tests.
* **mirror** — set from the legacy counters (``EngineStats``,
  ``ResilienceStats``, ``FlushStats``, ``InjectorStats``, ``Anatomy``)
  by the ``sync_*`` methods at export time, so every pre-existing
  counter shares the registry's one export path without rewriting its
  increment sites.

This module deliberately imports nothing from ``repro.core`` /
``repro.hcdp`` — consumers hand their objects in duck-typed, which keeps
``repro.obs`` a leaf package every layer can depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .hooks import ProfilingHooks
from .registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)
from .tracer import Tracer

__all__ = ["ObservabilityConfig", "Observability"]

#: Buckets for per-plan wall time (planning is sub-millisecond when cached).
PLAN_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0,
)


@dataclass(frozen=True)
class ObservabilityConfig:
    """Telemetry knobs of an HCompress engine.

    Attributes:
        enabled: Master switch. Off (the default) means no registry, no
            tracer, no hooks — the instrumented call sites reduce to an
            ``obs is None`` check.
        tracing: Record spans (metrics stay on when this is off).
        max_spans: Ring-buffer bound on retained finished spans.
    """

    enabled: bool = False
    tracing: bool = True
    max_spans: int = 10_000

    def __post_init__(self) -> None:
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")


class _Region:
    """Combined span + enter/exit hook firing for one instrumented site."""

    __slots__ = ("_obs", "_site", "_ctx", "_span")

    def __init__(self, obs: "Observability", site: str, ctx: dict) -> None:
        self._obs = obs
        self._site = site
        self._ctx = ctx

    def __enter__(self):
        self._obs.hooks.enter(self._site, **self._ctx)
        self._span = self._obs.tracer.span(self._site, **self._ctx)
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        # Exit hooks see the final span attributes (outcome annotations
        # like cache=hit land on the span during the region).
        self._obs.hooks.exit(self._site, **getattr(self._span, "attrs", self._ctx))


class Observability:
    """Live telemetry for one engine: registry + tracer + hooks.

    Args:
        config: Knobs; an all-defaults (disabled) config still produces a
            working object — consumers that want the hard-off fast path
            hold ``None`` instead.
        modeled_clock: Optional simulated-time source for the tracer.
    """

    def __init__(
        self,
        config: ObservabilityConfig | None = None,
        modeled_clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            modeled_clock=modeled_clock,
            max_spans=self.config.max_spans,
            enabled=self.config.tracing,
        )
        self.hooks = ProfilingHooks()
        reg = self.registry

        # -- push families (incremented on the hot paths) --------------------
        self.m_tasks = reg.counter(
            "hcompress_tasks_total", "operations executed", ("op",)
        )
        self.m_task_bytes = reg.histogram(
            "hcompress_task_bytes", "modeled task sizes", ("op",),
            buckets=DEFAULT_BYTES_BUCKETS,
        )
        self.m_tier_ops = reg.counter(
            "hcompress_tier_ops_total", "SHI operations per tier", ("tier", "op")
        )
        self.m_tier_bytes = reg.counter(
            "hcompress_tier_bytes_total",
            "accounted bytes moved through the SHI per tier", ("tier", "op"),
        )
        self.m_tier_seconds = reg.counter(
            "hcompress_tier_io_seconds_total",
            "modeled I/O seconds charged per tier (backoff included)",
            ("tier", "op"),
        )
        self.m_retries = reg.counter(
            "hcompress_shi_retries_total", "transient-error retries", ("tier",)
        )
        self.m_backoff = reg.counter(
            "hcompress_shi_backoff_seconds_total",
            "modeled backoff charged while retrying", ("tier",),
        )
        self.m_failovers = reg.counter(
            "hcompress_shi_failovers_total",
            "writes rerouted around a down/full tier", ("from_tier", "to_tier"),
        )
        self.m_exhausted = reg.counter(
            "hcompress_shi_exhausted_total",
            "operations that spent their whole retry budget", ("tier",),
        )
        self.m_plans = reg.counter(
            "hcompress_plans_total", "HCDP plan calls by outcome", ("result",)
        )
        self.m_plan_seconds = reg.histogram(
            "hcompress_plan_seconds", "wall seconds per HCDP plan call",
            buckets=PLAN_SECONDS_BUCKETS,
        )
        self.m_codec_pieces = reg.counter(
            "hcompress_codec_pieces_total", "pieces written per codec", ("codec",)
        )
        self.m_codec_bytes = reg.counter(
            "hcompress_codec_bytes_total",
            "uncompressed bytes routed through each codec", ("codec",),
        )
        self.m_codec_seconds = reg.counter(
            "hcompress_codec_compress_seconds_total",
            "modeled compression seconds per codec", ("codec",),
        )
        self.m_codec_ratio = reg.histogram(
            "hcompress_codec_ratio", "measured per-piece compression ratios",
            ("codec",), buckets=DEFAULT_RATIO_BUCKETS,
        )
        self.m_recovery_checkpoints = reg.counter(
            "hcompress_recovery_checkpoints_total",
            "engine snapshots written",
        )
        self.m_recovery_checkpoint_bytes = reg.counter(
            "hcompress_recovery_checkpoint_bytes_total",
            "snapshot file bytes written",
        )
        self.m_recovery_restores = reg.counter(
            "hcompress_recovery_restores_total",
            "engines rebuilt from snapshot + journal",
        )
        self.m_recovery_replayed = reg.counter(
            "hcompress_recovery_replayed_records_total",
            "journal records applied on top of a snapshot at restore",
        )
        self.m_recovery_gc = reg.counter(
            "hcompress_recovery_gc_evictions_total",
            "tier extents reclaimed by the restore sweep", ("reason",),
        )
        self.m_qos_admitted = reg.counter(
            "hcompress_qos_admitted_total",
            "tasks admitted by QoS admission control", ("qos_class",),
        )
        self.m_qos_shed = reg.counter(
            "hcompress_qos_shed_total",
            "tasks shed by QoS admission control", ("qos_class",),
        )
        self.m_breaker_state = reg.gauge(
            "hcompress_qos_breaker_state",
            "circuit-breaker state per tier (0 closed, 1 half-open, 2 open)",
            ("tier",),
        )
        self.m_breaker_transitions = reg.counter(
            "hcompress_qos_breaker_transitions_total",
            "circuit-breaker state changes per tier", ("tier",),
        )
        self.m_brownout_level = reg.gauge(
            "hcompress_qos_brownout_level",
            "current brownout ladder rung (0 normal .. 3 shed)",
        )
        self.m_brownout_transitions = reg.counter(
            "hcompress_qos_brownout_transitions_total",
            "brownout ladder moves (either direction)",
        )
        self.m_deadline_exceeded = reg.counter(
            "hcompress_qos_deadline_exceeded_total",
            "operations that ran out of deadline budget", ("op",),
        )
        self.m_deadline_slack = reg.histogram(
            "hcompress_qos_deadline_slack_seconds",
            "remaining budget of operations that met their deadline",
            ("op",), buckets=PLAN_SECONDS_BUCKETS,
        )
        self.m_lifecycle_scans = reg.counter(
            "hcompress_lifecycle_scans_total",
            "lifecycle daemon catalog scans",
        )
        self.m_lifecycle_migrations = reg.counter(
            "hcompress_lifecycle_migrations_total",
            "blobs re-tiered by the lifecycle daemon", ("direction",),
        )
        self.m_lifecycle_bytes = reg.counter(
            "hcompress_lifecycle_bytes_moved_total",
            "stored bytes placed by lifecycle migrations", ("direction",),
        )
        self.m_lifecycle_seconds = reg.counter(
            "hcompress_lifecycle_migration_seconds_total",
            "modeled seconds of migration I/O + transcode",
        )
        self.m_lifecycle_cost = reg.gauge(
            "hcompress_lifecycle_cost_rate",
            "catalog-wide modeled TCO rate ($/s) at the last scan",
        )
        self.m_scrub_steps = reg.counter(
            "hcompress_scrub_steps_total",
            "background scrubber steps executed",
        )
        self.m_scrub_corruptions = reg.counter(
            "hcompress_scrub_corruptions_total",
            "latent corruptions detected by the scrubber's walk",
        )
        self.m_scrub_repairs = reg.counter(
            "hcompress_scrub_repairs_total",
            "scrubber repair outcomes by healing source",
            ("outcome", "source"),
        )
        self.m_repl_shipped = reg.counter(
            "hcompress_replication_shipped_records_total",
            "journal records shipped to standbys", ("shard",),
        )
        self.m_repl_lag = reg.gauge(
            "hcompress_replication_lag_records",
            "records the standby trails the primary by",
            ("shard", "replica"),
        )
        self.m_repl_promotions = reg.counter(
            "hcompress_replication_promotions_total",
            "standby promotions completed (failovers)", ("shard",),
        )
        self.m_repl_catchups = reg.counter(
            "hcompress_replication_catchups_total",
            "anti-entropy catch-up passes over a standby set", ("shard",),
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def region(self, site: str, **ctx) -> _Region:
        """Instrument one region: span + enter/exit hooks, as a context
        manager yielding the live :class:`~repro.obs.tracer.Span`."""
        return _Region(self, site, ctx)

    # -- hot-path recording --------------------------------------------------

    def record_io(self, receipt, op: str) -> None:
        """Account one SHI receipt (tier where the bytes actually landed)."""
        tier = receipt.tier
        self.m_tier_ops.labels(tier=tier, op=op).inc()
        self.m_tier_bytes.labels(tier=tier, op=op).inc(receipt.nbytes)
        self.m_tier_seconds.labels(tier=tier, op=op).inc(receipt.seconds)

    def record_retry(self, tier: str, backoff_seconds: float) -> None:
        self.m_retries.labels(tier=tier).inc()
        self.m_backoff.labels(tier=tier).inc(backoff_seconds)

    def record_failover(self, from_tier: str, to_tier: str) -> None:
        self.m_failovers.labels(from_tier=from_tier, to_tier=to_tier).inc()

    def record_exhausted(self, tier: str) -> None:
        self.m_exhausted.labels(tier=tier).inc()

    def record_plan(self, cache_hit: bool, wall_seconds: float) -> None:
        result = "cache_hit" if cache_hit else "cache_miss"
        self.m_plans.labels(result=result).inc()
        self.m_plan_seconds.observe(wall_seconds)

    def record_write(self, result) -> None:
        """Account one finished write task (a ``WriteResult``)."""
        self.m_tasks.labels(op="write").inc()
        self.m_task_bytes.labels(op="write").observe(result.task.size)
        for piece in result.pieces:
            codec = piece.plan.codec
            self.m_codec_pieces.labels(codec=codec).inc()
            self.m_codec_bytes.labels(codec=codec).inc(piece.plan.length)
            self.m_codec_seconds.labels(codec=codec).inc(piece.compress_seconds)
            self.m_codec_ratio.labels(codec=codec).observe(piece.actual_ratio)

    def record_read(self, result) -> None:
        """Account one finished read task (a ``ReadResult``)."""
        self.m_tasks.labels(op="read").inc()
        self.m_task_bytes.labels(op="read").observe(result.modeled_size)

    def record_checkpoint(self, snapshot_bytes: int) -> None:
        """Account one engine checkpoint."""
        self.m_recovery_checkpoints.inc()
        self.m_recovery_checkpoint_bytes.inc(snapshot_bytes)

    def record_restore(
        self, records_replayed: int, orphans: int, duplicates: int
    ) -> None:
        """Account one snapshot + journal restore (and its GC sweep)."""
        self.m_recovery_restores.inc()
        self.m_recovery_replayed.inc(records_replayed)
        if orphans:
            self.m_recovery_gc.labels(reason="orphan").inc(orphans)
        if duplicates:
            self.m_recovery_gc.labels(reason="duplicate").inc(duplicates)

    def record_qos_admitted(self, qos_class: str) -> None:
        self.m_qos_admitted.labels(qos_class=qos_class).inc()

    def record_qos_shed(self, qos_class: str) -> None:
        self.m_qos_shed.labels(qos_class=qos_class).inc()

    def record_brownout(self, prev_level: int, level: int) -> None:
        """Account one brownout ladder move (either direction)."""
        self.m_brownout_level.set(level)
        self.m_brownout_transitions.inc()

    def record_deadline_exceeded(self, op: str) -> None:
        self.m_deadline_exceeded.labels(op=op).inc()

    def record_deadline_slack(self, op: str, slack_seconds: float) -> None:
        self.m_deadline_slack.labels(op=op).observe(max(slack_seconds, 0.0))

    def record_lifecycle_scan(self) -> None:
        self.m_lifecycle_scans.inc()

    def record_scrub_step(self) -> None:
        self.m_scrub_steps.inc()

    def record_scrub_repair(self, outcome: str, source: str) -> None:
        """Account one scrubber-detected corruption and its fate."""
        self.m_scrub_corruptions.inc()
        self.m_scrub_repairs.labels(
            outcome=outcome, source=source or "none"
        ).inc()

    def record_shard_promotion(self, shard: str) -> None:
        """Account one completed standby promotion (shard failover)."""
        self.m_repl_promotions.labels(shard=shard).inc()

    def record_lifecycle_migration(
        self, direction: str, nbytes: int, modeled_seconds: float
    ) -> None:
        """Account one completed lifecycle migration."""
        self.m_lifecycle_migrations.labels(direction=direction).inc()
        self.m_lifecycle_bytes.labels(direction=direction).inc(nbytes)
        self.m_lifecycle_seconds.inc(modeled_seconds)

    # -- mirror sync (legacy counters -> one export path) --------------------

    def sync_engine(self, engine) -> None:
        """Mirror every legacy ad-hoc counter of an ``HCompress`` engine
        (HCDP stats, SHI resilience trace, manager caches, feedback loop,
        monitor, analyzer, predictor, anatomy) into the registry."""
        reg = self.registry
        stats = engine.engine.stats
        for name, value in (
            ("hcompress_plan_cache_hits_total", stats.plan_cache_hits),
            ("hcompress_plan_cache_misses_total", stats.plan_cache_misses),
            (
                "hcompress_plan_cache_invalidations_total",
                stats.plan_cache_invalidations,
            ),
            ("hcompress_dp_memo_hits_total", stats.memo_hits),
            ("hcompress_dp_memo_misses_total", stats.memo_misses),
            ("hcompress_tasks_planned_total", stats.tasks_planned),
            ("hcompress_pieces_emitted_total", stats.pieces_emitted),
            ("hcompress_degraded_plans_total", stats.degraded_plans),
            ("hcompress_replans_total", engine.replans),
        ):
            reg.counter(name, "mirror of the HCDP engine counters").set(value)

        shi = engine.shi.stats
        reg.counter(
            "hcompress_shi_trace_retries_total",
            "mirror of ResilienceStats.retries",
        ).set(shi.retries)
        reg.counter(
            "hcompress_shi_trace_failovers_total",
            "mirror of ResilienceStats.failovers",
        ).set(shi.failovers)
        reg.counter(
            "hcompress_shi_trace_exhausted_total",
            "mirror of ResilienceStats.exhausted",
        ).set(shi.exhausted)
        reg.counter(
            "hcompress_shi_trace_backoff_seconds_total",
            "mirror of ResilienceStats.backoff_seconds",
        ).set(shi.backoff_seconds)
        trace_events = reg.counter(
            "hcompress_shi_trace_events_total",
            "deterministic SHI trace events by kind", ("kind",),
        )
        by_kind: dict[str, int] = {}
        for event in shi.trace:
            by_kind[event[0]] = by_kind.get(event[0], 0) + 1
        for kind, count in sorted(by_kind.items()):
            trace_events.labels(kind=kind).set(count)

        manager = engine.manager
        for name, value in (
            ("hcompress_sample_cache_hits_total", manager.sample_cache_hits),
            ("hcompress_sample_cache_misses_total", manager.sample_cache_misses),
            ("hcompress_spill_events_total", manager.spill_events),
            ("hcompress_parallel_pieces_total", manager.parallel_pieces),
            ("hcompress_read_repairs_total", manager.read_repairs),
            (
                "hcompress_corruption_detected_total",
                manager.corruption_detected,
            ),
            (
                "hcompress_quarantine_events_total",
                manager.quarantine_events,
            ),
        ):
            reg.counter(name, "mirror of the Compression Manager counters").set(
                value
            )
        reg.gauge(
            "hcompress_quarantined_pieces",
            "pieces currently quarantined (reads fail fast, typed)",
        ).set(len(manager.quarantined))

        feedback = engine.feedback
        reg.counter(
            "hcompress_feedback_events_total", "observations recorded"
        ).set(feedback.events)
        reg.counter(
            "hcompress_feedback_flushes_total", "RLS batch updates"
        ).set(feedback.flushes)
        reg.gauge(
            "hcompress_feedback_pending", "observations awaiting a flush"
        ).set(feedback.pending)

        predictor = engine.predictor
        reg.gauge(
            "hcompress_model_version", "CCP parameter generation"
        ).set(predictor.model_version)
        accuracy = predictor.mean_accuracy()
        if accuracy is not None:
            reg.gauge(
                "hcompress_model_accuracy", "sliding mean R^2 over the heads"
            ).set(accuracy)
        reg.counter(
            "hcompress_ccp_table_cache_hits_total",
            "candidate-table cache hits",
        ).set(predictor.table_cache_hits)
        reg.counter(
            "hcompress_ccp_table_cache_misses_total",
            "candidate-table cache misses",
        ).set(predictor.table_cache_misses)

        monitor = engine.monitor
        reg.counter(
            "hcompress_monitor_samples_total", "fresh hierarchy snapshots"
        ).set(monitor.samples_taken)
        reg.gauge(
            "hcompress_monitor_state_epoch",
            "planning-relevant state transitions observed",
        ).set(monitor.state_epoch)

        analyzer = engine.analyzer
        reg.counter(
            "hcompress_analyzer_cache_hits_total", "input-analysis cache hits"
        ).set(analyzer.cache_hits)
        reg.counter(
            "hcompress_analyzer_cache_misses_total",
            "input analyses that ran inference",
        ).set(analyzer.cache_misses)

        journal = getattr(engine, "journal", None)
        if journal is not None:
            reg.counter(
                "hcompress_recovery_journal_records_total",
                "WAL records appended this engine lifetime",
            ).set(journal.records_appended)
            reg.counter(
                "hcompress_recovery_journal_syncs_total",
                "WAL sync batches (write + flush + fsync)",
            ).set(journal.syncs)
            reg.counter(
                "hcompress_recovery_journal_bytes_total",
                "WAL bytes made durable",
            ).set(journal.bytes_synced)
            reg.gauge(
                "hcompress_recovery_journal_durable_lsn",
                "newest journal record guaranteed on stable storage",
            ).set(journal.durable_lsn)

        anatomy = engine.anatomy
        phase_seconds = reg.counter(
            "hcompress_anatomy_seconds_total",
            "per-stage time accounting (Fig. 3 categories)", ("phase",),
        )
        for phase in (
            "hcdp_engine", "library_selection", "compression", "feedback",
            "write_io", "metadata_parsing", "decompression", "read_feedback",
            "read_io",
        ):
            phase_seconds.labels(phase=phase).set(getattr(anatomy, phase))

        if getattr(engine, "qos", None) is not None:
            self.sync_qos(engine.qos)
        if getattr(engine, "lifecycle", None) is not None:
            self.sync_lifecycle(engine.lifecycle)
        if getattr(engine, "scrub", None) is not None:
            self.sync_scrub(engine.scrub)

    def sync_flusher(self, stats) -> None:
        """Mirror ``FlushStats`` (the background tier drainer)."""
        reg = self.registry
        for name, value in (
            ("hcompress_flusher_moves_total", stats.moves),
            ("hcompress_flusher_bytes_moved_total", stats.bytes_moved),
            ("hcompress_flusher_polls_total", stats.polls),
            ("hcompress_flusher_failed_moves_total", stats.failed_moves),
            (
                "hcompress_flusher_skipped_unavailable_total",
                stats.skipped_unavailable,
            ),
        ):
            reg.counter(name, "mirror of the TierFlusher counters").set(value)

    def sync_qos(self, governor) -> None:
        """Mirror a :class:`~repro.qos.QosGovernor`'s live state: breaker
        states per tier, admission backlog/counters, brownout rung."""
        from ..qos.breaker import HALF_OPEN, OPEN

        reg = self.registry
        admission = governor.admission
        reg.gauge(
            "hcompress_qos_backlog_bytes",
            "admission backlog (modeled bytes awaiting drain)",
        ).set(admission.backlog_bytes)
        for name, value in (
            ("hcompress_qos_admission_admitted_total", admission.admitted),
            ("hcompress_qos_admission_shed_total", admission.shed),
        ):
            reg.counter(name, "mirror of the admission controller").set(value)
        self.m_brownout_level.set(int(governor.brownout.level))
        if governor.breakers is not None:
            code = {OPEN: 2, HALF_OPEN: 1}
            for tier, breaker in governor.breakers.breakers.items():
                self.m_breaker_state.labels(tier=tier).set(
                    code.get(breaker.state, 0)
                )
                self.m_breaker_transitions.labels(tier=tier).set(
                    breaker.transitions
                )

    def sync_lifecycle(self, daemon) -> None:
        """Mirror a :class:`~repro.lifecycle.LifecycleDaemon`'s cumulative
        stats: scans, migrations by direction, bytes/seconds moved, and
        the catalog-wide cost rate at the last scan."""
        reg = self.registry
        stats = daemon.stats
        self.m_lifecycle_scans.set(stats.scans)
        self.m_lifecycle_migrations.labels(direction="promote").set(
            stats.promotions
        )
        self.m_lifecycle_migrations.labels(direction="demote").set(
            stats.demotions
        )
        self.m_lifecycle_seconds.set(stats.migration_seconds)
        self.m_lifecycle_cost.set(stats.cost_rate)
        for name, value in (
            ("hcompress_lifecycle_paused_total", stats.paused),
            ("hcompress_lifecycle_failed_total", stats.failed),
            (
                "hcompress_lifecycle_skipped_quarantined_total",
                stats.skipped_quarantined,
            ),
        ):
            reg.counter(name, "mirror of the lifecycle daemon counters").set(
                value
            )
        reg.gauge(
            "hcompress_lifecycle_tracked_tasks",
            "tasks with a live access-temperature record",
        ).set(len(daemon.access))
        reg.gauge(
            "hcompress_lifecycle_saved_rate",
            "cumulative modeled $/s earned by executed migrations",
        ).set(stats.saved_rate)

    def sync_scrub(self, scrubber) -> None:
        """Mirror a :class:`~repro.scrub.Scrubber`'s cumulative stats:
        steps/scans/pauses, pieces and bytes re-read, corruptions found,
        and repair outcomes by healing source."""
        reg = self.registry
        stats = scrubber.stats
        self.m_scrub_steps.set(stats.steps)
        self.m_scrub_corruptions.set(stats.corruptions)
        by_source: dict[tuple[str, str], int] = {}
        for repair in stats.repair_log:
            key = (repair.outcome, repair.source or "none")
            by_source[key] = by_source.get(key, 0) + 1
        for (outcome, source), count in sorted(by_source.items()):
            self.m_scrub_repairs.labels(outcome=outcome, source=source).set(
                count
            )
        for name, value in (
            ("hcompress_scrub_scans_total", stats.scans),
            ("hcompress_scrub_paused_total", stats.paused),
            ("hcompress_scrub_pieces_scanned_total", stats.pieces_scanned),
            ("hcompress_scrub_bytes_scanned_total", stats.bytes_scanned),
            ("hcompress_scrub_rewrites_total", stats.rewrites),
            ("hcompress_scrub_quarantined_total", stats.quarantined),
            ("hcompress_scrub_failed_total", stats.failed),
        ):
            reg.counter(name, "mirror of the scrubber counters").set(value)

    def sync_replication(self, coordinator, shard_id: int) -> None:
        """Mirror one shard's :class:`~repro.replication.ReplicationCoordinator`
        view: shipped-record and catch-up counters, plus the live lag of
        every standby against the primary's last-shipped LSN."""
        shard = str(shard_id)
        self.m_repl_shipped.labels(shard=shard).set(
            coordinator.shipped_records[shard_id]
        )
        self.m_repl_catchups.labels(shard=shard).set(
            coordinator.catch_ups[shard_id]
        )
        self.m_repl_promotions.labels(shard=shard).set(
            coordinator.failovers[shard_id]
        )
        primary_lsn = coordinator.primary_lsn[shard_id]
        for replica in coordinator.standbys[shard_id]:
            self.m_repl_lag.labels(
                shard=shard, replica=str(replica.replica_id)
            ).set(replica.lag(primary_lsn))

    def sync_injector(self, stats) -> None:
        """Mirror ``InjectorStats`` (the fault-injection event log)."""
        reg = self.registry
        for name, value in (
            ("hcompress_faults_applied_total", stats.events_applied),
            ("hcompress_faults_outages_total", stats.outages),
            ("hcompress_faults_recoveries_total", stats.recoveries),
            ("hcompress_faults_transient_errors_total", stats.transient_errors),
            ("hcompress_faults_corruptions_total", stats.corruptions),
        ):
            reg.counter(name, "mirror of the FaultInjector counters").set(value)
        log_events = reg.counter(
            "hcompress_fault_log_events_total",
            "injector log entries by kind", ("kind",),
        )
        by_kind: dict[str, int] = {}
        for event in stats.log:
            by_kind[str(event[0])] = by_kind.get(str(event[0]), 0) + 1
        for kind, count in sorted(by_kind.items()):
            log_events.labels(kind=kind).set(count)

    # -- export --------------------------------------------------------------

    def export_metrics(self) -> dict:
        """The registry snapshot (schema ``hcompress.metrics.v1``)."""
        return self.registry.collect()

    def export_chrome_trace(self) -> dict:
        """The span buffer in Chrome trace-event format."""
        return self.tracer.to_chrome()

    def summary(self) -> str:
        """Human-readable metrics table (counters/gauges + histogram means)."""
        lines = [f"{'metric':44s} {'labels':28s} {'value':>14s}"]
        snapshot = self.registry.collect()
        for name, family in snapshot["metrics"].items():
            for series in family["series"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in series["labels"].items()
                )
                if family["type"] == "histogram":
                    count = series["count"]
                    mean = series["sum"] / count if count else 0.0
                    value = f"n={count} mean={mean:.4g}"
                else:
                    value = f"{series['value']:.6g}"
                lines.append(f"{name:44s} {labels:28s} {value:>14s}")
        return "\n".join(lines)

    def span_summary(self) -> str:
        """Per-span-name rollup table: count, wall and modeled seconds."""
        lines = [
            f"{'span':28s} {'count':>7s} {'wall_s':>10s} {'modeled_s':>10s}"
        ]
        for name, entry in sorted(self.tracer.by_name().items()):
            lines.append(
                f"{name:28s} {entry['count']:7d} "
                f"{entry['wall_seconds']:10.4f} {entry['modeled_seconds']:10.4f}"
            )
        return "\n".join(lines)
