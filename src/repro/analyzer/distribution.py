"""Content-distribution classification (paper §IV-C).

Certain distributions are more compressible than others (the paper cites
Gribonval et al.), so the Input Analyzer classifies each buffer as Normal,
Gamma, Exponential or Uniform. Classification is static, by matching the
sample's standardised skewness/kurtosis against each family's theoretical
locus — cheap, deterministic, and accurate for the synthetic and scientific
sources the workloads produce.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from .datatype import DataType

__all__ = ["Distribution", "DistributionGuess", "classify_distribution"]

_SAMPLE_VALUES = 16384


class Distribution(str, enum.Enum):
    """Distribution classes the analyzer reports (paper's four + extremes)."""

    UNIFORM = "uniform"
    NORMAL = "normal"
    EXPONENTIAL = "exponential"
    GAMMA = "gamma"
    TEXT = "text"  # character data: distribution over bytes, not values
    ZEROS = "zeros"  # (near-)constant buffers


@dataclass(frozen=True)
class DistributionGuess:
    """Classification result with the moment evidence."""

    distribution: Distribution
    skewness: float
    excess_kurtosis: float
    distance: float


def _moments(values: np.ndarray) -> tuple[float, float]:
    """(skewness, excess kurtosis), numerically guarded."""
    centred = values - values.mean()
    var = float(np.mean(centred**2))
    if var <= 0:
        return 0.0, 0.0
    std = math.sqrt(var)
    skew = float(np.mean(centred**3)) / std**3
    kurt = float(np.mean(centred**4)) / var**2 - 3.0
    return skew, kurt


def _family_distance(skew: float, kurt: float) -> dict[Distribution, float]:
    """Distance from the observed (skew, kurt) point to each family locus.

    Uniform: (0, -1.2). Normal: (0, 0). Exponential: (2, 6).
    Gamma(k): (2/sqrt(k), 6/k) — a curve; distance is minimised over k,
    excluding the near-exponential (k→1) and near-normal (k→inf) ends so
    gamma remains distinguishable from its limit cases.
    """
    def dist(pt: tuple[float, float]) -> float:
        return math.hypot((skew - pt[0]) / 2.0, (kurt - pt[1]) / 6.0)

    out = {
        Distribution.UNIFORM: dist((0.0, -1.2)),
        Distribution.NORMAL: dist((0.0, 0.0)),
        Distribution.EXPONENTIAL: dist((2.0, 6.0)),
    }
    gamma_best = math.inf
    for k in (1.5, 2.0, 3.0, 4.0, 6.0, 9.0):
        gamma_best = min(gamma_best, dist((2.0 / math.sqrt(k), 6.0 / k)))
    out[Distribution.GAMMA] = gamma_best
    return out


def classify_distribution(
    data: bytes, dtype: DataType = DataType.FLOAT64
) -> DistributionGuess:
    """Classify the content distribution of a buffer.

    Args:
        data: Raw bytes.
        dtype: Element type (from :func:`infer_datatype`); character data is
            reported as :attr:`Distribution.TEXT` without moment analysis.
    """
    if dtype in (DataType.TEXT,):
        return DistributionGuess(Distribution.TEXT, 0.0, 0.0, 0.0)
    np_dtype = dtype.numpy_dtype or np.dtype(np.uint8)
    width = np_dtype.itemsize
    usable = len(data) - len(data) % width
    if usable < width * 32:
        return DistributionGuess(Distribution.ZEROS, 0.0, 0.0, 0.0)
    values = np.frombuffer(data[:usable], dtype=np_dtype)
    if values.size > _SAMPLE_VALUES:
        stride = values.size // _SAMPLE_VALUES
        values = values[::stride][:_SAMPLE_VALUES]
    if np.issubdtype(values.dtype, np.floating):
        values = values[np.isfinite(values)]
    values = values.astype(np.float64)
    if values.size < 32:
        return DistributionGuess(Distribution.ZEROS, 0.0, 0.0, 0.0)
    spread = float(values.max() - values.min())
    scale = max(abs(float(values.max())), abs(float(values.min())), 1e-300)
    if spread == 0.0 or spread / scale < 1e-12:
        return DistributionGuess(Distribution.ZEROS, 0.0, 0.0, 0.0)

    skew, kurt = _moments(values)
    distances = _family_distance(skew, kurt)
    best = min(distances, key=distances.__getitem__)
    return DistributionGuess(best, skew, kurt, distances[best])
