"""The Input Analyzer facade (paper §IV-C).

Combines datatype inference, format detection, and distribution
classification into one :class:`InputAnalysis` record — the data-attribute
triple the Compression Cost Predictor keys on. Self-described inputs (our
h5lite container, or caller-provided metadata hints) take the fast path and
skip inference entirely, which is the paper's "extremely fast and accurate
in most practical cases" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hashing import stable_hash32
from .datatype import DataType, infer_datatype
from .distribution import Distribution, classify_distribution
from .format import DataFormat, detect_format

__all__ = ["InputAnalysis", "InputAnalyzer", "MetadataHints"]


@dataclass(frozen=True)
class MetadataHints:
    """Caller-supplied attributes that bypass inference.

    Any field left ``None`` is still inferred; a fully populated hint set
    (the h5lite/HDF5 path) makes analysis O(1).
    """

    dtype: DataType | None = None
    data_format: DataFormat | None = None
    distribution: Distribution | None = None


@dataclass(frozen=True)
class InputAnalysis:
    """The analyzer's output: everything the cost model keys on."""

    size: int
    dtype: DataType
    data_format: DataFormat
    distribution: Distribution
    from_metadata: bool

    def feature_key(self) -> tuple[str, str, str]:
        """(dtype, format, distribution) — the CCP's categorical features."""
        return (self.dtype.value, self.data_format.value, self.distribution.value)


class InputAnalyzer:
    """Stateless analysis facade with an LRU over repeated buffer prefixes.

    Workloads emit many same-shaped buffers (every VPIC checkpoint has the
    same eight float properties); caching on (size, prefix hash) makes the
    steady-state cost of analysis a dict lookup, mirroring how cheap the
    paper measures this stage to be (Fig. 3).
    """

    def __init__(self, cache_size: int = 256) -> None:
        self._cache_size = cache_size
        self._cache: dict[tuple[int, int], InputAnalysis] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def analyze(
        self, data: bytes, hints: MetadataHints | None = None
    ) -> InputAnalysis:
        """Characterise one buffer (optionally short-circuited by hints)."""
        if hints and hints.dtype and hints.data_format and hints.distribution:
            return InputAnalysis(
                size=len(data),
                dtype=hints.dtype,
                data_format=hints.data_format,
                distribution=hints.distribution,
                from_metadata=True,
            )
        # Seeded CRC keys (not builtin hash()): the cache key must be
        # identical across processes whatever PYTHONHASHSEED says.
        key = (
            len(data),
            stable_hash32(data[:256]) ^ (stable_hash32(data[-256:]) << 32),
        )
        cached = self._cache.get(key)
        if cached is not None and hints is None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1

        data_format = (hints.data_format if hints else None) or detect_format(data)
        dtype = (hints.dtype if hints else None)
        if dtype is None:
            if data_format in (DataFormat.CSV, DataFormat.JSON, DataFormat.TEXT):
                dtype = DataType.TEXT
            else:
                dtype = infer_datatype(data).dtype
        distribution = (hints.distribution if hints else None)
        if distribution is None:
            distribution = classify_distribution(data, dtype).distribution

        analysis = InputAnalysis(
            size=len(data),
            dtype=dtype,
            data_format=data_format,
            distribution=distribution,
            from_metadata=hints is not None,
        )
        if hints is None and self._cache_size > 0:
            if len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = analysis
        return analysis
