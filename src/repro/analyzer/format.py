"""Represented-format detection (paper §IV-C).

Self-described formats are recognised by magic-number introspection (the
paper's fast path: "metadata parsing of self-described portable data
representations"); text formats by lightweight structural checks over a
sub-sample; everything else is raw binary.
"""

from __future__ import annotations

import enum

from .datatype import sample_buffer

__all__ = ["DataFormat", "detect_format", "H5LITE_MAGIC"]

#: Magic prefix of our self-describing container (repro.formats.h5lite).
H5LITE_MAGIC = b"\x89H5L\r\n\x1a\n"

_KNOWN_MAGICS: tuple[tuple[bytes, "DataFormat"], ...] = ()


class DataFormat(str, enum.Enum):
    """Formats the analyzer can report."""

    H5LITE = "h5lite"
    CSV = "csv"
    JSON = "json"
    TEXT = "text"
    BINARY = "binary"


def _printable_ratio(sample: bytes) -> float:
    if not sample:
        return 0.0
    printable = sum(1 for b in sample if 32 <= b < 127 or b in (9, 10, 13))
    return printable / len(sample)


def _looks_like_csv(sample: bytes) -> bool:
    """Consistent delimiter counts across the first complete lines."""
    try:
        text = sample.decode("utf-8", errors="strict")
    except UnicodeDecodeError:
        return False
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if len(lines) < 2:
        return False
    lines = lines[:-1] if len(lines) > 2 else lines  # last line may be cut
    for delim in (",", "\t", ";"):
        counts = [ln.count(delim) for ln in lines[:20]]
        if counts[0] >= 1 and len(set(counts)) == 1:
            return True
    return False


def _looks_like_json(sample: bytes) -> bool:
    stripped = sample.lstrip()
    if not stripped or stripped[0] not in (ord("{"), ord("[")):
        return False
    try:
        text = stripped.decode("utf-8", errors="strict")
    except UnicodeDecodeError:
        return False
    # Structural plausibility without a full parse (the sample may be cut):
    # JSON bodies are dense with quotes/colons/brackets.
    structural = sum(text.count(ch) for ch in '{}[]":,')
    return structural / max(len(text), 1) > 0.05


def detect_format(data: bytes) -> DataFormat:
    """Classify a buffer's represented format.

    Magic-number checks run on the true prefix; text checks run on a
    sub-sample so cost is size-independent.
    """
    if not data:
        return DataFormat.BINARY
    if data.startswith(H5LITE_MAGIC):
        return DataFormat.H5LITE
    for magic, fmt in _KNOWN_MAGICS:  # pragma: no cover - extension point
        if data.startswith(magic):
            return fmt
    head = data[:4096]
    if _printable_ratio(head) < 0.9:
        return DataFormat.BINARY
    if _looks_like_json(head):
        return DataFormat.JSON
    if _looks_like_csv(sample_buffer(data, limit=16 * 1024, parts=2)):
        return DataFormat.CSV
    return DataFormat.TEXT
