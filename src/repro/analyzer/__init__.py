"""Input Analyzer: data type, format, and distribution inference."""

from .datatype import DataType, DatatypeGuess, infer_datatype, sample_buffer
from .distribution import Distribution, DistributionGuess, classify_distribution
from .format import H5LITE_MAGIC, DataFormat, detect_format
from .input_analyzer import InputAnalysis, InputAnalyzer, MetadataHints

__all__ = [
    "DataFormat",
    "DataType",
    "DatatypeGuess",
    "Distribution",
    "DistributionGuess",
    "H5LITE_MAGIC",
    "InputAnalysis",
    "InputAnalyzer",
    "MetadataHints",
    "classify_distribution",
    "detect_format",
    "infer_datatype",
    "sample_buffer",
]
