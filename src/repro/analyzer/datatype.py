"""Data-type inference by sub-sampling and binary decoding (paper §IV-C).

Given an opaque buffer, score how plausibly it decodes as each candidate
element type (float64/float32/int64/int32/text/bytes) and return the best
fit. The heuristics mirror the paper's cited techniques: binary decoding
with plausibility scoring, printable-ratio tests for character data, and
sub-sampling so cost is independent of buffer size.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DataType", "DatatypeGuess", "infer_datatype", "sample_buffer"]

_SAMPLE_LIMIT = 64 * 1024
_PRINTABLE = np.zeros(256, dtype=bool)
for _b in range(32, 127):
    _PRINTABLE[_b] = True
for _b in (9, 10, 13):
    _PRINTABLE[_b] = True


class DataType(str, enum.Enum):
    """Element types the analyzer can report."""

    FLOAT64 = "float64"
    FLOAT32 = "float32"
    INT64 = "int64"
    INT32 = "int32"
    TEXT = "text"
    BYTES = "bytes"

    @property
    def numpy_dtype(self) -> np.dtype | None:
        if self in (DataType.TEXT, DataType.BYTES):
            return None
        return np.dtype(self.value)


@dataclass(frozen=True)
class DatatypeGuess:
    """Inference result: the winning type and its per-candidate scores."""

    dtype: DataType
    confidence: float
    scores: dict[str, float]


def sample_buffer(data: bytes, limit: int = _SAMPLE_LIMIT, parts: int = 8) -> bytes:
    """Representative sub-sample: ``parts`` evenly spread slices.

    Slice starts are aligned to 8 bytes so fixed-width element framing is
    preserved in the sample (random partitioning per the paper, but
    deterministic for reproducibility).
    """
    n = len(data)
    if n <= limit:
        return data
    part_len = max(8, (limit // parts) & ~7)
    stride = n // parts
    pieces = []
    for i in range(parts):
        start = (i * stride) & ~7
        pieces.append(data[start : start + part_len])
    return b"".join(pieces)


def _score_text(arr: np.ndarray) -> float:
    """Printable-byte ratio, sharpened so binary data scores near zero."""
    ratio = float(_PRINTABLE[arr].mean())
    return max(0.0, (ratio - 0.5) * 2.0)


def _score_float(sample: bytes, dtype: str) -> float:
    width = np.dtype(dtype).itemsize
    usable = len(sample) - len(sample) % width
    if usable < width * 8:
        return 0.0
    values = np.frombuffer(sample[:usable], dtype=dtype)
    finite = np.isfinite(values)
    finite_ratio = float(finite.mean())
    if finite_ratio < 0.9:
        return 0.0
    finite_vals = np.abs(values[finite])
    nonzero = finite_vals[finite_vals > 0]
    if nonzero.size == 0:
        # All zeros decodes as floats but is better described as bytes.
        return 0.3
    # A large share of *exact* zeros is the signature of a foreign width
    # (e.g. quantised float64 read as float32: every low mantissa word is
    # 0.0) — real measurement streams are rarely half zeros.
    zero_fraction = 1.0 - nonzero.size / finite_vals.size
    width_penalty = 1.0 - 0.8 * max(0.0, zero_fraction - 0.2)
    # Plausible scientific data lives in a narrow, sane exponent band;
    # random bytes reinterpreted as floats scatter across ~600 (f64) /
    # ~80 (f32) decades, and foreign binary (e.g. small ints) lands in the
    # denormal basement. Both factors gate the score multiplicatively.
    log_mag = np.log10(nonzero)
    spread = float(np.percentile(log_mag, 95) - np.percentile(log_mag, 5))
    spread_score = max(0.0, 1.0 - spread / 30.0)
    sane_band = float(((log_mag > -15) & (log_mag < 15)).mean())
    return finite_ratio * spread_score * sane_band * width_penalty


def _score_int(sample: bytes, dtype: str) -> float:
    width = np.dtype(dtype).itemsize
    usable = len(sample) - len(sample) % width
    if usable < width * 8:
        return 0.0
    values = np.frombuffer(sample[:usable], dtype=dtype).astype(np.float64)
    if values.size == 0:
        return 0.0
    mags = np.abs(values)
    max_mag = float(np.iinfo(dtype).max)
    nonzero = mags[mags > 0]
    if nonzero.size == 0:
        return 0.3
    # Real integer datasets use a small slice of the representable range;
    # random bytes fill it uniformly (mean magnitude ~ max/4).
    typical = float(np.median(nonzero))
    occupancy = math.log10(typical + 1) / math.log10(max_mag)
    return max(0.0, 1.0 - occupancy) ** 2


def infer_datatype(data: bytes) -> DatatypeGuess:
    """Best-effort element-type inference over a sub-sample of ``data``.

    Empty input reports ``BYTES`` with zero confidence.
    """
    if len(data) == 0:
        return DatatypeGuess(DataType.BYTES, 0.0, {})
    sample = sample_buffer(data)
    arr = np.frombuffer(sample, dtype=np.uint8)
    scores: dict[str, float] = {
        DataType.TEXT.value: _score_text(arr),
        DataType.FLOAT64.value: _score_float(sample, "float64"),
        DataType.FLOAT32.value: _score_float(sample, "float32"),
        DataType.INT64.value: _score_int(sample, "int64"),
        DataType.INT32.value: _score_int(sample, "int32"),
        DataType.BYTES.value: 0.25,  # the fallback's prior
    }
    # Text wins outright when the buffer is overwhelmingly printable;
    # otherwise printability is noise (ASCII digits inside ints etc.).
    if scores[DataType.TEXT.value] > 0.85:
        best = DataType.TEXT
    else:
        numeric = {k: v for k, v in scores.items() if k != DataType.TEXT.value}
        best = DataType(max(numeric, key=numeric.__getitem__))
    confidence = scores[best.value]
    return DatatypeGuess(best, confidence, scores)
