"""Simulated wall clock.

A tiny monotonic clock owned by the event engine; separate from the engine
so components (System Monitor, trace recorder) can hold a read-only handle
without seeing the event queue.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start negative ({start})")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` (never backwards)."""
        if t < self._now - 1e-12:
            raise SimulationError(
                f"clock moving backwards: {self._now:.9f} -> {t:.9f}"
            )
        self._now = max(self._now, float(t))

    def advance(self, seconds: float) -> float:
        """Move the clock forward by a relative amount; returns the new time.

        The batch drivers use this to charge one aggregated advance per
        batch (the summed modeled seconds of its tasks) where the per-task
        harnesses advance once per task.
        """
        if seconds < 0:
            raise SimulationError(f"cannot advance by negative {seconds}")
        self._now += float(seconds)
        return self._now

    def __repr__(self) -> str:
        return f"<SimClock t={self._now:.6f}s>"
