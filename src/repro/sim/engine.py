"""The discrete-event simulation engine.

Interprets process requests (:class:`Delay`, :class:`IO`, :class:`Barrier`)
against a :class:`StorageHierarchy`: each tier is a multi-server FCFS
resource with ``spec.lanes`` servers of ``spec.lane_bandwidth`` each, so
concurrent ranks contend exactly where the real cluster would — heavily on
the shared burst buffers and PFS, barely at all on node-local RAM.

The engine also keeps each tier's ``queue_depth`` up to date, which is the
"load" signal the System Monitor reports to the HCDP engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError
from ..tiers import StorageHierarchy, Tier
from .event import IO, Barrier, Delay, Process
from .trace import TraceRecorder

__all__ = ["Simulation"]


class _LaneBank:
    """Earliest-free-server bookkeeping for one tier."""

    def __init__(self, lanes: int) -> None:
        self.free_at = [0.0] * lanes

    def schedule(self, now: float, service: float) -> tuple[float, float]:
        """Assign one operation to the earliest-free lane; (start, done)."""
        idx = min(range(len(self.free_at)), key=self.free_at.__getitem__)
        start = max(now, self.free_at[idx])
        done = start + service
        self.free_at[idx] = done
        return start, done


class Simulation:
    """Event-driven cluster simulation.

    Args:
        hierarchy: Tier stack that :class:`IO` requests run against.
            Optional when a workload only uses delays/barriers.
        trace: Optional :class:`TraceRecorder` capturing every I/O.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.trace = trace
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._lanes: dict[str, _LaneBank] = {}
        if hierarchy is not None:
            for tier in hierarchy:
                self._lanes[tier.spec.name] = _LaneBank(tier.spec.lanes)
        self._barriers: dict[tuple[str, int], list[Process]] = {}
        self._live = 0
        self._completed = 0
        self._daemons: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def live_processes(self) -> int:
        return self._live

    @property
    def completed_processes(self) -> int:
        return self._completed

    # -- scheduling --------------------------------------------------------

    def _at(self, time: float, action: Callable[[], None]) -> None:
        if time < self._now - 1e-12:
            raise SimulationError(f"scheduling into the past: {time} < {self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), action))

    def add_process(self, process: Process, daemon: bool = False) -> None:
        """Register a generator process to start at the current time.

        Daemon processes (background services like tier flushers) do not
        keep the simulation alive: :meth:`run` returns once every
        non-daemon process has completed.
        """
        if not daemon:
            self._live += 1
        else:
            self._daemons.add(id(process))
        self._at(self._now, lambda: self._resume(process, None))

    def run(self, until: float | None = None) -> float:
        """Drive the event loop to quiescence (or to time ``until``).

        Quiescence means every non-daemon process has finished (daemons are
        abandoned mid-loop) or the event heap drained. Raises on barrier
        deadlock (events drained while non-daemon processes still wait).
        """
        while self._heap and (self._live > 0 or not self._daemons):
            time, _, action = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = max(self._now, time)
            action()
        stuck = [
            procs
            for key, procs in self._barriers.items()
            for proc in procs
            if id(proc) not in self._daemons
        ]
        if stuck and self._live > 0:
            waiting = {k: len(v) for k, v in self._barriers.items() if v}
            raise SimulationError(f"deadlock: processes stuck at barriers {waiting}")
        return self._now

    # -- process stepping ----------------------------------------------------

    def _resume(self, process: Process, send_value: float | None) -> None:
        try:
            # Plain iterators are accepted as processes too; only true
            # generators can receive the realised duration.
            send = getattr(process, "send", None)
            if send_value is None or send is None:
                request = next(process)
            else:
                request = send(send_value)
        except StopIteration:
            if id(process) in self._daemons:
                self._daemons.discard(id(process))
            else:
                self._live -= 1
                self._completed += 1
            return
        self._dispatch(process, request)

    def _dispatch(self, process: Process, request: object) -> None:
        if isinstance(request, Delay):
            seconds = request.seconds
            self._at(self._now + seconds, lambda: self._resume(process, seconds))
        elif isinstance(request, IO):
            self._handle_io(process, request)
        elif isinstance(request, Barrier):
            self._handle_barrier(process, request)
        else:
            raise SimulationError(f"process yielded unsupported request {request!r}")

    def _handle_io(self, process: Process, request: IO) -> None:
        if self.hierarchy is None:
            raise SimulationError("IO request but simulation has no hierarchy")
        try:
            bank = self._lanes[request.tier]
        except KeyError:
            raise SimulationError(
                f"IO against unknown tier {request.tier!r}"
            ) from None
        tier: Tier = self.hierarchy.by_name(request.tier)
        service = tier.spec.latency + request.nbytes / tier.spec.lane_bandwidth
        start, done = bank.schedule(self._now, service)
        tier.begin_io(request.nbytes)
        duration = done - self._now
        if self.trace is not None:
            self.trace.record(
                time=self._now,
                tier=request.tier,
                op=request.op,
                nbytes=request.nbytes,
                queued=start - self._now,
                duration=duration,
            )

        def _finish() -> None:
            tier.end_io(request.nbytes)
            self._resume(process, duration)

        self._at(done, _finish)

    def _handle_barrier(self, process: Process, request: Barrier) -> None:
        key = (request.group, request.generation)
        waiting = self._barriers.setdefault(key, [])
        waiting.append(process)
        if len(waiting) > request.expected:
            raise SimulationError(
                f"barrier {key} overfilled: {len(waiting)} > {request.expected}"
            )
        if len(waiting) == request.expected:
            self._barriers[key] = []
            for proc in waiting:
                self._at(self._now, lambda p=proc: self._resume(p, 0.0))
