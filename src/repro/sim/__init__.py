"""Discrete-event cluster simulation: clock, engine, MPI-style ranks, traces.

The paper ran on a 64-node cluster; this package substitutes a
generator-based discrete-event simulator (DESIGN.md §2). Rank programs
are Python generators that ``yield`` requests — :class:`Delay` (compute),
:class:`IO` (charge bytes against a tier's queueing/bandwidth model),
:class:`Barrier` (bulk-synchronous step) — and the :class:`Simulation`
engine advances a shared :class:`SimClock` through the event queue.
``mpi`` layers the communicator-style surface (``spawn_ranks``,
``RankContext.barrier``) on top; ``trace`` records per-tier I/O
timelines for the experiment harnesses.

Timing is simulated; algorithmic work (planning, compression, analysis)
runs for real and charges its *modeled* seconds to this clock.
"""

from .clock import SimClock
from .engine import Simulation
from .event import IO, Barrier, Delay
from .mpi import RankContext, SimComm, spawn_ranks
from .trace import TraceRecord, TraceRecorder, TierSummary

__all__ = [
    "Barrier",
    "Delay",
    "IO",
    "RankContext",
    "SimClock",
    "SimComm",
    "Simulation",
    "TierSummary",
    "TraceRecord",
    "TraceRecorder",
    "spawn_ranks",
]
