"""Discrete-event cluster simulation: clock, engine, MPI-style ranks, traces."""

from .clock import SimClock
from .engine import Simulation
from .event import IO, Barrier, Delay
from .mpi import RankContext, SimComm, spawn_ranks
from .trace import TraceRecord, TraceRecorder, TierSummary

__all__ = [
    "Barrier",
    "Delay",
    "IO",
    "RankContext",
    "SimClock",
    "SimComm",
    "Simulation",
    "TierSummary",
    "TraceRecord",
    "TraceRecorder",
    "spawn_ranks",
]
