"""Event-queue primitives and the process request vocabulary.

Simulation processes are plain Python generators that ``yield`` request
objects; the engine interprets each request, advances simulated time, and
resumes the generator with the realised wait in seconds. The vocabulary:

* :class:`Delay` — occupy the process for a fixed duration (CPU work such
  as compression; uncontended, since the paper runs one rank per core).
* :class:`IO` — move bytes through a tier; contended across the tier's
  hardware lanes (multi-server FCFS).
* :class:`Barrier` — MPI-style synchronisation point for a named group.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Generator, Iterator

from ..errors import SimulationError

__all__ = ["Delay", "IO", "Barrier", "EventQueue", "Process"]

#: A simulation process: yields requests, receives realised durations.
Process = Generator


@dataclass(frozen=True)
class Delay:
    """Occupy the issuing process for ``seconds`` of simulated time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SimulationError(f"negative delay: {self.seconds}")


@dataclass(frozen=True)
class IO:
    """Move ``nbytes`` through tier ``tier`` (contends for its lanes).

    ``op`` is informational ("write"/"read") and flows into the trace.
    """

    tier: str
    nbytes: int
    op: str = "write"

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise SimulationError(f"negative IO size: {self.nbytes}")
        if self.op not in ("write", "read"):
            raise SimulationError(f"IO op must be read/write, got {self.op!r}")


@dataclass(frozen=True)
class Barrier:
    """Block until ``expected`` processes have yielded the same barrier.

    Reuse a (group, generation) pair only once; workloads typically bump
    ``generation`` per timestep.
    """

    group: str
    expected: int
    generation: int = 0

    def __post_init__(self) -> None:
        if self.expected < 1:
            raise SimulationError(f"barrier expects >= 1 arrivals, {self.expected}")


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    process: Process = field(compare=False)
    send_value: float = field(compare=False, default=0.0)


class EventQueue:
    """Time-ordered queue of process resumptions (heap, FIFO tie-break)."""

    def __init__(self) -> None:
        self._heap: list[_Scheduled] = []
        self._seq = itertools.count()

    def push(self, time: float, process: Process, send_value: float = 0.0) -> None:
        heapq.heappush(self._heap, _Scheduled(time, next(self._seq), process, send_value))

    def pop(self) -> _Scheduled:
        if not self._heap:
            raise SimulationError("event queue is empty")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def peek_time(self) -> float:
        if not self._heap:
            raise SimulationError("event queue is empty")
        return self._heap[0].time

    def __iter__(self) -> Iterator[_Scheduled]:  # pragma: no cover - debug aid
        return iter(sorted(self._heap))
