"""I/O trace recording and summarisation.

Every :class:`IO` the engine executes can be appended to a
:class:`TraceRecorder`; experiments use the per-tier aggregates to report
footprints and to sanity-check contention (queue time vs service time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["TraceRecord", "TraceRecorder", "TierSummary"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed I/O operation."""

    time: float
    tier: str
    op: str
    nbytes: int
    queued: float
    duration: float


@dataclass(frozen=True)
class TierSummary:
    """Aggregate view of all operations against one tier."""

    tier: str
    ops: int
    bytes_total: int
    busy_seconds: float
    queued_seconds: float

    @property
    def mean_queue(self) -> float:
        return self.queued_seconds / self.ops if self.ops else 0.0


class TraceRecorder:
    """Append-only I/O trace with per-tier summaries."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def record(
        self,
        time: float,
        tier: str,
        op: str,
        nbytes: int,
        queued: float,
        duration: float,
    ) -> None:
        self._records.append(TraceRecord(time, tier, op, nbytes, queued, duration))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def bytes_by_tier(self, op: str | None = None) -> dict[str, int]:
        """Total bytes moved per tier, optionally filtered by op."""
        totals: dict[str, int] = {}
        for rec in self._records:
            if op is not None and rec.op != op:
                continue
            totals[rec.tier] = totals.get(rec.tier, 0) + rec.nbytes
        return totals

    def summaries(self) -> dict[str, TierSummary]:
        """Per-tier aggregates over the whole trace."""
        acc: dict[str, list[float]] = {}
        for rec in self._records:
            row = acc.setdefault(rec.tier, [0, 0, 0.0, 0.0])
            row[0] += 1
            row[1] += rec.nbytes
            row[2] += rec.duration - rec.queued
            row[3] += rec.queued
        return {
            tier: TierSummary(tier, int(r[0]), int(r[1]), r[2], r[3])
            for tier, r in acc.items()
        }
