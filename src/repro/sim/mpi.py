"""MPI-flavoured conveniences over the event engine.

The paper's workloads are bulk-synchronous MPI programs (all ranks write a
timestep, barrier, compute, repeat). :class:`SimComm` gives each simulated
rank a familiar communicator surface — ``rank``, ``size``, ``barrier()`` —
while the actual synchronisation compiles down to engine
:class:`~repro.sim.event.Barrier` requests. Barrier generations are counted
per-rank, so the only requirement (as in MPI) is that every rank calls
``barrier()`` the same number of times.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterator

from ..errors import SimulationError
from .engine import Simulation
from .event import Barrier, Delay, IO

__all__ = ["SimComm", "RankContext", "spawn_ranks"]


class SimComm:
    """A named process group of fixed size."""

    def __init__(self, sim: Simulation, size: int, name: str = "world") -> None:
        if size < 1:
            raise SimulationError(f"communicator size must be >= 1, got {size}")
        self.sim = sim
        self.size = size
        self.name = name

    def context(self, rank: int) -> "RankContext":
        if not 0 <= rank < self.size:
            raise SimulationError(f"rank {rank} outside communicator of {self.size}")
        return RankContext(self, rank)

    def __iter__(self) -> Iterator["RankContext"]:
        for rank in range(self.size):
            yield self.context(rank)


class RankContext:
    """Per-rank view of a communicator, passed to rank programs.

    The ``barrier``/``io``/``compute`` helpers return request objects for
    the program to ``yield`` (or ``yield from`` for barrier, which manages
    the generation counter internally).
    """

    def __init__(self, comm: SimComm, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self._barrier_gen = 0

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def now(self) -> float:
        return self.comm.sim.now

    def barrier(self) -> Generator:
        """MPI_Barrier over the communicator (yield from this)."""
        generation = self._barrier_gen
        self._barrier_gen += 1
        yield Barrier(self.comm.name, self.comm.size, generation)

    @staticmethod
    def compute(seconds: float) -> Delay:
        """CPU-bound work on this rank's core (uncontended)."""
        return Delay(seconds)

    @staticmethod
    def io(tier: str, nbytes: int, op: str = "write") -> IO:
        """Tier I/O request (contends for the tier's lanes)."""
        return IO(tier, nbytes, op)


def spawn_ranks(
    sim: Simulation,
    nprocs: int,
    program: Callable[[RankContext], Generator],
    name: str = "world",
) -> SimComm:
    """Launch ``nprocs`` copies of a rank program (mpiexec analogue).

    ``program(ctx)`` must be a generator function; each instance becomes one
    simulation process.
    """
    comm = SimComm(sim, nprocs, name=name)
    for ctx in comm:
        sim.add_process(program(ctx))
    return comm
