"""h5lite: a from-scratch self-describing array container.

Stands in for HDF5 (DESIGN.md §2): typed named datasets, per-dataset
attributes, chunked layout, and a magic-number header the Input Analyzer
recognises for its metadata fast path. The layout is deliberately simple —
a superblock, contiguous chunk data, and a JSON index trailer:

    [magic 8B][version u16][index_offset u64]
    [dataset 0 chunks][dataset 1 chunks]...
    [JSON index][index length u64]

The index records each dataset's name, dtype, shape, chunk table
(offset, nbytes per chunk), and attributes.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..analyzer import DataFormat, DataType, Distribution, MetadataHints
from ..analyzer.format import H5LITE_MAGIC
from ..errors import FormatError

__all__ = ["H5LiteWriter", "H5LiteFile", "DatasetInfo"]

_VERSION = 1
_HEADER = struct.Struct("<8sHQ")
_TRAILER = struct.Struct("<Q")
DEFAULT_CHUNK_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class DatasetInfo:
    """Index entry for one dataset.

    ``dtype`` is a numpy type string for plain arrays or a field
    description (list of [name, format] pairs) for structured records.
    """

    name: str
    dtype: str | list
    shape: tuple[int, ...]
    chunks: tuple[tuple[int, int], ...]  # (offset, nbytes) pairs
    attrs: dict

    @property
    def nbytes(self) -> int:
        return sum(n for _, n in self.chunks)

    def numpy_dtype(self) -> np.dtype:
        if isinstance(self.dtype, str):
            return np.dtype(self.dtype)
        return np.dtype([tuple(field) for field in self.dtype])


class H5LiteWriter:
    """Streaming writer; datasets are chunked as they are written.

    Use as a context manager, or call :meth:`close` explicitly — the index
    is only written at close.
    """

    def __init__(
        self,
        target: str | Path | BinaryIO,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if chunk_bytes < 1:
            raise FormatError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
        if isinstance(target, (str, Path)):
            self._fh: BinaryIO = open(target, "wb")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._chunk_bytes = chunk_bytes
        self._datasets: list[DatasetInfo] = []
        self._closed = False
        # Header placeholder; index offset patched at close.
        self._fh.write(_HEADER.pack(H5LITE_MAGIC, _VERSION, 0))

    def write_dataset(
        self, name: str, array: np.ndarray, attrs: dict | None = None
    ) -> DatasetInfo:
        """Append one dataset; names must be unique within the file."""
        if self._closed:
            raise FormatError("writer is closed")
        if any(d.name == name for d in self._datasets):
            raise FormatError(f"dataset {name!r} already written")
        array = np.ascontiguousarray(array)
        # Structured dtypes serialise as their field description; plain
        # dtypes as the numpy type string.
        dtype_spec = (
            [list(field) for field in array.dtype.descr]
            if array.dtype.names
            else array.dtype.str
        )
        raw = array.tobytes()
        chunks = []
        for start in range(0, max(len(raw), 1), self._chunk_bytes):
            piece = raw[start : start + self._chunk_bytes]
            offset = self._fh.tell()
            self._fh.write(piece)
            chunks.append((offset, len(piece)))
        info = DatasetInfo(
            name=name,
            dtype=dtype_spec,
            shape=tuple(int(s) for s in array.shape),
            chunks=tuple(chunks),
            attrs=dict(attrs or {}),
        )
        self._datasets.append(info)
        return info

    def close(self) -> None:
        if self._closed:
            return
        index = {
            "datasets": [
                {
                    "name": d.name,
                    "dtype": d.dtype,
                    "shape": list(d.shape),
                    "chunks": [list(c) for c in d.chunks],
                    "attrs": d.attrs,
                }
                for d in self._datasets
            ]
        }
        blob = json.dumps(index).encode("utf-8")
        index_offset = self._fh.tell()
        self._fh.write(blob)
        self._fh.write(_TRAILER.pack(len(blob)))
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(H5LITE_MAGIC, _VERSION, index_offset))
        self._fh.flush()
        self._closed = True
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "H5LiteWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class H5LiteFile:
    """Reader over a path, file object, or bytes."""

    def __init__(self, source: str | Path | BinaryIO | bytes) -> None:
        if isinstance(source, bytes):
            self._fh: BinaryIO = io.BytesIO(source)
            self._owns = False
        elif isinstance(source, (str, Path)):
            self._fh = open(source, "rb")
            self._owns = True
        else:
            self._fh = source
            self._owns = False
        self._index = self._load_index()

    def _load_index(self) -> dict[str, DatasetInfo]:
        self._fh.seek(0)
        head = self._fh.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise FormatError("h5lite: file shorter than superblock")
        magic, version, index_offset = _HEADER.unpack(head)
        if magic != H5LITE_MAGIC:
            raise FormatError("h5lite: bad magic")
        if version != _VERSION:
            raise FormatError(f"h5lite: unsupported version {version}")
        self._fh.seek(index_offset)
        body = self._fh.read()
        if len(body) < _TRAILER.size:
            raise FormatError("h5lite: truncated index")
        (blob_len,) = _TRAILER.unpack(body[-_TRAILER.size :])
        blob = body[: -_TRAILER.size]
        if len(blob) != blob_len:
            raise FormatError(
                f"h5lite: index length mismatch ({len(blob)} != {blob_len})"
            )
        try:
            doc = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FormatError(f"h5lite: corrupt index: {exc}") from exc
        out = {}
        for row in doc.get("datasets", []):
            info = DatasetInfo(
                name=row["name"],
                dtype=row["dtype"],
                shape=tuple(row["shape"]),
                chunks=tuple((int(o), int(n)) for o, n in row["chunks"]),
                attrs=row.get("attrs", {}),
            )
            out[info.name] = info
        return out

    @property
    def dataset_names(self) -> list[str]:
        return list(self._index)

    def info(self, name: str) -> DatasetInfo:
        try:
            return self._index[name]
        except KeyError:
            raise FormatError(f"h5lite: no dataset named {name!r}") from None

    def read(self, name: str) -> np.ndarray:
        """Materialise a dataset as a numpy array."""
        info = self.info(name)
        parts = []
        for offset, nbytes in info.chunks:
            self._fh.seek(offset)
            piece = self._fh.read(nbytes)
            if len(piece) != nbytes:
                raise FormatError(f"h5lite: dataset {name!r} chunk truncated")
            parts.append(piece)
        raw = b"".join(parts)
        array = np.frombuffer(raw, dtype=info.numpy_dtype())
        return array.reshape(info.shape)

    def read_raw(self, name: str) -> bytes:
        """Dataset bytes without reshaping (what an I/O kernel writes)."""
        info = self.info(name)
        parts = []
        for offset, nbytes in info.chunks:
            self._fh.seek(offset)
            parts.append(self._fh.read(nbytes))
        return b"".join(parts)

    def attrs(self, name: str) -> dict:
        return dict(self.info(name).attrs)

    def hints(self, name: str) -> MetadataHints:
        """Analyzer fast-path hints derived from the self-described index.

        The dtype maps from the stored numpy dtype; the distribution comes
        from a ``"distribution"`` attribute when the producer recorded one.
        """
        info = self.info(name)
        np_dtype = info.numpy_dtype()
        dtype_map = {
            np.dtype(np.float64): DataType.FLOAT64,
            np.dtype(np.float32): DataType.FLOAT32,
            np.dtype(np.int64): DataType.INT64,
            np.dtype(np.int32): DataType.INT32,
        }
        dtype = dtype_map.get(np_dtype, DataType.BYTES)
        dist_attr = info.attrs.get("distribution")
        distribution = None
        if dist_attr is not None:
            try:
                distribution = Distribution(dist_attr)
            except ValueError:
                distribution = None
        return MetadataHints(
            dtype=dtype, data_format=DataFormat.H5LITE, distribution=distribution
        )

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "H5LiteFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
