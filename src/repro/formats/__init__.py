"""Self-describing data formats: the h5lite container and record helpers."""

from .h5lite import DatasetInfo, H5LiteFile, H5LiteWriter
from .records import (
    PARTICLE_FIELDS,
    make_particles,
    particle_dtype,
    split_properties,
)

__all__ = [
    "DatasetInfo",
    "H5LiteFile",
    "H5LiteWriter",
    "PARTICLE_FIELDS",
    "make_particles",
    "particle_dtype",
    "split_properties",
]
