"""Particle-record helpers shared by the VPIC / BD-CATS workloads.

VPIC-IO writes eight floating-point properties per particle (32 bytes with
float32 properties — the paper's "each particle has eight floating point
properties with a total size of 32 bytes"). These helpers build and parse
those record batches as structured numpy arrays.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError

__all__ = ["PARTICLE_FIELDS", "particle_dtype", "make_particles", "split_properties"]

#: VPIC particle properties: position, momentum, energy, id-derived weights.
PARTICLE_FIELDS = ("x", "y", "z", "px", "py", "pz", "energy", "weight")


def particle_dtype() -> np.dtype:
    """Structured dtype: eight float32 properties, 32 bytes per particle."""
    return np.dtype([(name, np.float32) for name in PARTICLE_FIELDS])


#: Particle fields are quantised to a finite grid: positions land on cell
#: fractions, momenta on the solver's discrete velocity resolution. This is
#: what makes real VPIC checkpoints compressible (the paper's Fig. 1 shows
#: ~2x with light compression and ~5x with zlib) even though the values
#: look like floats — their mantissas carry far fewer than 23 random bits.
_POSITION_QUANTUM = 1.0 / 1024.0
_MOMENTUM_QUANTUM = 1.0 / 256.0


def make_particles(n: int, rng: np.random.Generator) -> np.ndarray:
    """Synthesise ``n`` physically-plausible particle records.

    Positions are uniform in the box (cell-fraction grid), momenta are
    Maxwellian (normal per component, discrete velocity resolution), energy
    derives from the momenta (gamma-like), weights are constant.
    """
    if n < 0:
        raise FormatError(f"particle count must be >= 0, got {n}")
    out = np.empty(n, dtype=particle_dtype())
    for axis in ("x", "y", "z"):
        values = rng.uniform(0.0, 1.0, n)
        values = np.round(values / _POSITION_QUANTUM) * _POSITION_QUANTUM
        out[axis] = values.astype(np.float32)
    for axis in ("px", "py", "pz"):
        values = rng.normal(0.0, 1.0, n)
        values = np.round(values / _MOMENTUM_QUANTUM) * _MOMENTUM_QUANTUM
        out[axis] = values.astype(np.float32)
    momenta = (
        out["px"].astype(np.float64) ** 2
        + out["py"].astype(np.float64) ** 2
        + out["pz"].astype(np.float64) ** 2
    )
    energy = 0.5 * momenta
    energy = np.round(energy / _MOMENTUM_QUANTUM) * _MOMENTUM_QUANTUM
    out["energy"] = energy.astype(np.float32)
    out["weight"] = np.float32(1.0)
    return out


def split_properties(records: np.ndarray) -> dict[str, np.ndarray]:
    """Column views of a particle batch (BD-CATS reads per-property)."""
    if records.dtype != particle_dtype():
        raise FormatError(f"expected particle records, got dtype {records.dtype}")
    return {name: records[name] for name in PARTICLE_FIELDS}
