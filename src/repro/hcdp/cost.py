"""The HCDP cost model — equations (3) and (4) of the paper.

Uncompressed placement (eq. 3):

    t(i, l) = latency_l + s_i / b_l

Compressed placement (eq. 4):

    t(i, l, c) = wc*tc + t(i, l) - wr * t(i, l) * (rc - 1) / rc + wd*td

i.e. pay the (priority-weighted) compression time, start from the raw I/O
time, recover the fraction of it that the ratio eliminates (weighted by the
ratio priority), and charge the future decompression cost (weighted by the
read priority). Setting wr = 1, wd = 0 recovers the physical write time of
the compressed bytes; other weights bias the optimizer, not the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ccp.predictor import ExpectedCompressionCost
from ..tiers.spec import TierSpec
from ..units import MB
from .priorities import EQUAL, Priority

__all__ = ["CostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """The components of one (task, tier, codec) evaluation."""

    compression_time: float
    io_time: float
    io_time_saved: float
    decompression_time: float

    @property
    def total(self) -> float:
        return (
            self.compression_time
            + self.io_time
            - self.io_time_saved
            + self.decompression_time
        )


class CostModel:
    """Priority-weighted task cost over (tier, codec) combinations.

    Args:
        priority: The (wc, wr, wd) weighting; defaults to the evaluation's
            equal weighting.
        load_factor: How strongly tier queue depth inflates I/O time. The
            System Monitor's "load" signal enters the model as
            ``io_time * (1 + load_factor * load / lanes)`` — 0 disables it.
    """

    def __init__(self, priority: Priority = EQUAL, load_factor: float = 1.0) -> None:
        if load_factor < 0:
            raise ValueError(f"load_factor must be >= 0, got {load_factor}")
        self.priority = priority
        self.load_factor = load_factor

    def io_time(
        self,
        size: int,
        tier: TierSpec,
        load: int = 0,
        queued_bytes: int = 0,
    ) -> float:
        """Eq. 3: t(i, l), plus the System Monitor's observed contention.

        ``queued_bytes`` is the tier's in-flight backlog: a new arrival
        queues behind it, so the expected service time adds
        ``backlog / aggregate bandwidth`` (FCFS estimate). The dimensionless
        ``load`` (queue depth over lanes) additionally inflates the per-op
        term for latency-bound small I/O.
        """
        base = tier.latency + size / tier.lane_bandwidth
        if load and self.load_factor:
            base *= 1.0 + self.load_factor * load / tier.lanes
        if queued_bytes and self.load_factor:
            base += self.load_factor * queued_bytes / tier.bandwidth
        return base

    def place_cost(
        self,
        size: int,
        tier: TierSpec,
        ecc: ExpectedCompressionCost | None,
        load: int = 0,
        queued_bytes: int = 0,
        drain_per_byte: float = 0.0,
    ) -> CostBreakdown:
        """Eq. 4 (or eq. 3 when ``ecc`` is None / identity).

        ``drain_per_byte`` is the amortised drain cost of occupying one
        byte of a *bounded* tier (see :meth:`HcdpEngine` — pressure x
        concurrency / sink bandwidth). It is what teaches the per-task
        optimizer that footprint is a shared, serial resource while
        compression CPU is per-rank and parallel: without it, a greedy
        task-local model never compresses into a roomy fast tier, and the
        hierarchy fills with uncompressed bytes that all must eventually
        cross the sink pipe.
        """
        raw_io = self.io_time(size, tier, load, queued_bytes)
        wc, wr, wd = self.priority.as_tuple()
        if ecc is None or ecc.codec == "none" or ecc.ratio <= 1.0:
            return CostBreakdown(0.0, raw_io + wr * size * drain_per_byte, 0.0, 0.0)
        tc = size / (ecc.compress_mbps * MB)
        td = size / (ecc.decompress_mbps * MB)
        saved = raw_io * (ecc.ratio - 1.0) / ecc.ratio
        stored = size / ecc.ratio
        return CostBreakdown(
            compression_time=wc * tc,
            io_time=raw_io + wr * stored * drain_per_byte,
            io_time_saved=wr * saved,
            decompression_time=wd * td,
        )
