"""Workload compression priorities (paper §IV-F2, Table II).

The cost function weights its three components — compression time,
decompression time, and the I/O reduction earned by the ratio — by a
user-configurable priority triple. Presets reproduce the paper's Table II;
advanced users construct their own and can swap it at runtime through the
HCompress API.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Priority", "ASYNC_IO", "ARCHIVAL_IO", "READ_AFTER_WRITE", "EQUAL"]


@dataclass(frozen=True)
class Priority:
    """Weights (wc, wr, wd) for compression time, ratio benefit, and
    decompression time.

    All weights must be non-negative and at least one positive; they are
    *not* required to sum to 1 (Table II's rows do, but the cost function
    only needs relative magnitudes).
    """

    compression: float
    ratio: float
    decompression: float

    def __post_init__(self) -> None:
        weights = (self.compression, self.ratio, self.decompression)
        if any(w < 0 for w in weights):
            raise ValueError(f"priority weights must be >= 0, got {weights}")
        if all(w == 0 for w in weights):
            raise ValueError("at least one priority weight must be positive")

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.compression, self.ratio, self.decompression)


#: Table II: asynchronous I/O — only compression speed matters (the flush
#: is hidden, and the data is re-read rarely).
ASYNC_IO = Priority(compression=1.0, ratio=0.0, decompression=0.0)

#: Table II: archival I/O — pure footprint.
ARCHIVAL_IO = Priority(compression=0.0, ratio=1.0, decompression=0.0)

#: Table II: read-after-write workflows — balanced with a ratio lean.
READ_AFTER_WRITE = Priority(compression=0.3, ratio=0.4, decompression=0.3)

#: The evaluation default (§V-A2: "workload priority equal for compression
#: metrics, unless specified otherwise"). All-ones rather than all-thirds:
#: the raw I/O term of eq. 4 is unweighted, so only unit weights make the
#: cost equal the physical task time; any other *equal* weighting skews the
#: codec-vs-I/O trade-off, not just its scale.
EQUAL = Priority(compression=1.0, ratio=1.0, decompression=1.0)
