"""HCDP: the hierarchical compression and data placement engine."""

from .cost import CostBreakdown, CostModel
from .engine import EngineStats, HcdpEngine
from .plan_cache import CachedPlan, PlanCache, PlanCacheConfig
from .priorities import ARCHIVAL_IO, ASYNC_IO, EQUAL, READ_AFTER_WRITE, Priority
from .schema import Schema, SubTaskPlan, validate_schema
from .task import IOTask, Operation, next_task_id

__all__ = [
    "ARCHIVAL_IO",
    "ASYNC_IO",
    "CachedPlan",
    "CostBreakdown",
    "CostModel",
    "EQUAL",
    "EngineStats",
    "HcdpEngine",
    "IOTask",
    "Operation",
    "PlanCache",
    "PlanCacheConfig",
    "Priority",
    "READ_AFTER_WRITE",
    "Schema",
    "SubTaskPlan",
    "next_task_id",
    "validate_schema",
]
