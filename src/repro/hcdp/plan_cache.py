"""Cross-task plan caching for the HCDP engine (DESIGN.md §8).

The paper's headline planning claim is that the memoized DP is
"practically O(1)" because sub-problems recur across tasks; the seed
implementation nevertheless rebuilt the memo dict inside every ``plan()``
call. This module hoists both the DP memo and whole schemas into
engine-lifetime stores.

Exactness contract: a cache entry is only ever reused when *every* input
of the dynamic program is identical — feature key, model version, codec
roster, priority, availability, load, queue depth, drain pressure, and
remaining capacity (clamped, see below). Plans produced with the cache
enabled are therefore byte-identical to the uncached path by construction;
the System Monitor's ``state_epoch`` and the predictor's ``model_version``
serve as coarse invalidation/garbage-collection signals on top, not as the
correctness mechanism.

Remaining-capacity clamp: the DP consults a tier's remaining bytes only
through ``stored <= remaining`` comparisons and — when that fails — the
split-size computation. Every stored footprint of a task sized ``<= B`` is
at most ``B + HEADER_SIZE`` (constraint 4 keeps ratios >= 1), so two
states whose remaining capacities both exceed that bound are
indistinguishable to the DP. Clamping remaining at the task's
power-of-two size bucket plus header therefore collapses a draining
burst's continuously shifting capacities into one cache key without
changing a single planning decision.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .schema import SubTaskPlan

__all__ = ["PlanCacheConfig", "CachedPlan", "PlanCache"]


@dataclass(frozen=True)
class PlanCacheConfig:
    """Knobs of the engine-lifetime plan cache.

    Attributes:
        enabled: Master switch; disabled reproduces the seed behaviour
            (fresh memo per ``plan()`` call, no schema reuse).
        max_schemas: Whole-schema entries kept (LRU-evicted beyond this).
        max_contexts: Shared DP memo tables kept, one per distinct
            planning context (LRU-evicted beyond this).
        capacity_bands: Quantization of the System Monitor's fill-level
            epoch signal — crossing a band bumps ``state_epoch`` and
            flushes the cache.
    """

    enabled: bool = True
    max_schemas: int = 4096
    max_contexts: int = 128
    capacity_bands: int = 32

    def __post_init__(self) -> None:
        if self.max_schemas < 1:
            raise ValueError("max_schemas must be >= 1")
        if self.max_contexts < 1:
            raise ValueError("max_contexts must be >= 1")
        if self.capacity_bands < 1:
            raise ValueError("capacity_bands must be >= 1")


@dataclass(frozen=True)
class CachedPlan:
    """One memoized schema: its pieces plus the DP footprint that built it."""

    pieces: tuple[SubTaskPlan, ...]
    expected_cost: float
    memo_hits: int
    memo_misses: int


class PlanCache:
    """Two-layer LRU store: shared DP memos and whole schemas.

    Layer 1 (``memo``): one ``{(size, level, codec): (cost, action)}``
    table per planning context, shared by every task that plans under
    that context — tasks of *different* sizes within the same power-of-two
    bucket reuse each other's sub-problems.

    Layer 2 (``schemas``): the finished piece list per ``(task size,
    context)`` — an exact-repeat task is a single dict lookup.
    """

    def __init__(self, config: PlanCacheConfig) -> None:
        self.config = config
        self._memos: OrderedDict[tuple, dict] = OrderedDict()
        self._schemas: OrderedDict[tuple, CachedPlan] = OrderedDict()
        # Batch front line: the last planning *signature* (the raw-tuple
        # form of a context key the batch planner builds without
        # materialising monitor snapshots) and its plan. One slot — batch
        # bursts repeat the immediately preceding signature — cleared with
        # the rest of the cache so invalidation stays a single contract.
        self._signature: tuple | None = None
        self._signature_plan: CachedPlan | None = None

    @property
    def schema_entries(self) -> int:
        return len(self._schemas)

    @property
    def context_entries(self) -> int:
        return len(self._memos)

    def memo(self, context_key: tuple) -> dict:
        """The shared DP memo for one planning context (created on demand)."""
        table = self._memos.get(context_key)
        if table is None:
            table = {}
            self._memos[context_key] = table
            while len(self._memos) > self.config.max_contexts:
                self._memos.popitem(last=False)
        else:
            self._memos.move_to_end(context_key)
        return table

    def get_schema(self, size: int, context_key: tuple) -> CachedPlan | None:
        entry = self._schemas.get((size, context_key))
        if entry is not None:
            self._schemas.move_to_end((size, context_key))
        return entry

    def put_schema(self, size: int, context_key: tuple, plan: CachedPlan) -> None:
        self._schemas[(size, context_key)] = plan
        while len(self._schemas) > self.config.max_schemas:
            self._schemas.popitem(last=False)

    def get_signature(self, signature: tuple) -> CachedPlan | None:
        """Front-line lookup by batch planning signature (exact match only)."""
        if signature == self._signature:
            return self._signature_plan
        return None

    def put_signature(self, signature: tuple, plan: CachedPlan) -> None:
        self._signature = signature
        self._signature_plan = plan

    def clear(self) -> int:
        """Drop everything; returns the number of entries discarded."""
        dropped = len(self._schemas) + len(self._memos)
        if self._signature is not None:
            dropped += 1
        self._schemas.clear()
        self._memos.clear()
        self._signature = None
        self._signature_plan = None
        return dropped
