"""Compression/placement schemas and the Table-I constraint validator.

A schema is the HCDP engine's output: an ordered list of sub-task plans,
each naming the byte range of the original task it covers, the tier it
lands on, the codec applied, and the engine's cost expectations. The
validator enforces the paper's problem-formulation constraints so every
schema the engine emits is checkable (and property-testable) independently
of the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaError
from ..tiers import StorageHierarchy
from ..units import PAGE
from .task import IOTask

__all__ = ["SubTaskPlan", "Schema", "validate_schema"]


@dataclass(frozen=True, slots=True)
class SubTaskPlan:
    """One piece of a task: where it goes and how it is compressed."""

    offset: int
    length: int
    tier: str
    tier_level: int
    codec: str
    expected_ratio: float
    expected_stored_size: int
    expected_cost: float

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise SchemaError(
                f"invalid piece geometry offset={self.offset} length={self.length}"
            )
        if self.expected_ratio < 1.0:
            raise SchemaError(
                f"constraint 4 violated: expected ratio {self.expected_ratio} < 1"
            )
        if self.expected_stored_size < 0:
            raise SchemaError("expected stored size must be >= 0")


@dataclass(slots=True)
class Schema:
    """An ordered placement plan for one task."""

    task: IOTask
    pieces: list[SubTaskPlan] = field(default_factory=list)
    expected_cost: float = 0.0
    memo_hits: int = 0
    memo_misses: int = 0
    # Shared plan tuple a cached schema was emitted from; lets the manager
    # recognise reusable prep across a batch. Identity metadata, not part
    # of the schema's value.
    _pieces_source: tuple | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.pieces)

    def tiers_used(self) -> list[str]:
        return [p.tier for p in self.pieces]

    def codecs_used(self) -> list[str]:
        return [p.codec for p in self.pieces]

    def stored_size(self) -> int:
        return sum(p.expected_stored_size for p in self.pieces)


def validate_schema(
    schema: Schema, hierarchy: StorageHierarchy, grain: int = PAGE
) -> None:
    """Enforce the paper's Table-I constraints; raises :class:`SchemaError`.

    1. Size(p) mod 4096 == 0 for every piece except the last (which holds
       the task's unaligned remainder).
    2. Length(P) <= Concurrency(L).
    3. Length(P) <= Length(L).
    4. r_c >= 1 for every compressed piece (checked at construction).
    5. Size(p) <= Size(l): each piece's stored size fits its tier's
       capacity.

    Additionally the pieces must tile the task buffer exactly, in order.
    """
    task = schema.task
    pieces = schema.pieces
    if task.size == 0:
        if pieces:
            raise SchemaError("empty task must produce an empty schema")
        return
    if not pieces:
        raise SchemaError("non-empty task produced no pieces")

    if len(pieces) > hierarchy.concurrency():
        raise SchemaError(
            f"constraint 2 violated: {len(pieces)} pieces > "
            f"concurrency {hierarchy.concurrency()}"
        )
    if len(pieces) > len(hierarchy):
        raise SchemaError(
            f"constraint 3 violated: {len(pieces)} pieces > "
            f"{len(hierarchy)} tiers"
        )

    cursor = 0
    for idx, piece in enumerate(pieces):
        if piece.offset != cursor:
            raise SchemaError(
                f"piece {idx} at offset {piece.offset}, expected {cursor}: "
                "pieces must tile the task in order"
            )
        is_last = idx == len(pieces) - 1
        if not is_last and piece.length % grain != 0:
            raise SchemaError(
                f"constraint 1 violated: piece {idx} length {piece.length} "
                f"not a multiple of {grain}"
            )
        tier = hierarchy.by_name(piece.tier)
        if hierarchy.level_of(piece.tier) != piece.tier_level:
            raise SchemaError(
                f"piece {idx}: tier level mismatch for {piece.tier!r}"
            )
        capacity = tier.spec.capacity
        if capacity is not None and piece.expected_stored_size > capacity:
            raise SchemaError(
                f"constraint 5 violated: piece {idx} stored size "
                f"{piece.expected_stored_size} > tier capacity {capacity}"
            )
        cursor += piece.length
    if cursor != task.size:
        raise SchemaError(
            f"pieces cover {cursor} bytes, task is {task.size} bytes"
        )

    levels = [p.tier_level for p in pieces]
    if levels != sorted(levels) or len(set(levels)) != len(levels):
        raise SchemaError(
            f"pieces must occupy strictly descending tiers, got levels {levels}"
        )
