"""I/O task representation.

The paper transforms every I/O request into a task — a (data buffer,
operation) tuple. The engine plans against the task's *modeled* size and
analyzed attributes; the optional sample buffer carries real bytes for the
compression manager to run codecs on (representative-sample scaling,
DESIGN.md §2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..analyzer import InputAnalysis
from ..errors import SchemaError

__all__ = ["IOTask", "Operation", "next_task_id"]

_task_counter = itertools.count()


def next_task_id(prefix: str = "task") -> str:
    """Process-unique task id."""
    return f"{prefix}-{next(_task_counter)}"


class Operation:
    """Task operation kinds (string constants, not an enum, for cheap use
    in hot paths)."""

    WRITE = "write"  # compress + write
    READ = "read"  # read + decompress

    ALL = (WRITE, READ)


@dataclass(frozen=True, slots=True)
class IOTask:
    """One I/O request as seen by the engine.

    Attributes:
        task_id: Unique id; doubles as the blob key prefix in the tiers.
        size: Modeled task size in bytes (what capacity/time accounting
            uses).
        analysis: Input Analyzer output for the task's data.
        operation: :attr:`Operation.WRITE` or :attr:`Operation.READ`.
        data: Optional real buffer. When present and equal in length to
            ``size`` the task is fully materialised; when shorter it is a
            representative sample of the modeled payload.
    """

    task_id: str
    size: int
    analysis: InputAnalysis
    operation: str = Operation.WRITE
    data: bytes | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SchemaError(f"task size must be >= 0, got {self.size}")
        if self.operation not in Operation.ALL:
            raise SchemaError(f"unknown operation {self.operation!r}")
        if self.data is not None and len(self.data) > self.size:
            raise SchemaError(
                f"sample ({len(self.data)} B) larger than modeled size "
                f"({self.size} B)"
            )

    @property
    def materialised(self) -> bool:
        """True when the task carries its full payload."""
        return self.data is not None and len(self.data) == self.size
