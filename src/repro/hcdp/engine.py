"""The Hierarchical Compression and Data Placement engine (paper §IV-F).

Implements the recursive dynamic program of equations (1)-(2):

    Match(i, l, c) = min( Place(i, l, c)                  if s_ic fits l,
                          Place(i',l, c) + Match(a', l+1, c)   otherwise,
                          Match(i, l+1, c),
                          Match(i, l, c+1) )

with memoization on (task size, tier index, codec index). Splits are cut at
the 4096-byte grain (RAM page / NVMe block), which both aligns the I/O and
makes sub-problems reusable across tasks — the property that gives the
algorithm its practically-O(1) cost.

Inputs come from the three sibling components exactly as in the paper:
data attributes from the Input Analyzer, the expected-cost table from the
Compression Cost Predictor, and remaining capacity / load / availability
from the System Monitor.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..ccp.predictor import CompressionCostPredictor, ExpectedCompressionCost
from ..codecs.metadata import HEADER_SIZE
from ..codecs.pool import CompressionLibraryPool
from ..errors import DeadlineExceededError, PlacementError
from ..monitor.system_monitor import SystemMonitor
from ..units import MB, PAGE, align_down
from .cost import CostModel
from .plan_cache import CachedPlan, PlanCache, PlanCacheConfig
from .priorities import EQUAL, Priority
from .schema import Schema, SubTaskPlan
from .task import IOTask, Operation

__all__ = ["HcdpEngine", "EngineStats", "BatchPlanner"]

_INF = math.inf


@dataclass
class EngineStats:
    """Cumulative engine counters (Fig. 4(a)'s subject)."""

    tasks_planned: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    pieces_emitted: int = 0
    degraded_plans: int = 0  # plans made while >= 1 tier was reported down
    plan_cache_hits: int = 0  # whole-schema cache hits
    plan_cache_misses: int = 0  # plans that had to run the DP
    plan_cache_invalidations: int = 0  # flush events (epoch/model/priority)

    @property
    def hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class HcdpEngine:
    """Hierarchy-aware compression + placement optimizer.

    Args:
        predictor: Fitted cost model supplying ECC tuples.
        monitor: System Monitor over the target hierarchy.
        pool: Codec roster ("none" must be member 0, which the pool
            guarantees).
        priority: Workload priority weights (Table II).
        grain: Split alignment in bytes (the paper's 4096).
        load_factor: Queue-depth sensitivity of the cost model.
        drain_penalty: Scale of the amortised capacity-pressure term
            (0 disables it; see the ablation bench). Occupying a bounded
            tier is charged ``pressure x concurrency / sink bandwidth``
            per stored byte, reflecting that everything buffered above the
            sink must eventually cross the sink's (shared, serial) pipe.
        allow_identity: Keep "no compression" in the choice set (paper
            §IV-F1 insists on it; disable only for the ablation study).
        plan_cache: Cross-task plan-cache policy (DESIGN.md §8). Defaults
            to enabled; pass ``PlanCacheConfig(enabled=False)`` for the
            seed's plan-from-scratch behaviour.
        obs: Optional :class:`~repro.obs.Observability` sink. ``None``
            (the default) keeps :meth:`plan` on the uninstrumented fast
            path — a single identity check per call, which is what the
            perf gate benches.
    """

    def __init__(
        self,
        predictor: CompressionCostPredictor,
        monitor: SystemMonitor,
        pool: CompressionLibraryPool,
        priority: Priority = EQUAL,
        grain: int = PAGE,
        load_factor: float = 1.0,
        drain_penalty: float = 1.0,
        allow_identity: bool = True,
        plan_cache: PlanCacheConfig | None = None,
        obs=None,
    ) -> None:
        if grain < 1:
            raise ValueError(f"grain must be >= 1, got {grain}")
        if drain_penalty < 0:
            raise ValueError(f"drain_penalty must be >= 0, got {drain_penalty}")
        self.predictor = predictor
        self.monitor = monitor
        self.pool = pool
        self.grain = grain
        self.drain_penalty = drain_penalty
        self.allow_identity = allow_identity
        self.obs = obs
        self.cost_model = CostModel(priority=priority, load_factor=load_factor)
        self.stats = EngineStats()
        self.plan_cache_config = (
            plan_cache if plan_cache is not None else PlanCacheConfig()
        )
        self.plan_cache = PlanCache(self.plan_cache_config)
        self._cache_epoch: int | None = None
        self._cache_model_version: int | None = None
        self._priority_version = 0
        # Sticky pressure signals: a bulk-synchronous burst plans before its
        # own I/O lands, so instantaneous load/fill underestimate the true
        # contention. Cumulative planned bytes and the peak observed
        # concurrency are monotone and warm up within the first burst.
        self._planned_bytes = 0
        self._peak_concurrency = 1

    @property
    def priority(self) -> Priority:
        return self.cost_model.priority

    def set_priority(self, priority: Priority) -> None:
        """Runtime priority swap (the paper's dynamic reconfiguration)."""
        self.cost_model = CostModel(
            priority=priority, load_factor=self.cost_model.load_factor
        )
        self._priority_version += 1
        if self.plan_cache.clear():
            self.stats.plan_cache_invalidations += 1

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        task: IOTask,
        *,
        deadline_budget: float | None = None,
        codec_filter: str | None = None,
        blocked_tiers: tuple[str, ...] = (),
    ) -> Schema:
        """Produce the optimal compression/placement schema for a write task.

        The keyword constraints come from the QoS governor and default to
        no-ops: ``blocked_tiers`` excludes breaker-quarantined tiers from
        the choice set, ``codec_filter`` (``"fastest"`` / ``"none"``)
        implements the brownout ladder's codec restrictions, and
        ``deadline_budget`` (remaining modeled seconds) prunes tiers and
        codecs whose modeled completion cannot fit — raising
        :class:`~repro.errors.DeadlineExceededError` when nothing is left.
        """
        obs = self.obs
        if obs is None:
            return self._plan(
                task,
                deadline_budget=deadline_budget,
                codec_filter=codec_filter,
                blocked_tiers=blocked_tiers,
            )
        hits_before = self.stats.plan_cache_hits
        wall = time.perf_counter()
        with obs.region("hcdp.plan", task=task.task_id, size=task.size) as sp:
            schema = self._plan(
                task,
                deadline_budget=deadline_budget,
                codec_filter=codec_filter,
                blocked_tiers=blocked_tiers,
            )
            cache_hit = self.stats.plan_cache_hits > hits_before
            sp.set_attr("cache", "hit" if cache_hit else "miss")
            sp.set_attr("pieces", len(schema.pieces))
        obs.record_plan(cache_hit, time.perf_counter() - wall)
        return schema

    def _plan(
        self,
        task: IOTask,
        *,
        deadline_budget: float | None = None,
        codec_filter: str | None = None,
        blocked_tiers: tuple[str, ...] = (),
        _status=None,
    ) -> Schema:
        if task.operation != Operation.WRITE:
            raise PlacementError(
                "the HCDP engine plans write tasks; reads are driven by "
                "sub-task metadata"
            )
        schema = Schema(task=task)
        if task.size == 0:
            self.stats.tasks_planned += 1
            return schema

        # ``_status`` lets the batch planner hand over the snapshot it
        # already took (via sample_raw) instead of sampling twice; the
        # per-task path always samples here.
        status = _status if _status is not None else self.monitor.status()
        hierarchy = self.monitor.hierarchy
        specs = [tier.spec for tier in hierarchy]
        levels = len(specs)
        remaining: list[float] = []
        loads: list[int] = []
        queued: list[int] = []
        usable: list[bool] = []
        for tier_status in status.tiers:
            rem = tier_status.effective_remaining()
            remaining.append(_INF if rem is None else float(rem))
            loads.append(tier_status.load)
            queued.append(tier_status.queued_bytes)
            usable.append(tier_status.available)
        if blocked_tiers:
            # Breaker-quarantined tiers are indistinguishable from down
            # tiers to the planner: excluded from the choice set, counted
            # as a degraded plan.
            blocked = frozenset(blocked_tiers)
            for level, spec in enumerate(specs):
                if spec.name in blocked:
                    usable[level] = False
        if not all(usable):
            # Degraded-mode planning: down tiers are excluded from the
            # choice set and the DP routes every byte through the
            # survivors; PlacementError only if nothing is left at all.
            self.stats.degraded_plans += 1

        # Capacity-pressure drain cost (per stored byte on bounded tiers):
        # write-saturation of the bounded hierarchy x observed concurrency,
        # divided by the sink's aggregate bandwidth.
        self._planned_bytes += task.size
        self._peak_concurrency = max(self._peak_concurrency, sum(loads) + 1)
        drain_per_byte = 0.0
        if self.drain_penalty:
            bounded_cap = sum(
                s.capacity for s in specs if s.capacity is not None
            )
            if bounded_cap:
                pressure = min(1.0, self._planned_bytes / bounded_cap)
                # Quantize write-saturation to the capacity-band grid: the
                # term models slow-building backlog, not per-task deltas,
                # and a continuously drifting float would put a unique
                # value in every plan-cache key. Applied with the cache on
                # or off, so both paths stay byte-identical.
                bands = self.plan_cache_config.capacity_bands
                pressure = math.floor(pressure * bands) / bands
                sink_bw = specs[-1].bandwidth
                drain_per_byte = (
                    self.drain_penalty
                    * pressure
                    * self._peak_concurrency
                    / sink_bw
                )

        # ECC table for this input; constraint 4 drops sub-unity codecs.
        # Candidates are predicted at the task's power-of-two size bucket
        # (the log-size feature is mild), which lets every task in a bucket
        # share one candidate table and one DP memo across the burst.
        dtype, data_format, distribution = task.analysis.feature_key()
        bucket = 1 << (task.size - 1).bit_length()
        if self.obs is not None:
            with self.obs.region("ccp.predict", bucket=bucket):
                table = self.predictor.candidate_table(
                    dtype, data_format, distribution, bucket,
                    self.pool.names[1:],
                )
        else:
            table = self.predictor.candidate_table(
                dtype, data_format, distribution, bucket, self.pool.names[1:]
            )
        candidates: list[tuple[str, ExpectedCompressionCost | None]] = (
            [("none", None)] if self.allow_identity else []
        )
        for name, ecc in zip(self.pool.names[1:], table):
            if ecc.ratio >= 1.0:
                candidates.append((name, ecc))

        if codec_filter == "none":
            # Brownout "skip compression": identity placement only, even
            # when allow_identity is off — shedding codec work entirely is
            # the point of this rung.
            candidates = [("none", None)]
        elif codec_filter == "fastest":
            fastest: tuple[str, ExpectedCompressionCost] | None = None
            for name, ecc in candidates:
                if ecc is not None and (
                    fastest is None or ecc.compress_mbps > fastest[1].compress_mbps
                ):
                    fastest = (name, ecc)
            candidates = [("none", None)]
            if fastest is not None:
                candidates.append(fastest)
        elif codec_filter is not None:
            raise ValueError(f"unknown codec_filter {codec_filter!r}")

        if deadline_budget is not None:
            best_ratio = 1.0
            for _, ecc in candidates:
                if ecc is not None and ecc.ratio > best_ratio:
                    best_ratio = ecc.ratio
            # Codec pruning: compression time alone must fit the budget
            # (identity never prunes). Tier pruning: even the optimistic
            # post-compression footprint must cross the tier's pipe in
            # budget, or the tier cannot possibly finish in time.
            candidates = [
                (name, ecc)
                for name, ecc in candidates
                if ecc is None
                or task.size / (ecc.compress_mbps * MB) <= deadline_budget
            ]
            optimistic_bytes = task.size / best_ratio
            for level, spec in enumerate(specs):
                if (
                    usable[level]
                    and spec.latency + optimistic_bytes / spec.lane_bandwidth
                    > deadline_budget
                ):
                    usable[level] = False
            if not any(usable) or not candidates:
                raise DeadlineExceededError(
                    f"task {task.task_id}: no tier/codec can complete "
                    f"{task.size} bytes within the remaining "
                    f"{deadline_budget:.6g}s budget"
                )
        n_codecs = len(candidates)

        # Remaining-capacity clamp (see repro.hcdp.plan_cache): no stored
        # footprint of this task exceeds bucket + header, so capacities
        # beyond that bound are indistinguishable to the DP. Applied
        # identically with the cache on or off, keeping both paths
        # byte-identical.
        clamp = float(bucket + HEADER_SIZE)
        remaining = [min(rem, clamp) for rem in remaining]

        # Deadline budgets are continuous values that would put a unique
        # key in the cache per plan; deadline-constrained plans bypass the
        # whole-schema cache and the shared memo entirely.
        cache_on = self.plan_cache_config.enabled and deadline_budget is None
        context_key: tuple | None = None
        if cache_on:
            self._sync_cache_generation()
            context_key = (
                (dtype, data_format, distribution),
                bucket,
                self.predictor.model_version,
                self._priority_version,
                self.allow_identity,
                self.monitor.state_epoch,
                tuple(usable),
                tuple(loads),
                tuple(queued),
                tuple(remaining),
                drain_per_byte,
                tuple(sorted(blocked_tiers)),
                codec_filter,
            )
            cached = self.plan_cache.get_schema(task.size, context_key)
            if cached is not None:
                self.stats.plan_cache_hits += 1
                schema.pieces = list(cached.pieces)
                schema.expected_cost = cached.expected_cost
                schema.memo_hits = cached.memo_hits
                schema.memo_misses = cached.memo_misses
                self.stats.tasks_planned += 1
                self.stats.pieces_emitted += len(schema.pieces)
                return schema
            self.stats.plan_cache_misses += 1
            memo = self.plan_cache.memo(context_key)
        else:
            memo = {}

        hits_before = self.stats.memo_hits
        misses_before = self.stats.memo_misses

        def match(size: int, level: int, codec: int) -> tuple[float, tuple]:
            if level >= levels or codec >= n_codecs:
                return _INF, ("infeasible",)
            key = (size, level, codec)
            hit = memo.get(key)
            if hit is not None:
                self.stats.memo_hits += 1
                return hit
            self.stats.memo_misses += 1

            best_cost = _INF
            best_action: tuple = ("infeasible",)
            if usable[level]:
                name, ecc = candidates[codec]
                ratio = ecc.ratio if ecc is not None else 1.0
                stored = _stored_size(size, ratio)
                spec = specs[level]
                load = loads[level]
                # The drain term applies to every tier uniformly: a byte
                # stored anywhere above the sink eventually crosses the
                # sink's pipe, and a byte placed on the sink crosses it
                # immediately — exempting either would bias placement.
                if stored <= remaining[level]:
                    cost = self.cost_model.place_cost(
                        size, spec, ecc, load, queued[level], drain_per_byte
                    ).total
                    if cost < best_cost:
                        best_cost, best_action = cost, ("place",)
                else:
                    usable_bytes = remaining[level] - HEADER_SIZE
                    fit = align_down(max(int(usable_bytes * ratio), 0), self.grain)
                    if 0 < fit < size:
                        head = self.cost_model.place_cost(
                            fit, spec, ecc, load, queued[level], drain_per_byte
                        ).total
                        tail, _ = match(size - fit, level + 1, codec)
                        cost = head + tail
                        if cost < best_cost:
                            best_cost, best_action = cost, ("split", fit)

            down_cost, _ = match(size, level + 1, codec)
            if down_cost < best_cost:
                best_cost, best_action = down_cost, ("next_tier",)
            side_cost, _ = match(size, level, codec + 1)
            if side_cost < best_cost:
                best_cost, best_action = side_cost, ("next_codec",)

            memo[key] = (best_cost, best_action)
            return best_cost, best_action

        total_cost, _ = match(task.size, 0, 0)
        if not math.isfinite(total_cost):
            raise PlacementError(
                f"task {task.task_id}: no feasible placement "
                f"({task.size} bytes across {levels} tiers)"
            )

        # Reconstruct the decision path into schema pieces.
        size, offset, level, codec = task.size, 0, 0, 0
        while size > 0:
            _, action = memo[(size, level, codec)]
            kind = action[0]
            if kind == "place":
                self._emit(
                    schema, offset, size, level, codec, candidates, specs,
                    loads, queued, drain_per_byte,
                )
                break
            if kind == "split":
                fit = action[1]
                self._emit(
                    schema, offset, fit, level, codec, candidates, specs,
                    loads, queued, drain_per_byte,
                )
                offset += fit
                size -= fit
                level += 1
            elif kind == "next_tier":
                level += 1
            elif kind == "next_codec":
                codec += 1
            else:  # pragma: no cover - guarded by the finiteness check
                raise PlacementError(f"unexpected action {action!r}")

        schema.expected_cost = total_cost
        # Per-plan DP footprint (not the engine's cumulative counters).
        schema.memo_hits = self.stats.memo_hits - hits_before
        schema.memo_misses = self.stats.memo_misses - misses_before
        self.stats.tasks_planned += 1
        self.stats.pieces_emitted += len(schema.pieces)
        if cache_on and context_key is not None:
            self.plan_cache.put_schema(
                task.size,
                context_key,
                CachedPlan(
                    pieces=tuple(schema.pieces),
                    expected_cost=total_cost,
                    memo_hits=schema.memo_hits,
                    memo_misses=schema.memo_misses,
                ),
            )
        return schema

    # -- batch planning -------------------------------------------------------

    def batch_fast_path_ok(self) -> bool:
        """Whether the raw-sample batch planner may be used.

        Requires the whole-schema cache (the signature fast path reuses
        its exactness contract), interval-0 monitoring (raw samples drop
        the cached snapshot, which an interval > 0 would observe), and no
        observability sink (spans/metrics are attributed per plan call).
        """
        return (
            self.obs is None
            and self.plan_cache_config.enabled
            and self.monitor.interval == 0.0
        )

    def prefetch_candidates(self, tasks: list[IOTask]) -> int:
        """Warm ECC candidate tables for a batch with one predict_batch.

        Deduplicates the batch's (feature key, size bucket) groups in
        first-appearance order and hands them to
        :meth:`~repro.ccp.predictor.CompressionCostPredictor.prefetch_tables`.
        Returns the number of tables built.
        """
        groups: dict[tuple[str, str, str, int], None] = {}
        features: dict[int, tuple] = {}  # id(analysis) -> (analysis, key)
        prev_analysis = None
        prev_size = -1
        for task in tasks:
            if task.operation != Operation.WRITE or task.size == 0:
                continue
            analysis = task.analysis
            size = task.size
            if analysis is prev_analysis and size == prev_size:
                continue  # a burst repeats one shape; same group
            prev_analysis = analysis
            prev_size = size
            memo = features.get(id(analysis))
            if memo is None or memo[0] is not analysis:
                memo = (analysis, analysis.feature_key())
                features[id(analysis)] = memo
            dtype, data_format, distribution = memo[1]
            bucket = 1 << (size - 1).bit_length()
            groups.setdefault((dtype, data_format, distribution, bucket))
        if not groups:
            return 0
        return self.predictor.prefetch_tables(
            list(groups), self.pool.names[1:]
        )

    def batch_planner(self) -> "BatchPlanner":
        """A stateful per-batch planning context (see :class:`BatchPlanner`)."""
        return BatchPlanner(self)

    def plan_batch(self, tasks: list[IOTask]) -> list[Schema]:
        """Plan a sequence of write tasks through the batch fast path.

        Produces exactly the schemas — and the same engine/cache counters
        — that ``[self.plan(t) for t in tasks]`` would, but samples the
        monitor raw, reuses the previous task's plan outright when the
        planning signature repeats, and warms all ECC candidate tables
        with a single vectorized predict_batch call up front. Falls back
        to the per-task path entirely when the fast path's preconditions
        do not hold.
        """
        tasks = list(tasks)
        if not self.batch_fast_path_ok():
            return [self.plan(task) for task in tasks]
        self.prefetch_candidates(tasks)
        planner = self.batch_planner()
        return [planner.plan(task) for task in tasks]

    def _sync_cache_generation(self) -> None:
        """Flush the plan cache when the world it was built against moved.

        The monitor's ``state_epoch`` (tier up/down, capacity-band
        crossing) and the predictor's ``model_version`` (feedback retrain)
        are both part of every cache key, so this flush is memory hygiene
        and an observable invalidation contract rather than a correctness
        requirement.
        """
        epoch = self.monitor.state_epoch
        version = self.predictor.model_version
        if epoch != self._cache_epoch or version != self._cache_model_version:
            if self.plan_cache.clear():
                self.stats.plan_cache_invalidations += 1
            self._cache_epoch = epoch
            self._cache_model_version = version

    def _emit(
        self,
        schema: Schema,
        offset: int,
        length: int,
        level: int,
        codec: int,
        candidates: list[tuple[str, ExpectedCompressionCost | None]],
        specs,
        loads,
        queued,
        drain_per_byte: float,
    ) -> None:
        name, ecc = candidates[codec]
        ratio = ecc.ratio if ecc is not None else 1.0
        cost = self.cost_model.place_cost(
            length, specs[level], ecc, loads[level], queued[level], drain_per_byte
        )
        schema.pieces.append(
            SubTaskPlan(
                offset=offset,
                length=length,
                tier=specs[level].name,
                tier_level=level,
                codec=name,
                expected_ratio=max(ratio, 1.0),
                expected_stored_size=_stored_size(length, ratio),
                expected_cost=cost.total,
            )
        )


class BatchPlanner:
    """Signature-keyed fast path over :meth:`HcdpEngine._plan` for batches.

    One instance plans the tasks of one batch in order. Per task it
    either takes a raw monitor sample (side-effect-identical to the
    per-task path's ``status()`` refresh) and builds a *planning
    signature* — every input that feeds the whole-schema cache key — or,
    once a signature has been established, proves the signature unchanged
    without rebuilding it: the planner tracks the only mutable signature
    inputs (tier fill, capacity bands, the clamped-remaining view)
    through the batch's own write receipts (:meth:`note_result`) and
    compares the cheap scalars (size, features, model/priority versions,
    epoch, pressure band) directly. When the signature is provably equal
    to the previous task's, the previous plan is reused outright with the
    same counter updates a sequential schema-cache hit would record:
    equal signatures imply an equal context key, so the sequential path
    would have hit the cache and returned the identical plan. Any change
    — a capacity band crossing, the clamped remaining dipping, a model
    update, a write the planner was not told about — falls back to the
    full sample-and-plan path, which re-establishes the tracked state.

    The only telemetry the fast path does not replicate is the plan
    cache's internal LRU recency (a signature hit skips the
    ``get_schema`` touch), the predictor's table-cache hit/miss split,
    and the monitor's snapshot *timestamps* (a proven-unchanged task
    counts its sample without consuming clock reads; times feed no
    planning input) — all cache/clock instrumentation, not planning
    outputs; counters that describe plans (tasks, pieces, hits/misses,
    degraded, memo deltas, samples taken) match exactly.

    Callers must hold :meth:`HcdpEngine.batch_fast_path_ok`; QoS
    constraints (deadline, codec filter, blocked tiers) must go through
    :meth:`HcdpEngine.plan` instead — they bypass the schema cache, so
    there is nothing for a signature to reuse.
    """

    def __init__(self, engine: HcdpEngine) -> None:
        self.engine = engine
        specs = [tier.spec for tier in engine.monitor.hierarchy]
        self._bounded_cap = sum(
            s.capacity for s in specs if s.capacity is not None
        )
        self._sink_bw = specs[-1].bandwidth if specs else 1.0
        self._level_by_name = {s.name: i for i, s in enumerate(specs)}
        self._bands = engine.plan_cache_config.capacity_bands
        # Per-analysis feature-key memo: a burst's tasks share one
        # InputAnalysis object, so the triple is computed once per batch.
        # The entry pins the analysis so its id() stays valid.
        self._features: dict[int, tuple] = {}
        # Burst-lane model: the last established signature's inputs, with
        # tier fill / remaining / band tracked live via note_result.
        self._model_valid = False
        self._m_plan: CachedPlan | None = None
        self._m_pieces_len = 0
        self._m_size = -1
        self._m_features: tuple | None = None
        self._m_model_version = -1
        self._m_priority_version = -1
        self._m_epoch = -1
        self._m_drain = 0.0
        self._m_clamp = 0.0
        self._m_all_avail = True
        self._m_loads_sum = 0
        self._m_avail: tuple = ()
        self._m_rem: list = []
        self._m_used: list = []
        self._m_band: list = []
        self._m_clamped: list = []
        # Debits of the last quoted run template: [(level, bytes/task)].
        self._run_debits: list = []

    def invalidate(self) -> None:
        """Drop the burst-lane model; the next plan resamples in full."""
        self._model_valid = False

    def note_result(self, result) -> None:
        """Fold one write's receipts into the tracked tier model.

        Every batch write (fast path, fallback, or replan) must pass
        through here, in execution order — the receipts carry the landed
        tier and accounted footprint, which are the only tier mutations a
        gated batch can make. A band crossing or clamped-remaining change
        invalidates the model instead of updating it: the next plan runs
        the full sample path, which bumps the epoch and re-plans exactly
        where the sequential path would.
        """
        if not self._model_valid:
            return
        levels = self._level_by_name
        for piece in result.pieces:
            level = levels.get(piece.tier)
            if level is None:  # pragma: no cover - unknown tier name
                self._model_valid = False
                return
            used = self._m_used[level] + piece.stored_size
            self._m_used[level] = used
            rem = self._m_rem[level]
            if rem is None:
                continue
            rem -= piece.stored_size
            self._m_rem[level] = rem
            if self._m_avail[level]:
                clamped = min(float(rem), self._m_clamp)
            else:  # pragma: no cover - down tiers take no fast writes
                clamped = 0.0
            if clamped != self._m_clamped[level]:
                self._model_valid = False
                return
            capacity = used + rem
            if capacity <= 0:
                band = 0
            else:
                fraction = min(max(used / capacity, 0.0), 1.0)
                band = min(int(fraction * self._bands), self._bands - 1)
            if band != self._m_band[level]:
                self._model_valid = False
                return

    def run_quota(self, task: IOTask, result) -> int:
        """How many more *identical* tasks provably replan to the same plan.

        ``task``/``result`` are the just-executed template. The quota is
        the largest ``k`` such that k further tasks of the same size,
        analysis, and sample — each landing the template's receipts — keep
        every burst-lane signature input unchanged: no drain-pressure band
        crossing, no tier capacity-band crossing, no clamped-remaining
        dip, and every piece still fitting its planned tier. Within the
        quota the per-task plan/debit/receipt cycle collapses to bulk
        arithmetic (the run lane); each bound is closed-form off the
        tracked ledger, then float-verified at ``k`` (every bound is
        monotone in the task index, so one endpoint check covers the run).
        Model-version changes *inside* a run are prevented by the caller's
        feedback-headroom clamp; a flush that already fired during the
        template task itself (between its record and the run start) is
        caught here by comparing the memoized model/priority/epoch
        versions against the live engine.

        Returns 0 when the template is unusable as a run prototype: model
        invalid or stale-versioned, spilled/failed-over/retried pieces, or
        a tier so close to a boundary that the very next task would move
        the signature.
        """
        if not self._model_valid:
            return 0
        engine = self.engine
        if (
            engine.predictor.model_version != self._m_model_version
            or engine._priority_version != self._m_priority_version
            or engine.monitor.state_epoch != self._m_epoch
        ):
            # The template went stale after its own plan — e.g. its
            # feedback record fired a flush. The sequential path replans
            # the very next task against the new model, so no run may
            # start from this template.
            return 0
        debits: dict[int, int] = {}
        levels = self._level_by_name
        for piece in result.pieces:
            if piece.spilled or piece.failover or piece.retries:
                return 0
            level = levels.get(piece.tier)
            if level is None or piece.plan.tier_level != level:
                return 0
            debits[level] = debits.get(level, 0) + piece.stored_size
        quota = 1 << 60
        size = task.size
        if engine.drain_penalty and self._bounded_cap:
            cap = self._bounded_cap
            planned = engine._planned_bytes
            if planned < cap:
                bands = self._bands
                band = math.floor(min(1.0, planned / cap) * bands)
                k = int(((band + 1) * cap / bands - planned) // size)
                while k > 0 and (
                    math.floor(min(1.0, (planned + k * size) / cap) * bands)
                    != band
                ):
                    k -= 1
                quota = min(quota, k)
        bands = self._bands
        clamp = self._m_clamp
        for level, debit in debits.items():
            if debit <= 0:
                continue
            if not self._m_avail[level]:
                return 0
            rem = self._m_rem[level]
            if rem is None:
                continue
            k_fit = rem // debit
            clamped = self._m_clamped[level]
            if float(rem) > clamp:
                k_clamp = int((rem - clamp) // debit)
                while k_clamp > 0 and (
                    min(float(rem - k_clamp * debit), clamp) != clamped
                ):
                    k_clamp -= 1
            else:
                # Remaining is below the signature clamp: any debit moves
                # the clamped view, so no run can start here.
                k_clamp = 0
            used = self._m_used[level]
            capacity = used + rem
            band = self._m_band[level]
            if capacity <= 0:
                k_band = 0
            else:
                k_band = int(((band + 1) * capacity / bands - used) // debit)
                while k_band > 0:
                    fraction = min(max((used + k_band * debit) / capacity, 0.0), 1.0)
                    if min(int(fraction * bands), bands - 1) == band:
                        break
                    k_band -= 1
            quota = min(quota, k_fit, k_clamp, k_band)
        if quota <= 0:
            return 0
        self._run_debits = sorted(debits.items())
        return quota

    def emit_schema(self, task: IOTask) -> Schema:
        """One run task's schema from the established plan (no counters —
        :meth:`commit_run` records the whole run's in bulk)."""
        cached = self._m_plan
        schema = Schema(
            task=task,
            pieces=list(cached.pieces),
            expected_cost=cached.expected_cost,
            memo_hits=cached.memo_hits,
            memo_misses=cached.memo_misses,
        )
        schema._pieces_source = cached.pieces
        return schema

    def commit_run(self, count: int, size: int) -> None:
        """Fold ``count`` executed run tasks into planner + engine state.

        Exactly ``count`` sequential burst-lane hits' worth of counter
        and ledger updates (ints throughout, so bulk addition is
        bit-identical to repeated addition); the quota already proved no
        clamped/band value moves, so the model stays valid.
        """
        if count <= 0:
            return
        engine = self.engine
        monitor = engine.monitor
        monitor._cached = None
        monitor._samples += count
        engine._planned_bytes += count * size
        stats = engine.stats
        stats.plan_cache_hits += count
        stats.tasks_planned += count
        stats.pieces_emitted += count * self._m_pieces_len
        if not self._m_all_avail:
            stats.degraded_plans += count
        for level, debit in self._run_debits:
            self._m_used[level] += count * debit
            rem = self._m_rem[level]
            if rem is not None:
                self._m_rem[level] = rem - count * debit

    def plan(self, task: IOTask) -> Schema:
        engine = self.engine
        if task.operation != Operation.WRITE or task.size == 0:
            # Delegate for the exact error / empty-schema behaviour; the
            # per-task path takes no sample for these either.
            return engine._plan(task)
        analysis = task.analysis
        cached_features = self._features.get(id(analysis))
        if cached_features is None or cached_features[0] is not analysis:
            cached_features = (analysis, analysis.feature_key())
            self._features[id(analysis)] = cached_features
        features = cached_features[1]
        if (
            self._model_valid
            and task.size == self._m_size
            and features == self._m_features
            and engine.predictor.model_version == self._m_model_version
            and engine._priority_version == self._m_priority_version
            and engine.monitor.state_epoch == self._m_epoch
        ):
            planned_after = engine._planned_bytes + task.size
            peak_after = engine._peak_concurrency
            observed = self._m_loads_sum + 1
            if observed > peak_after:
                peak_after = observed
            drain_per_byte = 0.0
            if engine.drain_penalty and self._bounded_cap:
                pressure = min(1.0, planned_after / self._bounded_cap)
                bands = self._bands
                pressure = math.floor(pressure * bands) / bands
                drain_per_byte = (
                    engine.drain_penalty * pressure * peak_after / self._sink_bw
                )
            if drain_per_byte == self._m_drain:
                # Signature provably equal to the previous task's: every
                # input either compared equal above or is tier state this
                # planner tracked through the batch's own receipts.
                monitor = engine.monitor
                monitor._cached = None
                monitor._samples += 1
                engine._planned_bytes = planned_after
                engine._peak_concurrency = peak_after
                stats = engine.stats
                if not self._m_all_avail:
                    stats.degraded_plans += 1
                stats.plan_cache_hits += 1
                cached = self._m_plan
                schema = Schema(
                    task=task,
                    pieces=list(cached.pieces),
                    expected_cost=cached.expected_cost,
                    memo_hits=cached.memo_hits,
                    memo_misses=cached.memo_misses,
                )
                schema._pieces_source = cached.pieces
                stats.tasks_planned += 1
                stats.pieces_emitted += self._m_pieces_len
                return schema
        return self._plan_sampled(task, features)

    def _plan_sampled(self, task: IOTask, features: tuple) -> Schema:
        """Full sample-and-sign path; re-establishes the burst model."""
        engine = self.engine
        raw = engine.monitor.sample_raw()
        bucket = 1 << (task.size - 1).bit_length()
        planned_after = engine._planned_bytes + task.size
        loads_sum = sum(raw.loads)
        peak_after = max(engine._peak_concurrency, loads_sum + 1)
        drain_per_byte = 0.0
        if engine.drain_penalty and self._bounded_cap:
            pressure = min(1.0, planned_after / self._bounded_cap)
            bands = self._bands
            pressure = math.floor(pressure * bands) / bands
            drain_per_byte = (
                engine.drain_penalty * pressure * peak_after / self._sink_bw
            )
        # Same remaining-capacity clamp as ``_plan``'s context key (see
        # repro.hcdp.plan_cache): capacities beyond bucket + header are
        # indistinguishable to the DP, so a draining burst's shifting
        # ledger collapses to one signature instead of missing per task.
        # Down tiers read as 0 remaining (``TierStatus`` semantics).
        clamp = float(bucket + HEADER_SIZE)
        remaining = tuple(
            (clamp if rem is None else min(float(rem), clamp)) if avail else 0.0
            for avail, rem in zip(raw.available, raw.remaining)
        )
        sig = (
            task.size,
            features,
            bucket,
            engine.predictor.model_version,
            engine._priority_version,
            engine.monitor.state_epoch,
            raw.available,
            raw.loads,
            raw.queued,
            remaining,
            drain_per_byte,
        )
        cached = engine.plan_cache.get_signature(sig)
        if cached is not None:
            engine._planned_bytes = planned_after
            engine._peak_concurrency = peak_after
            stats = engine.stats
            if not all(raw.available):
                stats.degraded_plans += 1
            stats.plan_cache_hits += 1
            schema = Schema(task=task)
            schema.pieces = list(cached.pieces)
            schema.expected_cost = cached.expected_cost
            schema.memo_hits = cached.memo_hits
            schema.memo_misses = cached.memo_misses
            schema._pieces_source = cached.pieces
            stats.tasks_planned += 1
            stats.pieces_emitted += len(schema.pieces)
            self._establish(
                task, features, raw, cached, clamp, remaining,
                drain_per_byte, loads_sum,
            )
            return schema
        schema = engine._plan(task, _status=raw.to_status())
        cached = CachedPlan(
            pieces=tuple(schema.pieces),
            expected_cost=schema.expected_cost,
            memo_hits=schema.memo_hits,
            memo_misses=schema.memo_misses,
        )
        engine.plan_cache.put_signature(sig, cached)
        schema._pieces_source = cached.pieces
        self._establish(
            task, features, raw, cached, clamp, remaining, drain_per_byte,
            loads_sum,
        )
        return schema

    def _establish(
        self,
        task: IOTask,
        features: tuple,
        raw,
        cached: CachedPlan,
        clamp: float,
        clamped_remaining: tuple,
        drain_per_byte: float,
        loads_sum: int,
    ) -> None:
        engine = self.engine
        self._m_plan = cached
        self._m_pieces_len = len(cached.pieces)
        self._m_size = task.size
        self._m_features = features
        self._m_model_version = engine.predictor.model_version
        self._m_priority_version = engine._priority_version
        self._m_epoch = engine.monitor.state_epoch
        self._m_drain = drain_per_byte
        self._m_clamp = clamp
        self._m_all_avail = all(raw.available)
        self._m_loads_sum = loads_sum
        self._m_avail = raw.available
        self._m_rem = list(raw.remaining)
        self._m_used = list(raw.used)
        self._m_band = [band for _avail, band in raw.signature]
        self._m_clamped = list(clamped_remaining)
        self._model_valid = True


def _stored_size(size: int, ratio: float) -> int:
    """Expected stored footprint of ``size`` bytes at compression ``ratio``,
    including the 16-byte sub-task metadata header."""
    if ratio <= 1.0:
        return size + HEADER_SIZE
    return max(1, math.ceil(size / ratio)) + HEADER_SIZE
