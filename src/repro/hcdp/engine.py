"""The Hierarchical Compression and Data Placement engine (paper §IV-F).

Implements the recursive dynamic program of equations (1)-(2):

    Match(i, l, c) = min( Place(i, l, c)                  if s_ic fits l,
                          Place(i',l, c) + Match(a', l+1, c)   otherwise,
                          Match(i, l+1, c),
                          Match(i, l, c+1) )

with memoization on (task size, tier index, codec index). Splits are cut at
the 4096-byte grain (RAM page / NVMe block), which both aligns the I/O and
makes sub-problems reusable across tasks — the property that gives the
algorithm its practically-O(1) cost.

Inputs come from the three sibling components exactly as in the paper:
data attributes from the Input Analyzer, the expected-cost table from the
Compression Cost Predictor, and remaining capacity / load / availability
from the System Monitor.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..ccp.predictor import CompressionCostPredictor, ExpectedCompressionCost
from ..codecs.metadata import HEADER_SIZE
from ..codecs.pool import CompressionLibraryPool
from ..errors import DeadlineExceededError, PlacementError
from ..monitor.system_monitor import SystemMonitor
from ..units import MB, PAGE, align_down
from .cost import CostModel
from .plan_cache import CachedPlan, PlanCache, PlanCacheConfig
from .priorities import EQUAL, Priority
from .schema import Schema, SubTaskPlan
from .task import IOTask, Operation

__all__ = ["HcdpEngine", "EngineStats"]

_INF = math.inf


@dataclass
class EngineStats:
    """Cumulative engine counters (Fig. 4(a)'s subject)."""

    tasks_planned: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    pieces_emitted: int = 0
    degraded_plans: int = 0  # plans made while >= 1 tier was reported down
    plan_cache_hits: int = 0  # whole-schema cache hits
    plan_cache_misses: int = 0  # plans that had to run the DP
    plan_cache_invalidations: int = 0  # flush events (epoch/model/priority)

    @property
    def hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class HcdpEngine:
    """Hierarchy-aware compression + placement optimizer.

    Args:
        predictor: Fitted cost model supplying ECC tuples.
        monitor: System Monitor over the target hierarchy.
        pool: Codec roster ("none" must be member 0, which the pool
            guarantees).
        priority: Workload priority weights (Table II).
        grain: Split alignment in bytes (the paper's 4096).
        load_factor: Queue-depth sensitivity of the cost model.
        drain_penalty: Scale of the amortised capacity-pressure term
            (0 disables it; see the ablation bench). Occupying a bounded
            tier is charged ``pressure x concurrency / sink bandwidth``
            per stored byte, reflecting that everything buffered above the
            sink must eventually cross the sink's (shared, serial) pipe.
        allow_identity: Keep "no compression" in the choice set (paper
            §IV-F1 insists on it; disable only for the ablation study).
        plan_cache: Cross-task plan-cache policy (DESIGN.md §8). Defaults
            to enabled; pass ``PlanCacheConfig(enabled=False)`` for the
            seed's plan-from-scratch behaviour.
        obs: Optional :class:`~repro.obs.Observability` sink. ``None``
            (the default) keeps :meth:`plan` on the uninstrumented fast
            path — a single identity check per call, which is what the
            perf gate benches.
    """

    def __init__(
        self,
        predictor: CompressionCostPredictor,
        monitor: SystemMonitor,
        pool: CompressionLibraryPool,
        priority: Priority = EQUAL,
        grain: int = PAGE,
        load_factor: float = 1.0,
        drain_penalty: float = 1.0,
        allow_identity: bool = True,
        plan_cache: PlanCacheConfig | None = None,
        obs=None,
    ) -> None:
        if grain < 1:
            raise ValueError(f"grain must be >= 1, got {grain}")
        if drain_penalty < 0:
            raise ValueError(f"drain_penalty must be >= 0, got {drain_penalty}")
        self.predictor = predictor
        self.monitor = monitor
        self.pool = pool
        self.grain = grain
        self.drain_penalty = drain_penalty
        self.allow_identity = allow_identity
        self.obs = obs
        self.cost_model = CostModel(priority=priority, load_factor=load_factor)
        self.stats = EngineStats()
        self.plan_cache_config = (
            plan_cache if plan_cache is not None else PlanCacheConfig()
        )
        self.plan_cache = PlanCache(self.plan_cache_config)
        self._cache_epoch: int | None = None
        self._cache_model_version: int | None = None
        self._priority_version = 0
        # Sticky pressure signals: a bulk-synchronous burst plans before its
        # own I/O lands, so instantaneous load/fill underestimate the true
        # contention. Cumulative planned bytes and the peak observed
        # concurrency are monotone and warm up within the first burst.
        self._planned_bytes = 0
        self._peak_concurrency = 1

    @property
    def priority(self) -> Priority:
        return self.cost_model.priority

    def set_priority(self, priority: Priority) -> None:
        """Runtime priority swap (the paper's dynamic reconfiguration)."""
        self.cost_model = CostModel(
            priority=priority, load_factor=self.cost_model.load_factor
        )
        self._priority_version += 1
        if self.plan_cache.clear():
            self.stats.plan_cache_invalidations += 1

    # -- planning ------------------------------------------------------------

    def plan(
        self,
        task: IOTask,
        *,
        deadline_budget: float | None = None,
        codec_filter: str | None = None,
        blocked_tiers: tuple[str, ...] = (),
    ) -> Schema:
        """Produce the optimal compression/placement schema for a write task.

        The keyword constraints come from the QoS governor and default to
        no-ops: ``blocked_tiers`` excludes breaker-quarantined tiers from
        the choice set, ``codec_filter`` (``"fastest"`` / ``"none"``)
        implements the brownout ladder's codec restrictions, and
        ``deadline_budget`` (remaining modeled seconds) prunes tiers and
        codecs whose modeled completion cannot fit — raising
        :class:`~repro.errors.DeadlineExceededError` when nothing is left.
        """
        obs = self.obs
        if obs is None:
            return self._plan(
                task,
                deadline_budget=deadline_budget,
                codec_filter=codec_filter,
                blocked_tiers=blocked_tiers,
            )
        hits_before = self.stats.plan_cache_hits
        wall = time.perf_counter()
        with obs.region("hcdp.plan", task=task.task_id, size=task.size) as sp:
            schema = self._plan(
                task,
                deadline_budget=deadline_budget,
                codec_filter=codec_filter,
                blocked_tiers=blocked_tiers,
            )
            cache_hit = self.stats.plan_cache_hits > hits_before
            sp.set_attr("cache", "hit" if cache_hit else "miss")
            sp.set_attr("pieces", len(schema.pieces))
        obs.record_plan(cache_hit, time.perf_counter() - wall)
        return schema

    def _plan(
        self,
        task: IOTask,
        *,
        deadline_budget: float | None = None,
        codec_filter: str | None = None,
        blocked_tiers: tuple[str, ...] = (),
    ) -> Schema:
        if task.operation != Operation.WRITE:
            raise PlacementError(
                "the HCDP engine plans write tasks; reads are driven by "
                "sub-task metadata"
            )
        schema = Schema(task=task)
        if task.size == 0:
            self.stats.tasks_planned += 1
            return schema

        status = self.monitor.status()
        hierarchy = self.monitor.hierarchy
        specs = [tier.spec for tier in hierarchy]
        levels = len(specs)
        remaining: list[float] = []
        loads: list[int] = []
        queued: list[int] = []
        usable: list[bool] = []
        for tier_status in status.tiers:
            rem = tier_status.effective_remaining()
            remaining.append(_INF if rem is None else float(rem))
            loads.append(tier_status.load)
            queued.append(tier_status.queued_bytes)
            usable.append(tier_status.available)
        if blocked_tiers:
            # Breaker-quarantined tiers are indistinguishable from down
            # tiers to the planner: excluded from the choice set, counted
            # as a degraded plan.
            blocked = frozenset(blocked_tiers)
            for level, spec in enumerate(specs):
                if spec.name in blocked:
                    usable[level] = False
        if not all(usable):
            # Degraded-mode planning: down tiers are excluded from the
            # choice set and the DP routes every byte through the
            # survivors; PlacementError only if nothing is left at all.
            self.stats.degraded_plans += 1

        # Capacity-pressure drain cost (per stored byte on bounded tiers):
        # write-saturation of the bounded hierarchy x observed concurrency,
        # divided by the sink's aggregate bandwidth.
        self._planned_bytes += task.size
        self._peak_concurrency = max(self._peak_concurrency, sum(loads) + 1)
        drain_per_byte = 0.0
        if self.drain_penalty:
            bounded_cap = sum(
                s.capacity for s in specs if s.capacity is not None
            )
            if bounded_cap:
                pressure = min(1.0, self._planned_bytes / bounded_cap)
                # Quantize write-saturation to the capacity-band grid: the
                # term models slow-building backlog, not per-task deltas,
                # and a continuously drifting float would put a unique
                # value in every plan-cache key. Applied with the cache on
                # or off, so both paths stay byte-identical.
                bands = self.plan_cache_config.capacity_bands
                pressure = math.floor(pressure * bands) / bands
                sink_bw = specs[-1].bandwidth
                drain_per_byte = (
                    self.drain_penalty
                    * pressure
                    * self._peak_concurrency
                    / sink_bw
                )

        # ECC table for this input; constraint 4 drops sub-unity codecs.
        # Candidates are predicted at the task's power-of-two size bucket
        # (the log-size feature is mild), which lets every task in a bucket
        # share one candidate table and one DP memo across the burst.
        dtype, data_format, distribution = task.analysis.feature_key()
        bucket = 1 << (task.size - 1).bit_length()
        if self.obs is not None:
            with self.obs.region("ccp.predict", bucket=bucket):
                table = self.predictor.candidate_table(
                    dtype, data_format, distribution, bucket,
                    self.pool.names[1:],
                )
        else:
            table = self.predictor.candidate_table(
                dtype, data_format, distribution, bucket, self.pool.names[1:]
            )
        candidates: list[tuple[str, ExpectedCompressionCost | None]] = (
            [("none", None)] if self.allow_identity else []
        )
        for name, ecc in zip(self.pool.names[1:], table):
            if ecc.ratio >= 1.0:
                candidates.append((name, ecc))

        if codec_filter == "none":
            # Brownout "skip compression": identity placement only, even
            # when allow_identity is off — shedding codec work entirely is
            # the point of this rung.
            candidates = [("none", None)]
        elif codec_filter == "fastest":
            fastest: tuple[str, ExpectedCompressionCost] | None = None
            for name, ecc in candidates:
                if ecc is not None and (
                    fastest is None or ecc.compress_mbps > fastest[1].compress_mbps
                ):
                    fastest = (name, ecc)
            candidates = [("none", None)]
            if fastest is not None:
                candidates.append(fastest)
        elif codec_filter is not None:
            raise ValueError(f"unknown codec_filter {codec_filter!r}")

        if deadline_budget is not None:
            best_ratio = 1.0
            for _, ecc in candidates:
                if ecc is not None and ecc.ratio > best_ratio:
                    best_ratio = ecc.ratio
            # Codec pruning: compression time alone must fit the budget
            # (identity never prunes). Tier pruning: even the optimistic
            # post-compression footprint must cross the tier's pipe in
            # budget, or the tier cannot possibly finish in time.
            candidates = [
                (name, ecc)
                for name, ecc in candidates
                if ecc is None
                or task.size / (ecc.compress_mbps * MB) <= deadline_budget
            ]
            optimistic_bytes = task.size / best_ratio
            for level, spec in enumerate(specs):
                if (
                    usable[level]
                    and spec.latency + optimistic_bytes / spec.lane_bandwidth
                    > deadline_budget
                ):
                    usable[level] = False
            if not any(usable) or not candidates:
                raise DeadlineExceededError(
                    f"task {task.task_id}: no tier/codec can complete "
                    f"{task.size} bytes within the remaining "
                    f"{deadline_budget:.6g}s budget"
                )
        n_codecs = len(candidates)

        # Remaining-capacity clamp (see repro.hcdp.plan_cache): no stored
        # footprint of this task exceeds bucket + header, so capacities
        # beyond that bound are indistinguishable to the DP. Applied
        # identically with the cache on or off, keeping both paths
        # byte-identical.
        clamp = float(bucket + HEADER_SIZE)
        remaining = [min(rem, clamp) for rem in remaining]

        # Deadline budgets are continuous values that would put a unique
        # key in the cache per plan; deadline-constrained plans bypass the
        # whole-schema cache and the shared memo entirely.
        cache_on = self.plan_cache_config.enabled and deadline_budget is None
        context_key: tuple | None = None
        if cache_on:
            self._sync_cache_generation()
            context_key = (
                (dtype, data_format, distribution),
                bucket,
                self.predictor.model_version,
                self._priority_version,
                self.allow_identity,
                self.monitor.state_epoch,
                tuple(usable),
                tuple(loads),
                tuple(queued),
                tuple(remaining),
                drain_per_byte,
                tuple(sorted(blocked_tiers)),
                codec_filter,
            )
            cached = self.plan_cache.get_schema(task.size, context_key)
            if cached is not None:
                self.stats.plan_cache_hits += 1
                schema.pieces = list(cached.pieces)
                schema.expected_cost = cached.expected_cost
                schema.memo_hits = cached.memo_hits
                schema.memo_misses = cached.memo_misses
                self.stats.tasks_planned += 1
                self.stats.pieces_emitted += len(schema.pieces)
                return schema
            self.stats.plan_cache_misses += 1
            memo = self.plan_cache.memo(context_key)
        else:
            memo = {}

        hits_before = self.stats.memo_hits
        misses_before = self.stats.memo_misses

        def match(size: int, level: int, codec: int) -> tuple[float, tuple]:
            if level >= levels or codec >= n_codecs:
                return _INF, ("infeasible",)
            key = (size, level, codec)
            hit = memo.get(key)
            if hit is not None:
                self.stats.memo_hits += 1
                return hit
            self.stats.memo_misses += 1

            best_cost = _INF
            best_action: tuple = ("infeasible",)
            if usable[level]:
                name, ecc = candidates[codec]
                ratio = ecc.ratio if ecc is not None else 1.0
                stored = _stored_size(size, ratio)
                spec = specs[level]
                load = loads[level]
                # The drain term applies to every tier uniformly: a byte
                # stored anywhere above the sink eventually crosses the
                # sink's pipe, and a byte placed on the sink crosses it
                # immediately — exempting either would bias placement.
                if stored <= remaining[level]:
                    cost = self.cost_model.place_cost(
                        size, spec, ecc, load, queued[level], drain_per_byte
                    ).total
                    if cost < best_cost:
                        best_cost, best_action = cost, ("place",)
                else:
                    usable_bytes = remaining[level] - HEADER_SIZE
                    fit = align_down(max(int(usable_bytes * ratio), 0), self.grain)
                    if 0 < fit < size:
                        head = self.cost_model.place_cost(
                            fit, spec, ecc, load, queued[level], drain_per_byte
                        ).total
                        tail, _ = match(size - fit, level + 1, codec)
                        cost = head + tail
                        if cost < best_cost:
                            best_cost, best_action = cost, ("split", fit)

            down_cost, _ = match(size, level + 1, codec)
            if down_cost < best_cost:
                best_cost, best_action = down_cost, ("next_tier",)
            side_cost, _ = match(size, level, codec + 1)
            if side_cost < best_cost:
                best_cost, best_action = side_cost, ("next_codec",)

            memo[key] = (best_cost, best_action)
            return best_cost, best_action

        total_cost, _ = match(task.size, 0, 0)
        if not math.isfinite(total_cost):
            raise PlacementError(
                f"task {task.task_id}: no feasible placement "
                f"({task.size} bytes across {levels} tiers)"
            )

        # Reconstruct the decision path into schema pieces.
        size, offset, level, codec = task.size, 0, 0, 0
        while size > 0:
            _, action = memo[(size, level, codec)]
            kind = action[0]
            if kind == "place":
                self._emit(
                    schema, offset, size, level, codec, candidates, specs,
                    loads, queued, drain_per_byte,
                )
                break
            if kind == "split":
                fit = action[1]
                self._emit(
                    schema, offset, fit, level, codec, candidates, specs,
                    loads, queued, drain_per_byte,
                )
                offset += fit
                size -= fit
                level += 1
            elif kind == "next_tier":
                level += 1
            elif kind == "next_codec":
                codec += 1
            else:  # pragma: no cover - guarded by the finiteness check
                raise PlacementError(f"unexpected action {action!r}")

        schema.expected_cost = total_cost
        # Per-plan DP footprint (not the engine's cumulative counters).
        schema.memo_hits = self.stats.memo_hits - hits_before
        schema.memo_misses = self.stats.memo_misses - misses_before
        self.stats.tasks_planned += 1
        self.stats.pieces_emitted += len(schema.pieces)
        if cache_on and context_key is not None:
            self.plan_cache.put_schema(
                task.size,
                context_key,
                CachedPlan(
                    pieces=tuple(schema.pieces),
                    expected_cost=total_cost,
                    memo_hits=schema.memo_hits,
                    memo_misses=schema.memo_misses,
                ),
            )
        return schema

    def _sync_cache_generation(self) -> None:
        """Flush the plan cache when the world it was built against moved.

        The monitor's ``state_epoch`` (tier up/down, capacity-band
        crossing) and the predictor's ``model_version`` (feedback retrain)
        are both part of every cache key, so this flush is memory hygiene
        and an observable invalidation contract rather than a correctness
        requirement.
        """
        epoch = self.monitor.state_epoch
        version = self.predictor.model_version
        if epoch != self._cache_epoch or version != self._cache_model_version:
            if self.plan_cache.clear():
                self.stats.plan_cache_invalidations += 1
            self._cache_epoch = epoch
            self._cache_model_version = version

    def _emit(
        self,
        schema: Schema,
        offset: int,
        length: int,
        level: int,
        codec: int,
        candidates: list[tuple[str, ExpectedCompressionCost | None]],
        specs,
        loads,
        queued,
        drain_per_byte: float,
    ) -> None:
        name, ecc = candidates[codec]
        ratio = ecc.ratio if ecc is not None else 1.0
        cost = self.cost_model.place_cost(
            length, specs[level], ecc, loads[level], queued[level], drain_per_byte
        )
        schema.pieces.append(
            SubTaskPlan(
                offset=offset,
                length=length,
                tier=specs[level].name,
                tier_level=level,
                codec=name,
                expected_ratio=max(ratio, 1.0),
                expected_stored_size=_stored_size(length, ratio),
                expected_cost=cost.total,
            )
        )


def _stored_size(size: int, ratio: float) -> int:
    """Expected stored footprint of ``size`` bytes at compression ``ratio``,
    including the 16-byte sub-task metadata header."""
    if ratio <= 1.0:
        return size + HEADER_SIZE
    return max(1, math.ceil(size / ratio)) + HEADER_SIZE
