"""Declarative fault plans: what breaks, when, and how badly.

A :class:`FaultPlan` is a seeded, fully deterministic schedule of fault
events against named tiers. Scheduled events (outages, recoveries,
slowdowns, capacity shrinks) fire at *simulated* timestamps; probabilistic
faults (transient I/O errors, payload corruption) are rates that the
:class:`~repro.faults.injector.FaultInjector` samples from one seeded RNG
in operation order — no wall clock, no unseeded randomness — so a chaos
run replays bit-identically from (plan, workload, seed).

Plans round-trip through JSON so chaos experiments can be checked in and
rerun from the CLI (``hcompress chaos --plan faults.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from pathlib import Path

from ..errors import HCompressError

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(str, Enum):
    """Every injectable fault class."""

    TIER_DOWN = "tier_down"  # outage: all puts/gets raise TierUnavailableError
    TIER_UP = "tier_up"  # recovery
    SLOWDOWN = "slowdown"  # value = service-time multiplier (>= 1)
    CAPACITY_LIMIT = "capacity_limit"  # value = usable bytes (None restores)
    WRITE_ERROR_RATE = "write_error_rate"  # value = P(TransientIOError) per store
    READ_ERROR_RATE = "read_error_rate"  # value = P(TransientIOError) per load
    CORRUPT_RATE = "corrupt_rate"  # value = P(bit-flip) per load


_VALUE_REQUIRED = {
    FaultKind.SLOWDOWN,
    FaultKind.WRITE_ERROR_RATE,
    FaultKind.READ_ERROR_RATE,
    FaultKind.CORRUPT_RATE,
}
_RATE_KINDS = {
    FaultKind.WRITE_ERROR_RATE,
    FaultKind.READ_ERROR_RATE,
    FaultKind.CORRUPT_RATE,
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` hits ``tier`` at simulated time ``at``.

    ``value`` carries the kind-specific parameter (slowdown factor,
    capacity limit in bytes, or a probability for the rate kinds).
    """

    at: float
    kind: FaultKind
    tier: str
    value: float | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise HCompressError(f"fault event time must be >= 0, got {self.at}")
        if not self.tier:
            raise HCompressError("fault event needs a tier name")
        if self.kind in _VALUE_REQUIRED and self.value is None:
            raise HCompressError(f"{self.kind.value} event needs a value")
        if self.kind in _RATE_KINDS and not 0.0 <= float(self.value) <= 1.0:
            raise HCompressError(
                f"{self.kind.value} probability must be in [0, 1], "
                f"got {self.value}"
            )
        if self.kind is FaultKind.SLOWDOWN and float(self.value) < 1.0:
            raise HCompressError(f"slowdown factor must be >= 1, got {self.value}")
        if (
            self.kind is FaultKind.CAPACITY_LIMIT
            and self.value is not None
            and float(self.value) < 0
        ):
            raise HCompressError("capacity limit must be >= 0 or null")

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "kind": self.kind.value,
            "tier": self.tier,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultEvent":
        try:
            kind = FaultKind(raw["kind"])
        except (KeyError, ValueError) as exc:
            raise HCompressError(f"bad fault event {raw!r}: {exc}") from exc
        return cls(
            at=float(raw.get("at", 0.0)),
            kind=kind,
            tier=str(raw.get("tier", "")),
            value=raw.get("value"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of :class:`FaultEvent`, ordered by time.

    Args:
        events: The schedule; stored sorted by ``(at, tier, kind)`` so two
            plans with the same events compare (and replay) identically.
        seed: Seed of the injector's RNG for the probabilistic faults.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at, e.tier, e.kind.value))
        )
        object.__setattr__(self, "events", ordered)

    # -- builders ------------------------------------------------------------

    def with_events(self, *events: FaultEvent) -> "FaultPlan":
        return FaultPlan(events=self.events + tuple(events), seed=self.seed)

    def outage(self, tier: str, start: float, end: float) -> "FaultPlan":
        """Tier down over ``[start, end)`` — the kill-and-recover idiom."""
        if end <= start:
            raise HCompressError(f"outage needs end > start, got [{start}, {end})")
        return self.with_events(
            FaultEvent(start, FaultKind.TIER_DOWN, tier),
            FaultEvent(end, FaultKind.TIER_UP, tier),
        )

    def degraded(
        self, tier: str, start: float, end: float, factor: float
    ) -> "FaultPlan":
        """Bandwidth degradation window: ``factor``x slower I/O."""
        return self.with_events(
            FaultEvent(start, FaultKind.SLOWDOWN, tier, factor),
            FaultEvent(end, FaultKind.SLOWDOWN, tier, 1.0),
        )

    def flaky(
        self,
        tier: str,
        at: float = 0.0,
        write_p: float = 0.0,
        read_p: float = 0.0,
        corrupt_p: float = 0.0,
    ) -> "FaultPlan":
        """Set per-op transient-error/corruption rates from time ``at``."""
        events = []
        if write_p:
            events.append(FaultEvent(at, FaultKind.WRITE_ERROR_RATE, tier, write_p))
        if read_p:
            events.append(FaultEvent(at, FaultKind.READ_ERROR_RATE, tier, read_p))
        if corrupt_p:
            events.append(FaultEvent(at, FaultKind.CORRUPT_RATE, tier, corrupt_p))
        return self.with_events(*events)

    def shrink(self, tier: str, at: float, limit: int | None) -> "FaultPlan":
        """Shrink a tier's usable capacity to ``limit`` bytes at ``at``."""
        return self.with_events(
            FaultEvent(at, FaultKind.CAPACITY_LIMIT, tier, limit)
        )

    # -- views ---------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0 for an empty plan)."""
        return self.events[-1].at if self.events else 0.0

    def tiers(self) -> set[str]:
        return {event.tier for event in self.events}

    # -- JSON round trip -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in raw.get("events", [])
            ),
            seed=int(raw.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "FaultPlan":
        try:
            raw = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise HCompressError(f"cannot load fault plan {path}: {exc}") from exc
        return cls.from_dict(raw)
