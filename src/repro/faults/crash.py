"""Crash-consistency harness: kill the engine mid-flight, then prove recovery.

Complements `chaos` (which injects *device* faults the engine survives in
place) by modeling *process death*: a seeded
:class:`~repro.recovery.CrashPlan` arms one of the named
:data:`~repro.recovery.CRASH_SITES` and the run dies there with
:class:`~repro.errors.SimulatedCrashError` — no cleanup, no close, exactly
the state ``kill -9`` leaves. The harness then restores a fresh engine from
the recovery directory (snapshot + journal) and checks the durability
invariants from docs/RECOVERY.md:

* every **acknowledged** write reads back byte-identical;
* every **acknowledged** evict stays evicted;
* replaying the journal a second time changes nothing (idempotence);
* a second restore from the same directory is bit-identical to the first;
* no tier holds capacity the restored catalog does not reference
  (unacknowledged writes leak nothing), and no key survives on two tiers.

The workload mixes spilled writes, evictions, flusher drains, a mid-run
tier outage (so SHI failover paths carry live traffic), a mid-run
checkpoint, and an aggressively-tuned lifecycle daemon (so the
``lifecycle.*`` migration sites carry real re-tiering traffic) — enough
traffic that every crash site is actually reached.
:func:`sweep_crash_sites` runs the full site x hit matrix; it backs the
``crash-consistency`` CI job and ``hcompress chaos --crash-at``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..ccp import SeedData
from ..core import HCompress, HCompressConfig, HCompressProfiler
from ..core.config import LifecycleConfig, RecoveryConfig, ScrubConfig
from ..errors import HCompressError, SimulatedCrashError
from ..hermes.flusher import TierFlusher
from ..recovery import CRASH_SITES, CrashPlan, Crashpoints
from ..scrub import fsck_engine
from ..sim import Delay
from ..sim.clock import SimClock
from ..tiers import StorageHierarchy, ares_hierarchy
from ..units import KiB
from ..workloads.vpic import vpic_sample
from .injector import FaultInjector
from .latent import LatentCorruptionInjector
from .plan import FaultPlan

__all__ = [
    "CrashConfig",
    "CrashOutcome",
    "run_crash_recovery",
    "sweep_crash_sites",
]


@dataclass(frozen=True)
class CrashConfig:
    """Shape of the crash workload.

    Attributes:
        tasks: Buffers written (one compress call each).
        task_kib: Buffer size in KiB.
        step_seconds: Simulated seconds between writes.
        rng_seed: Workload data generator seed.
        monitor_interval: Monitor refresh period; kept *longer* than the
            write cadence so stale plans keep landing on the faulted tier
            and the SHI failover crash sites see real traffic.
        evict_every: Evict the oldest live task after every Nth write
            (0 disables), exercising the evict journal sites.
        checkpoint_after: Take a mid-run checkpoint once this many writes
            are acknowledged (0: bootstrap checkpoint only).
        outage_start/outage_end: Simulated-time window during which the
            ``outage_tier`` is down. The default hits RAM — the tier the
            stale plans keep targeting — so SHI failover carries real
            traffic (a down *lower* tier would be bypassed by the
            manager's capacity-spill path instead).
        outage_tier: Which tier the outage hits.
        fsync: Forwarded to :class:`~repro.core.config.RecoveryConfig`;
            the harness defaults to False (flush-only) because the crash
            model is process-level, and sweeps run dozens of engines.
        lifecycle: Run the lifecycle daemon (one ``step()`` after every
            write), tuned storage-heavy so demotions fire from the first
            scan and the ``lifecycle.*`` crash sites see several real
            migrations per run.
        lifecycle_migrations_per_step: Migration cap per daemon step.
        scrub: Run the integrity subsystem: content digests + digest
            verification on read + one scrubber ``step()`` after every
            write, with the manager's ``on_corrupt`` hook wired to a
            pristine mirror of every stored blob (the stand-in for a
            standby's shipped state), so the ``scrub.*`` repair crash
            sites carry real self-healing traffic.
        corrupt_every: With ``scrub``, plant one seeded latent (at-rest)
            byte flip into a stored blob after every Nth write
            (0 disables planting).
    """

    tasks: int = 8
    task_kib: int = 16
    step_seconds: float = 1.0
    rng_seed: int = 7
    monitor_interval: float = 4.0
    evict_every: int = 3
    checkpoint_after: int = 4
    outage_start: float = 1.2
    outage_end: float = 3.4
    outage_tier: str = "ram"
    fsync: bool = False
    lifecycle: bool = True
    lifecycle_migrations_per_step: int = 2
    scrub: bool = False
    corrupt_every: int = 0

    def __post_init__(self) -> None:
        if self.tasks < 1 or self.task_kib < 1:
            raise HCompressError("tasks and task_kib must be >= 1")
        if self.step_seconds <= 0:
            raise HCompressError("step_seconds must be positive")
        if self.evict_every < 0 or self.checkpoint_after < 0:
            raise HCompressError(
                "evict_every and checkpoint_after must be >= 0"
            )
        if self.corrupt_every < 0:
            raise HCompressError("corrupt_every must be >= 0")
        if self.corrupt_every and not self.scrub:
            raise HCompressError(
                "corrupt_every needs scrub=True (nothing would repair "
                "the planted rot)"
            )


@dataclass
class CrashOutcome:
    """What one crash/recover cycle did and whether the invariants held."""

    plan: CrashPlan | None
    crashed: bool = False
    fired_site: str | None = None
    error: str | None = None
    tasks_acked: int = 0
    evicts_acked: int = 0
    checkpoints: int = 0
    recovered: bool = False
    journal_truncated: bool = False
    records_replayed: int = 0
    orphans_evicted: int = 0
    duplicates_evicted: int = 0
    missing_keys: int = 0
    verified_intact: int = 0
    mismatched: int = 0
    missing_acked: int = 0
    evicted_still_present: int = 0
    orphan_keys_after: int = 0
    duplicate_keys_after: int = 0
    replay_idempotent: bool = False
    double_restore_identical: bool = False
    corruptions_planted: int = 0
    scrub_repairs: int = 0
    quarantined_after: int = 0
    fsck_errors_after: int = 0

    @property
    def holds(self) -> bool:
        """The durability contract, as one predicate (see module docstring)."""
        return (
            self.recovered
            and self.error is None
            and self.mismatched == 0
            and self.missing_acked == 0
            and self.evicted_still_present == 0
            and self.missing_keys == 0
            and self.orphan_keys_after == 0
            and self.duplicate_keys_after == 0
            and self.replay_idempotent
            and self.double_restore_identical
            and self.quarantined_after == 0
            and self.fsck_errors_after == 0
        )

    def summary(self) -> str:
        where = (
            f"crashed at {self.fired_site}"
            if self.crashed
            else "ran to completion"
        )
        verdict = "invariants hold" if self.holds else "INVARIANTS VIOLATED"
        return (
            f"{where}; {self.tasks_acked} acked / {self.evicts_acked} evicted; "
            f"recovery replayed {self.records_replayed} records "
            f"(truncated={self.journal_truncated}), swept "
            f"{self.orphans_evicted} orphans + {self.duplicates_evicted} dups; "
            f"{self.verified_intact} intact, {self.mismatched} mismatched — "
            f"{verdict}"
        )


def _default_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def _crash_hierarchy(config: CrashConfig) -> StorageHierarchy:
    """RAM holds ~1.5 buffers so writes spill and the flusher has work;
    NVMe is the spill target so the outage window forces SHI failover."""
    buffer_bytes = config.task_kib * KiB
    total = buffer_bytes * config.tasks
    return ares_hierarchy(
        ram_capacity=buffer_bytes * 3 // 2,
        nvme_capacity=total * 2,
        bb_capacity=total * 2,
        nodes=1,
    )


def _task_buffers(config: CrashConfig) -> dict[str, bytes]:
    rng = np.random.default_rng(config.rng_seed)
    return {
        f"crash/t{index}": vpic_sample(config.task_kib * KiB, rng)
        for index in range(config.tasks)
    }


def _advance(clock: SimClock, injector: FaultInjector, t: float) -> None:
    clock.advance_to(t)
    injector.advance_to(clock.now)


def _drive_flusher(proc, clock: SimClock, injector: FaultInjector) -> None:
    """Step the drain generator through one poll (ends at its Delay yield).

    I/O yields are treated as instantaneous — the harness measures
    crash-consistency, not drain throughput — but the poll delay still
    advances the simulated clock so fault-plan events keep landing.
    """
    for _ in range(256):
        event = next(proc)
        if isinstance(event, Delay):
            _advance(clock, injector, clock.now + event.seconds)
            return


def run_crash_recovery(
    plan: CrashPlan | None = None,
    config: CrashConfig | None = None,
    recovery_dir: str | Path | None = None,
    seed: SeedData | None = None,
) -> CrashOutcome:
    """One crash/recover cycle; returns the invariant report.

    Deterministic: the same ``(plan, config, seed)`` reproduces the same
    crash state and the same recovery. With ``plan=None`` the workload
    runs to completion and recovery restores from the mid-run checkpoint
    plus the journal suffix — the no-crash baseline of the same checks.
    """
    config = config if config is not None else CrashConfig()
    if recovery_dir is None:
        with tempfile.TemporaryDirectory(prefix="hcompress-crash-") as tmp:
            return run_crash_recovery(plan, config, tmp, seed)
    recovery_dir = Path(recovery_dir)
    if seed is None:
        seed = _default_seed()
    hierarchy = _crash_hierarchy(config)
    clock = SimClock()
    fault_plan = FaultPlan(seed=plan.seed if plan is not None else 0).outage(
        config.outage_tier, start=config.outage_start, end=config.outage_end
    )
    injector = FaultInjector(fault_plan, hierarchy)
    injector.arm()
    crashpoints = Crashpoints(plan)
    buffers = _task_buffers(config)
    outcome = CrashOutcome(plan=plan)

    engine_config = HCompressConfig(
        monitor_interval=config.monitor_interval,
        recovery=RecoveryConfig(
            enabled=True, directory=str(recovery_dir), fsync=config.fsync
        ),
        # Storage-heavy pricing + zero hysteresis: write-once-never-read
        # buffers demote from the first scan, so every lifecycle.* crash
        # site carries several real migrations per run.
        lifecycle=LifecycleConfig(
            enabled=config.lifecycle,
            scan_interval=0.0,
            storage_price=1000.0,
            access_price=0.001,
            max_migrations_per_step=config.lifecycle_migrations_per_step,
        ),
        scrub=ScrubConfig(
            enabled=config.scrub,
            content_digests=config.scrub,
            verify_reads=config.scrub,
            scan_interval=0.0,
            max_repairs_per_step=config.tasks,
        ),
    )
    engine = HCompress(
        hierarchy, engine_config, seed=seed, clock=lambda: clock.now,
        crashpoints=crashpoints,
    )
    engine.shi.on_wait = lambda seconds: _advance(
        clock, injector, clock.now + seconds
    )
    # The scrub workload's repair-of-last-resort: a pristine mirror of
    # every stored blob, captured at ack time — the stand-in for a
    # standby's shipped state. Latent rot is planted *after* the mirror
    # refresh each round, so the mirror is corruption-free by invariant.
    mirror: dict[str, bytes] = {}
    rot = LatentCorruptionInjector(
        hierarchy, seed=plan.seed if plan is not None else 0
    )

    def _refresh_mirror(live) -> None:
        manager = live.manager
        for tid in manager.task_ids():
            for entry in manager.task_entries(tid):
                if entry.key in mirror:
                    continue
                tier = hierarchy.find(entry.key)
                if tier is None or not tier.available:
                    continue  # captured on a later refresh, like the rot
                if tier.extent(entry.key).has_payload:
                    device = getattr(tier.device, "inner", tier.device)
                    mirror[entry.key] = device.load(entry.key)

    if config.scrub:
        engine.manager.on_corrupt = lambda key, blob: mirror.get(key)
    flusher = TierFlusher(
        hierarchy, high_water=0.5, low_water=0.25, crashpoints=crashpoints
    )
    drain = flusher.process()

    acked: list[str] = []
    evicted: set[str] = set()
    # The evict in flight when the crash fires: its fate is the journal's
    # call (logged -> gone, not logged -> still readable) — both outcomes
    # are legal, like a write crashed past its journal commit.
    pending_evict: str | None = None
    try:
        # Bootstrap checkpoint: the recovery directory is restorable from
        # the first instant, whatever the crash plan does later.
        engine.checkpoint()
        outcome.checkpoints += 1
        for index, (task_id, payload) in enumerate(buffers.items()):
            _advance(clock, injector, max(clock.now, index * config.step_seconds))
            result = engine.compress(payload, task_id=task_id)
            _advance(
                clock, injector,
                clock.now + result.io_seconds + result.compress_seconds,
            )
            acked.append(task_id)
            outcome.tasks_acked += 1
            _drive_flusher(drain, clock, injector)
            if engine.lifecycle is not None:
                engine.lifecycle.step()
            if config.scrub:
                _refresh_mirror(engine)
                if config.corrupt_every and (
                    (index + 1) % config.corrupt_every == 0
                ):
                    planted = rot.corrupt(count=1, keys=set(mirror))
                    outcome.corruptions_planted += len(planted)
                repaired = engine.scrub.step(force=True)
                outcome.scrub_repairs += len(repaired)
            if config.evict_every and (index + 1) % config.evict_every == 0:
                victim = next(
                    (t for t in acked if t not in evicted and t != task_id),
                    None,
                )
                if victim is not None:
                    pending_evict = victim
                    engine.manager.evict_task(victim)
                    pending_evict = None
                    evicted.add(victim)
                    outcome.evicts_acked += 1
            if config.checkpoint_after and len(acked) == config.checkpoint_after:
                engine.checkpoint()
                outcome.checkpoints += 1
    except SimulatedCrashError:
        # Process death: abandon the engine object mid-flight. No close(),
        # no journal sync — unsynced journal records are lost, exactly as
        # the kernel would lose a dead process's user-space buffers.
        outcome.crashed = True
    except HCompressError as exc:  # unexpected: the invariants demand none
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.fired_site = crashpoints.fired

    # -- recovery: devices are back, a fresh process restores ----------------
    _advance(clock, injector, max(clock.now, fault_plan.horizon) + 1.0)
    try:
        restored = HCompress.restore(
            recovery_dir, hierarchy,
            config=engine_config if config.scrub else None,
            seed=seed, clock=lambda: clock.now,
        )
    except HCompressError as exc:
        outcome.error = f"restore failed: {type(exc).__name__}: {exc}"
        return outcome
    outcome.recovered = True
    report = restored.recovery_report
    outcome.journal_truncated = report.journal_truncated
    outcome.records_replayed = report.records_replayed
    outcome.orphans_evicted = report.orphans_evicted
    outcome.duplicates_evicted = report.duplicates_evicted
    outcome.missing_keys = report.missing_keys

    # Idempotence: applying the whole surviving journal a second time must
    # leave the catalog byte-identical.
    before = restored.manager.catalog_snapshot()
    for record in restored.journal.recovered.records:
        restored.manager.apply_journal_record(record)
    outcome.replay_idempotent = restored.manager.catalog_snapshot() == before

    # Determinism: a second independent restore must land in the same
    # state and find nothing left to repair.
    twin = HCompress.restore(
        recovery_dir, hierarchy, seed=seed, clock=lambda: clock.now
    )
    outcome.double_restore_identical = (
        twin.manager.catalog_snapshot() == before
        and twin.predictor.model_version == restored.predictor.model_version
        and twin.recovery_report.orphans_evicted == 0
        and twin.recovery_report.duplicates_evicted == 0
    )
    twin.close()

    # Capacity hygiene: post-recovery, every tier extent belongs to the
    # catalog and no key is double-held.
    referenced = {
        entry[0]
        for entries in before.values()
        for entry in entries
    }
    tier_keys: list[str] = []
    for tier in hierarchy:
        tier_keys.extend(tier.keys())
    outcome.orphan_keys_after = sum(
        1 for key in tier_keys if key not in referenced
    )
    outcome.duplicate_keys_after = len(tier_keys) - len(set(tier_keys))

    # Scrub mode: the restored patrol must find whatever rot the crash
    # left behind (including a repair it died in the middle of) and heal
    # it from the mirror before — and independently of — the acked reads.
    if config.scrub:
        restored.manager.on_corrupt = lambda key, blob: mirror.get(key)
        for _ in range(3):
            outcome.scrub_repairs += len(restored.scrub.step(force=True))

    # Acked-durability: acknowledged writes read back byte-identical,
    # acknowledged evicts stay gone. Tasks the journal committed past the
    # ack point (a crash at manager.write.post_journal) are verified too —
    # journal-durable means committed.
    for task_id in evicted:
        if task_id in restored.manager:
            outcome.evicted_still_present += 1
    ambiguous = {pending_evict} if pending_evict is not None else set()
    must_read = [t for t in acked if t not in evicted and t not in ambiguous]
    must_read += [
        t for t in buffers
        if t not in must_read and t not in evicted and t in restored.manager
    ]
    for task_id in must_read:
        if task_id not in restored.manager:
            outcome.missing_acked += 1
            continue
        read = restored.decompress(task_id)
        if read.data == buffers[task_id]:
            outcome.verified_intact += 1
        else:
            outcome.mismatched += 1

    # Final hygiene: nothing quarantined, and a live fsck pass agrees the
    # store is consistent (catalog ↔ extents ↔ ledger ↔ digests).
    outcome.quarantined_after = len(restored.manager.quarantined)
    fsck = fsck_engine(restored, digest_samples=len(buffers))
    outcome.fsck_errors_after = fsck.count("error") + fsck.count("fatal")
    restored.close()
    return outcome


def sweep_crash_sites(
    hits: tuple[int, ...] = (1, 2),
    config: CrashConfig | None = None,
    sites: tuple[str, ...] = CRASH_SITES,
    seed: SeedData | None = None,
) -> list[CrashOutcome]:
    """Run every (site, hit) combination; returns all outcomes.

    The default matrix is 22 sites x 2 hits = 44 seeded crash points. One
    profiling seed is shared across the sweep so each cycle costs only the
    workload, not a re-profile. Engine sites run the single-engine
    crash/recover cycle; the ``replication.*`` promotion sites run the
    replicated kill-and-promote storm
    (:func:`~repro.faults.failover_chaos.run_failover_crash`), whose
    failover contract maps onto the same outcome fields.
    """
    import dataclasses

    config = config if config is not None else CrashConfig()
    # The scrub.* repair sites need the integrity workload: digests on,
    # latent rot planted every other write, scrubber stepping. The
    # lifecycle daemon stays off there so piece keys are stable for the
    # rot mirror; the lifecycle.* sites keep their own dedicated runs.
    scrub_config = dataclasses.replace(
        config, scrub=True, corrupt_every=1, lifecycle=False
    )
    if seed is None:
        seed = _default_seed()
    outcomes = []
    for index, site in enumerate(sites):
        for hit in hits:
            plan = CrashPlan(site=site, hit=hit, seed=index * 100 + hit)
            if site.startswith("replication."):
                from .failover_chaos import run_failover_crash

                outcomes.append(run_failover_crash(plan, seed=seed))
            elif site.startswith("scrub."):
                outcomes.append(
                    run_crash_recovery(
                        plan=plan, config=scrub_config, seed=seed
                    )
                )
            else:
                outcomes.append(
                    run_crash_recovery(plan=plan, config=config, seed=seed)
                )
    return outcomes
