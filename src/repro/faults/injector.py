"""The FaultInjector: executes a FaultPlan against a live hierarchy.

Deterministic by construction: scheduled events are applied in plan order
as the *simulated* clock passes their timestamps (:meth:`advance_to` for
clock-driven runs, :meth:`process` as a daemon inside the discrete-event
simulator), and all probabilistic faults draw from one ``random.Random``
seeded from the plan — operation order fully determines the fault
sequence, so the same (plan, workload) replays the identical trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import HCompressError, TransientIOError
from ..sim.event import Delay
from ..tiers import StorageHierarchy
from .device import FaultyDevice
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultInjector", "InjectorStats"]


@dataclass
class InjectorStats:
    """What the injector actually did, plus its deterministic event log."""

    events_applied: int = 0
    outages: int = 0
    recoveries: int = 0
    transient_errors: int = 0
    corruptions: int = 0
    log: list[tuple] = field(default_factory=list)

    def record(self, *entry) -> None:
        self.log.append(tuple(entry))


class FaultInjector:
    """Binds a :class:`FaultPlan` to a hierarchy and a simulated clock.

    Args:
        plan: The fault schedule and RNG seed.
        hierarchy: The tier stack to break.

    Usage::

        injector = FaultInjector(plan, hierarchy)
        injector.arm()                    # wrap devices for per-op faults
        injector.advance_to(t)            # apply events due by time t
        # or, inside a Simulation:
        sim.add_process(injector.process(), daemon=True)
    """

    def __init__(self, plan: FaultPlan, hierarchy: StorageHierarchy) -> None:
        unknown = plan.tiers() - set(hierarchy.names)
        if unknown:
            raise HCompressError(
                f"fault plan targets unknown tiers: {sorted(unknown)}"
            )
        self.plan = plan
        self.hierarchy = hierarchy
        self.stats = InjectorStats()
        self._rng = random.Random(plan.seed)
        self._pending: list[FaultEvent] = list(plan.events)
        self._now = 0.0
        self._armed = False
        self._write_p: dict[str, float] = {}
        self._read_p: dict[str, float] = {}
        self._corrupt_p: dict[str, float] = {}

    @property
    def now(self) -> float:
        return self._now

    # -- device wiring -------------------------------------------------------

    def arm(self) -> None:
        """Interpose a :class:`FaultyDevice` in front of every tier's
        backing store (idempotent)."""
        if self._armed:
            return
        for tier in self.hierarchy:
            tier.device = FaultyDevice(tier.device, self, tier.spec.name)
        self._armed = True

    def disarm(self) -> None:
        """Remove the device wrappers, leaving stored blobs untouched."""
        if not self._armed:
            return
        for tier in self.hierarchy:
            if isinstance(tier.device, FaultyDevice):
                tier.device = tier.device.inner
        self._armed = False

    # -- scheduled events ----------------------------------------------------

    def advance_to(self, t: float) -> int:
        """Apply every scheduled event with ``at <= t``; returns how many
        fired. Time never moves backwards."""
        if t < self._now:
            raise HCompressError(
                f"injector clock moving backwards: {self._now} -> {t}"
            )
        fired = 0
        while self._pending and self._pending[0].at <= t:
            self._apply(self._pending.pop(0))
            fired += 1
        self._now = t
        return fired

    def process(self):
        """Daemon generator for the discrete-event simulator: sleeps until
        each event's timestamp and applies it."""
        elapsed = 0.0
        for event in list(self._pending):
            if event.at > elapsed:
                yield Delay(event.at - elapsed)
                elapsed = event.at
            # advance_to keeps _pending/_now consistent for mixed use.
            self.advance_to(max(self._now, elapsed))

    def _apply(self, event: FaultEvent) -> None:
        tier = self.hierarchy.by_name(event.tier)
        kind = event.kind
        if kind is FaultKind.TIER_DOWN:
            tier.set_available(False)
            self.stats.outages += 1
        elif kind is FaultKind.TIER_UP:
            tier.set_available(True)
            self.stats.recoveries += 1
        elif kind is FaultKind.SLOWDOWN:
            tier.set_slowdown(float(event.value))
        elif kind is FaultKind.CAPACITY_LIMIT:
            tier.set_capacity_limit(
                None if event.value is None else int(event.value)
            )
        elif kind is FaultKind.WRITE_ERROR_RATE:
            self._write_p[event.tier] = float(event.value)
        elif kind is FaultKind.READ_ERROR_RATE:
            self._read_p[event.tier] = float(event.value)
        elif kind is FaultKind.CORRUPT_RATE:
            self._corrupt_p[event.tier] = float(event.value)
        else:  # pragma: no cover - exhaustive over FaultKind
            raise HCompressError(f"unhandled fault kind {kind!r}")
        self.stats.events_applied += 1
        self.stats.record("event", event.at, kind.value, event.tier, event.value)

    # -- per-operation hooks (called by FaultyDevice) ------------------------

    def check_store(self, tier: str, key: str) -> None:
        p = self._write_p.get(tier, 0.0)
        if p and self._rng.random() < p:
            self.stats.transient_errors += 1
            self.stats.record("transient", "store", tier, key)
            raise TransientIOError(f"{tier}: injected store failure for {key!r}")

    def check_load(self, tier: str, key: str) -> None:
        p = self._read_p.get(tier, 0.0)
        if p and self._rng.random() < p:
            self.stats.transient_errors += 1
            self.stats.record("transient", "load", tier, key)
            raise TransientIOError(f"{tier}: injected load failure for {key!r}")

    def filter_load(self, tier: str, key: str, blob: bytes) -> bytes:
        """Possibly hand back a bit-flipped copy (never persisted)."""
        p = self._corrupt_p.get(tier, 0.0)
        if p and blob and self._rng.random() < p:
            flipped = bytearray(blob)
            position = self._rng.randrange(len(flipped))
            flipped[position] ^= 1 << self._rng.randrange(8)
            self.stats.corruptions += 1
            self.stats.record("corrupt", tier, key, position)
            return bytes(flipped)
        return blob
