"""Chaos runner: a VPIC-style write workload under fault injection.

Drives one backend (HC — the full HCompress engine — or the BASE/MTNC
comparators) through a checkpoint-write workload while a
:class:`FaultInjector` executes a :class:`FaultPlan` against the hierarchy:
a mid-run NVMe outage with later recovery, transient store/load errors,
read-path corruption, and a PFS slowdown window. Time is a
:class:`~repro.sim.clock.SimClock` advanced by modeled I/O durations —
retry backoff included — so runs are wall-clock free and replay
bit-identically from their seeds.

The point of the comparison (and of ``benchmarks/bench_faults.py``): HC's
resilient paths (retry + failover + degraded-mode planning + checksum
read-repair) complete the workload with every buffer intact, while BASE
stalls behind the degraded PFS and MTNC dies on the first unretried
transient error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ccp import SeedData
from ..core import HCompress, HCompressConfig, HCompressProfiler
from ..core.config import ExecutorConfig, PlanCacheConfig, ResilienceConfig
from ..errors import HCompressError
from ..hermes.buffering import HermesBuffering
from ..sim.clock import SimClock
from ..tiers import StorageHierarchy, ares_hierarchy
from ..units import KiB
from ..workloads.vpic import vpic_sample
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["ChaosConfig", "ChaosOutcome", "default_chaos_plan", "run_chaos"]

CHAOS_BACKENDS = ("HC", "BASE", "MTNC")


@dataclass(frozen=True)
class ChaosConfig:
    """Chaos workload shape.

    Attributes:
        ranks: Writer count (each writes one buffer per step).
        steps: Checkpoint steps.
        step_kib: Buffer size per rank per step, in KiB.
        step_seconds: Simulated time between checkpoint steps.
        rng_seed: Seed for the workload's data generator.
        monitor_interval: HC's System Monitor refresh period; longer than
            ``step_seconds`` means the engine plans against stale
            availability and must rely on SHI failover / replanning.
        recovery_slack: Simulated seconds past the plan horizon before the
            verification reads run.
    """

    ranks: int = 2
    steps: int = 6
    step_kib: int = 16
    step_seconds: float = 1.0
    rng_seed: int = 7
    monitor_interval: float = 2.0
    recovery_slack: float = 1.0

    def __post_init__(self) -> None:
        if self.ranks < 1 or self.steps < 1 or self.step_kib < 1:
            raise HCompressError("ranks, steps and step_kib must be >= 1")
        if self.step_seconds <= 0:
            raise HCompressError("step_seconds must be positive")


@dataclass
class ChaosOutcome:
    """Recovery report of one chaos run."""

    backend: str
    completed: bool
    error: str | None
    elapsed_seconds: float
    tasks_written: int
    tasks_attempted: int
    verified_intact: int
    mismatched: int
    retries: int = 0
    failovers: int = 0
    replans: int = 0
    degraded_plans: int = 0
    read_repairs: int = 0
    corruption_detected: int = 0
    injected_errors: int = 0
    injected_corruptions: int = 0
    trace: tuple = field(default_factory=tuple)

    @property
    def all_data_intact(self) -> bool:
        return (
            self.completed
            and self.mismatched == 0
            and self.verified_intact == self.tasks_written
        )

    def summary(self) -> str:
        status = "completed" if self.completed else f"FAILED ({self.error})"
        return (
            f"{self.backend:5s} {status}; "
            f"{self.verified_intact}/{self.tasks_written} buffers intact, "
            f"{self.mismatched} corrupt, elapsed {self.elapsed_seconds:.3f}s, "
            f"retries={self.retries} failovers={self.failovers} "
            f"replans={self.replans + self.degraded_plans} "
            f"repairs={self.read_repairs}"
        )


def default_chaos_plan(config: ChaosConfig | None = None) -> FaultPlan:
    """The bench's reference plan: kill the NVMe tier mid-workload (with
    recovery), make NVMe/burst-buffer devices flaky, corrupt burst-buffer
    reads, and throttle the PFS for most of the run."""
    config = config if config is not None else ChaosConfig()
    step = config.step_seconds
    mid = config.steps * step / 2.0
    end = config.steps * step
    return (
        FaultPlan(seed=42)
        .outage("nvme", start=mid - step / 2.0, end=mid + 1.5 * step)
        .flaky("nvme", at=0.0, write_p=0.10)
        .flaky("burst_buffer", at=0.0, write_p=0.12, read_p=0.08, corrupt_p=0.10)
        .flaky("ram", at=0.0, corrupt_p=0.05)
        .flaky("pfs", at=0.0, write_p=0.05, read_p=0.08)
        .degraded("pfs", start=step, end=end, factor=12.0)
    )


def _chaos_hierarchy(config: ChaosConfig) -> StorageHierarchy:
    """A small materialised Ares stack: RAM holds ~1.5 buffers so writes
    overflow to the NVMe, which is roomy enough to stay the preferred spill
    target for the whole run — so the mid-run NVMe outage hits live
    placements (stale plans land on the dead tier and must fail over)."""
    buffer_bytes = config.step_kib * KiB
    total = buffer_bytes * config.ranks * config.steps
    return ares_hierarchy(
        ram_capacity=buffer_bytes * 3 // 2,
        nvme_capacity=total * 2,
        bb_capacity=total * 2,
        nodes=1,
    )


def _task_buffers(config: ChaosConfig) -> dict[str, bytes]:
    """Deterministic (task id -> payload) map for the whole workload."""
    rng = np.random.default_rng(config.rng_seed)
    buffers: dict[str, bytes] = {}
    for step in range(config.steps):
        for rank in range(config.ranks):
            buffers[f"chaos/r{rank}/s{step}"] = vpic_sample(
                config.step_kib * KiB, rng
            )
    return buffers


def run_chaos(
    backend: str = "HC",
    plan: FaultPlan | None = None,
    config: ChaosConfig | None = None,
    seed: SeedData | None = None,
    resilience: ResilienceConfig | None = None,
    plan_cache: PlanCacheConfig | None = None,
    executor: ExecutorConfig | None = None,
) -> ChaosOutcome:
    """Run one backend through the chaos workload; returns its report.

    Fully deterministic: the same (backend, plan, config, seed) produces a
    bit-identical :attr:`ChaosOutcome.trace` — including with the HC
    backend's plan cache or piece thread pool toggled (``plan_cache``,
    ``executor``; both default to the engine's defaults, i.e. enabled).
    """
    if backend not in CHAOS_BACKENDS:
        raise HCompressError(
            f"unknown chaos backend {backend!r}; pick one of {CHAOS_BACKENDS}"
        )
    config = config if config is not None else ChaosConfig()
    plan = plan if plan is not None else default_chaos_plan(config)
    hierarchy = _chaos_hierarchy(config)
    clock = SimClock()
    injector = FaultInjector(plan, hierarchy)
    injector.arm()
    buffers = _task_buffers(config)

    if backend == "HC":
        outcome = _run_hc(
            hierarchy, clock, injector, buffers, config, seed, resilience,
            plan_cache, executor,
        )
    elif backend == "BASE":
        outcome = _run_base(hierarchy, clock, injector, buffers, config)
    else:
        outcome = _run_mtnc(hierarchy, clock, injector, buffers, config)
    outcome.injected_errors = injector.stats.transient_errors
    outcome.injected_corruptions = injector.stats.corruptions
    outcome.trace = outcome.trace + (tuple(injector.stats.log),)
    return outcome


def _advance(clock: SimClock, injector: FaultInjector, t: float) -> None:
    clock.advance_to(t)
    injector.advance_to(clock.now)


def _step_times(config: ChaosConfig):
    for step in range(config.steps):
        for rank in range(config.ranks):
            yield f"chaos/r{rank}/s{step}", step * config.step_seconds


def _run_hc(
    hierarchy, clock, injector, buffers, config, seed, resilience,
    plan_cache=None, executor=None,
) -> ChaosOutcome:
    if seed is None:
        profiler = HCompressProfiler(rng=np.random.default_rng(0))
        seed = profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))
    engine_config = HCompressConfig(
        monitor_interval=config.monitor_interval,
        resilience=(
            resilience if resilience is not None else ResilienceConfig()
        ),
        plan_cache=(
            plan_cache if plan_cache is not None else PlanCacheConfig()
        ),
        executor=executor if executor is not None else ExecutorConfig(),
    )
    engine = HCompress(
        hierarchy, engine_config, seed=seed, clock=lambda: clock.now
    )
    # Backoff sleeps advance the simulated clock (never wall time), which
    # lets scheduled recoveries land while an operation is waiting.
    engine.shi.on_wait = lambda seconds: _advance(
        clock, injector, clock.now + seconds
    )
    outcome = ChaosOutcome(
        backend="HC",
        completed=True,
        error=None,
        elapsed_seconds=0.0,
        tasks_written=0,
        tasks_attempted=len(buffers),
        verified_intact=0,
        mismatched=0,
    )
    try:
        for task_id, start in _step_times(config):
            _advance(clock, injector, max(clock.now, start))
            result = engine.compress(
                buffers[task_id], task_id=task_id
            )
            _advance(
                clock,
                injector,
                clock.now + result.io_seconds + result.compress_seconds,
            )
            outcome.tasks_written += 1
        _advance(
            clock, injector,
            max(clock.now, injector.plan.horizon) + config.recovery_slack,
        )
        for task_id in buffers:
            read = engine.decompress(task_id)
            _advance(clock, injector, clock.now + read.io_seconds)
            if read.data == buffers[task_id]:
                outcome.verified_intact += 1
            else:
                outcome.mismatched += 1
    except HCompressError as exc:
        outcome.completed = False
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.elapsed_seconds = clock.now
    outcome.retries = engine.shi.stats.retries
    outcome.failovers = engine.shi.stats.failovers
    outcome.replans = engine.replans
    outcome.degraded_plans = engine.engine.stats.degraded_plans
    outcome.read_repairs = engine.manager.read_repairs
    outcome.corruption_detected = engine.manager.corruption_detected
    outcome.trace = (tuple(engine.shi.stats.trace),)
    return outcome


def _run_base(hierarchy, clock, injector, buffers, config) -> ChaosOutcome:
    """BASE: every buffer straight to the PFS, no retries, no checksums.

    Stalls behind the injected PFS slowdown, and any transient PFS error
    kills the run outright."""
    pfs = hierarchy.by_name("pfs")
    outcome = ChaosOutcome(
        backend="BASE",
        completed=True,
        error=None,
        elapsed_seconds=0.0,
        tasks_written=0,
        tasks_attempted=len(buffers),
        verified_intact=0,
        mismatched=0,
    )
    try:
        for task_id, start in _step_times(config):
            _advance(clock, injector, max(clock.now, start))
            pfs.put(task_id, buffers[task_id])
            _advance(
                clock, injector, clock.now + pfs.io_seconds(len(buffers[task_id]))
            )
            outcome.tasks_written += 1
        _advance(
            clock, injector,
            max(clock.now, injector.plan.horizon) + config.recovery_slack,
        )
        for task_id in buffers:
            data = pfs.get(task_id)
            _advance(clock, injector, clock.now + pfs.io_seconds(len(data)))
            if data == buffers[task_id]:
                outcome.verified_intact += 1
            else:
                outcome.mismatched += 1
    except HCompressError as exc:
        outcome.completed = False
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.elapsed_seconds = clock.now
    return outcome


def _run_mtnc(hierarchy, clock, injector, buffers, config) -> ChaosOutcome:
    """MTNC: Hermes buffering, no compression, no retries, no checksums.

    The first unretried transient store error aborts the run; corrupted
    reads pass through undetected (counted as ``mismatched``)."""
    buffering = HermesBuffering(hierarchy)
    outcome = ChaosOutcome(
        backend="MTNC",
        completed=True,
        error=None,
        elapsed_seconds=0.0,
        tasks_written=0,
        tasks_attempted=len(buffers),
        verified_intact=0,
        mismatched=0,
    )
    try:
        for task_id, start in _step_times(config):
            _advance(clock, injector, max(clock.now, start))
            record = buffering.put(
                task_id, len(buffers[task_id]), data=buffers[task_id]
            )
            _advance(clock, injector, clock.now + record.io_seconds)
            outcome.tasks_written += 1
        _advance(
            clock, injector,
            max(clock.now, injector.plan.horizon) + config.recovery_slack,
        )
        for task_id in buffers:
            data, io_seconds = buffering.get(task_id)
            _advance(clock, injector, clock.now + io_seconds)
            if data == buffers[task_id]:
                outcome.verified_intact += 1
            else:
                outcome.mismatched += 1
    except HCompressError as exc:
        outcome.completed = False
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.elapsed_seconds = clock.now
    return outcome
