"""Seeded latent (at-rest) corruption: bit-rot in already-stored blobs.

:class:`FaultyDevice` models *in-flight* corruption — bytes flipped on
the wire of one read, healed by the next. Real media also rots **at
rest**: a stored blob silently changes *between* operations, and every
subsequent read returns the same wrong bytes. That is the failure mode
the ``repro.scrub`` subsystem exists for, and this injector plants it:
pick payload-bearing extents with a seeded RNG, XOR one byte of each
stored blob in place through the device (beneath any
:class:`FaultyDevice` wrapper, so in-flight injection composes on top),
and record exactly what was flipped so tests can assert 100% detection
and byte-exact repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import HCompressError

__all__ = ["LatentCorruption", "LatentCorruptionInjector"]


@dataclass(frozen=True)
class LatentCorruption:
    """One planted at-rest flip: which stored byte rotted, and how."""

    tier: str
    key: str
    offset: int
    mask: int  # XOR mask applied to the byte (never 0)


class LatentCorruptionInjector:
    """Plants deterministic bit-rot into a hierarchy's stored blobs.

    Args:
        hierarchy: The live :class:`~repro.tiers.StorageHierarchy`.
        seed: RNG seed; the same seed over the same stored state plants
            the same flips.
    """

    def __init__(self, hierarchy, seed: int = 0) -> None:
        self.hierarchy = hierarchy
        self.rng = random.Random(seed)
        self.planted: list[LatentCorruption] = []

    def candidates(self, keys=None) -> list[tuple]:
        """Every corruptible ``(tier, key)``: payload-bearing extents on
        reachable tiers, in deterministic tier-then-key order."""
        found = []
        for tier in self.hierarchy:
            if not tier.available:
                continue  # a dark tier's media is unreachable, rot included
            for key in sorted(tier.keys()):
                if keys is not None and key not in keys:
                    continue
                if tier.extent(key).has_payload:
                    found.append((tier, key))
        return found

    def corrupt(self, count: int = 1, keys=None) -> list[LatentCorruption]:
        """Flip one byte in ``count`` distinct stored blobs; returns the
        flips planted (fewer when the store holds fewer candidates).

        ``keys`` optionally restricts the victim pool. The mutation goes
        through the *underlying* device — at-rest rot is not an I/O
        fault, so an armed :class:`FaultyDevice` must not intercept the
        planting itself.
        """
        if count < 1:
            raise HCompressError("count must be >= 1")
        pool = self.candidates(keys)
        picks = (
            self.rng.sample(pool, count) if count < len(pool) else list(pool)
        )
        flips = []
        for tier, key in picks:
            device = getattr(tier.device, "inner", tier.device)
            blob = bytearray(device.load(key))
            offset = self.rng.randrange(len(blob))
            mask = self.rng.randrange(1, 256)
            blob[offset] ^= mask
            device.store(key, bytes(blob))
            flips.append(
                LatentCorruption(tier.spec.name, key, offset, mask)
            )
        self.planted.extend(flips)
        return flips
