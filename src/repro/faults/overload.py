"""Overload chaos harness: saturating load plus a flapping tier, under QoS.

`chaos` breaks devices and `crash` kills the process; this harness breaks
the *load assumption* instead: it offers writes at a configurable multiple
of the admission drain rate (2x by default) while a seeded
:class:`~repro.faults.FaultPlan` flaps one tier up and down, and checks
the overload contract from docs/RESILIENCE.md:

* only the lowest QoS classes are shed, each with a typed
  :class:`~repro.errors.TaskShedError` (protected classes never shed);
* every admitted task either completes or fails with a typed error
  (:class:`~repro.errors.DeadlineExceededError` or a tier-exhaustion
  error) — nothing vanishes silently;
* every acknowledged write reads back byte-identical after the storm;
* the merged event trace (admission sheds, breaker transitions, brownout
  moves, per-task outcomes) is identical across two same-seed runs.

With ``crash_site`` set the storm additionally dies at a seeded crash
point and restores from the recovery directory, composing overload with
the `crash` harness's durability checks — the acked-readback pass then
runs against the *restored* engine, and the breaker quarantine must
survive the restart conservatively (an open breaker restores open).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..ccp import SeedData
from ..core import HCompress, HCompressConfig, HCompressProfiler
from ..core.config import RecoveryConfig
from ..errors import (
    AllTiersUnavailableError,
    DeadlineExceededError,
    HCompressError,
    RetryExhaustedError,
    SimulatedCrashError,
    TaskShedError,
)
from ..qos import QosClass, QosConfig
from ..recovery import CrashPlan, Crashpoints
from ..sim.clock import SimClock
from ..tiers import StorageHierarchy, ares_hierarchy
from ..units import KiB
from ..workloads.vpic import vpic_sample
from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["OverloadConfig", "OverloadOutcome", "run_overload"]


@dataclass(frozen=True)
class OverloadConfig:
    """Shape of the overload storm.

    Attributes:
        tasks: Writes offered (one compress call each), round-robined
            across the four QoS classes.
        task_kib: Buffer size in KiB.
        load_factor: Offered-load multiple of the admission drain rate;
            the interarrival gap is ``task_bytes / (load_factor * drain)``
            so 2.0 means bytes arrive twice as fast as they drain.
        drain_kib_per_s: Admission drain model rate (KiB/s). Kept small
            so the storm fits in a few simulated seconds.
        max_backlog_kib: Admission queue bound; with 2x load the backlog
            crosses the soft-shed band roughly a third of the way in.
        deadline: Per-task budget in modeled seconds (None: no deadline).
        rng_seed: Workload data generator *and* shed-lottery seed.
        fault_seed: FaultPlan seed for the flapping tier.
        flap_tier: Which tier flaps. The default hits RAM — the tier
            plans target first — so SHI failover and the breaker see
            real traffic.
        flap_count: Down/up cycles.
        flap_on: Seconds down per cycle.
        flap_off: Seconds up between cycles (the first outage starts at
            ``flap_off``, so the storm opens healthy).
        monitor_interval: Kept *longer* than the write cadence so stale
            plans keep targeting the flapped tier — SHI failover and the
            circuit breaker see real failures instead of the planner
            quietly routing around a tier the monitor already marked
            down (the same trick the crash harness uses).
        crash_site: Optional crash-point name; the storm dies there and
            the harness restores from the recovery directory.
        crash_hit: Which hit of the crash site fires.
        checkpoint_after: Mid-storm checkpoint once this many writes are
            acked (0: bootstrap checkpoint only) — captures live breaker
            state so restore exercises the conservative reopen path.
        fsync: Forwarded to RecoveryConfig (False: flush-only, storms
            run dozens of engines in CI).
    """

    tasks: int = 48
    task_kib: int = 16
    load_factor: float = 2.0
    drain_kib_per_s: int = 64
    max_backlog_kib: int = 96
    deadline: float | None = 8.0
    rng_seed: int = 11
    fault_seed: int = 3
    flap_tier: str = "ram"
    flap_count: int = 3
    flap_on: float = 0.5
    flap_off: float = 0.7
    monitor_interval: float = 2.0
    crash_site: str | None = None
    crash_hit: int = 1
    checkpoint_after: int = 12
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.tasks < 1 or self.task_kib < 1:
            raise HCompressError("tasks and task_kib must be >= 1")
        if self.load_factor <= 0 or self.drain_kib_per_s < 1:
            raise HCompressError(
                "load_factor and drain_kib_per_s must be positive"
            )
        if self.flap_count < 0 or self.flap_on <= 0 or self.flap_off <= 0:
            raise HCompressError(
                "flap_count must be >= 0; flap_on/flap_off must be positive"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise HCompressError("deadline must be positive (or None)")

    @property
    def interarrival(self) -> float:
        """Seconds between offered writes at the configured load factor."""
        return (self.task_kib * KiB) / (
            self.load_factor * self.drain_kib_per_s * KiB
        )


@dataclass
class OverloadOutcome:
    """What one storm did and whether the overload contract held."""

    config: OverloadConfig
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    shed_by_class: dict[int, int] = field(default_factory=dict)
    completed: int = 0
    deadline_failures: int = 0
    unavailable_failures: int = 0
    breaker_transitions: int = 0
    brownout_peak: int = 0
    crashed: bool = False
    fired_site: str | None = None
    recovered: bool = False
    breaker_open_after_restore: bool = False
    verified_intact: int = 0
    mismatched: int = 0
    missing_acked: int = 0
    error: str | None = None
    trace: tuple = ()
    #: Modeled service seconds (compress + I/O) per *completed* task, in
    #: completion order — the p99-latency gate in benchmarks/bench_qos.py.
    latencies: list[float] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """The overload contract, as one predicate (module docstring)."""
        protected = int(QosClass.INTERACTIVE)
        return (
            self.error is None
            and all(cls < protected for cls in self.shed_by_class)
            and self.admitted
            == self.completed
            + self.deadline_failures
            + self.unavailable_failures
            and self.mismatched == 0
            and self.missing_acked == 0
            and (not self.crashed or self.recovered)
        )

    def summary(self) -> str:
        verdict = "contract holds" if self.holds else "CONTRACT VIOLATED"
        where = (
            f"; crashed at {self.fired_site}, recovered={self.recovered}"
            if self.crashed
            else ""
        )
        sheds = ", ".join(
            f"class{cls}={count}"
            for cls, count in sorted(self.shed_by_class.items())
        ) or "none"
        return (
            f"{self.offered} offered: {self.admitted} admitted / "
            f"{self.shed} shed ({sheds}); {self.completed} completed, "
            f"{self.deadline_failures} deadline, "
            f"{self.unavailable_failures} unavailable; "
            f"{self.breaker_transitions} breaker transitions, "
            f"brownout peak {self.brownout_peak}; "
            f"{self.verified_intact} intact / {self.mismatched} mismatched"
            f"{where} — {verdict}"
        )


def _default_seed() -> SeedData:
    profiler = HCompressProfiler(rng=np.random.default_rng(0))
    return profiler.quick_seed(sizes=(8 * KiB, 32 * KiB))


def _storm_hierarchy(config: OverloadConfig) -> StorageHierarchy:
    """RAM holds a handful of buffers (so the flapped tier carries real
    traffic and failover has somewhere to go); lower tiers fit the storm."""
    buffer_bytes = config.task_kib * KiB
    total = buffer_bytes * config.tasks
    return ares_hierarchy(
        ram_capacity=buffer_bytes * 6,
        nvme_capacity=total * 2,
        bb_capacity=total * 2,
        nodes=1,
    )


def _flap_plan(config: OverloadConfig) -> FaultPlan:
    plan = FaultPlan(seed=config.fault_seed)
    period = config.flap_on + config.flap_off
    for cycle in range(config.flap_count):
        start = config.flap_off + cycle * period
        plan = plan.outage(
            config.flap_tier, start=start, end=start + config.flap_on
        )
    return plan


def run_overload(
    config: OverloadConfig | None = None,
    recovery_dir: str | Path | None = None,
    seed: SeedData | None = None,
) -> OverloadOutcome:
    """One overload storm; returns the contract report.

    Deterministic: the same ``(config, seed)`` reproduces the same
    admissions, sheds, breaker transitions, and per-task outcomes —
    ``outcome.trace`` compares equal across same-seed runs.
    """
    config = config if config is not None else OverloadConfig()
    wants_recovery = config.crash_site is not None or recovery_dir is not None
    if wants_recovery and recovery_dir is None:
        with tempfile.TemporaryDirectory(prefix="hcompress-overload-") as tmp:
            return run_overload(config, tmp, seed)
    if seed is None:
        seed = _default_seed()
    hierarchy = _storm_hierarchy(config)
    clock = SimClock()
    fault_plan = _flap_plan(config)
    injector = FaultInjector(fault_plan, hierarchy)
    injector.arm()
    crash_plan = (
        CrashPlan(
            site=config.crash_site, hit=config.crash_hit,
            seed=config.fault_seed,
        )
        if config.crash_site is not None
        else None
    )
    crashpoints = Crashpoints(crash_plan) if wants_recovery else None

    engine_config = HCompressConfig(
        monitor_interval=config.monitor_interval,
        qos=QosConfig(
            enabled=True,
            max_backlog_bytes=config.max_backlog_kib * KiB,
            drain_bytes_per_s=float(config.drain_kib_per_s * KiB),
            shed_seed=config.rng_seed,
        ),
        recovery=RecoveryConfig(
            enabled=wants_recovery,
            directory=str(recovery_dir) if wants_recovery else None,
            fsync=config.fsync,
        ),
    )
    engine = HCompress(
        hierarchy, engine_config, seed=seed, clock=lambda: clock.now,
        crashpoints=crashpoints,
    )
    engine.shi.on_wait = lambda seconds: (
        clock.advance_to(clock.now + seconds),
        injector.advance_to(clock.now),
    )

    outcome = OverloadOutcome(config=config)
    rng = np.random.default_rng(config.rng_seed)
    buffers: dict[str, bytes] = {}
    acked: list[str] = []
    # Per-task outcomes, merged with the governor trace at the end so two
    # same-seed storms can be compared event-for-event.
    task_events: list[tuple] = []
    try:
        if wants_recovery:
            engine.checkpoint()
        for index in range(config.tasks):
            clock.advance_to(max(clock.now, index * config.interarrival))
            injector.advance_to(clock.now)
            task_id = f"storm/t{index}"
            cls = QosClass(index % 4)
            payload = vpic_sample(config.task_kib * KiB, rng)
            buffers[task_id] = payload
            outcome.offered += 1
            try:
                result = engine.compress(
                    payload, task_id=task_id,
                    deadline=config.deadline, qos_class=cls,
                )
            except TaskShedError as exc:
                outcome.shed += 1
                key = int(exc.qos_class)
                outcome.shed_by_class[key] = (
                    outcome.shed_by_class.get(key, 0) + 1
                )
                task_events.append(("task", task_id, int(cls), "shed"))
            except DeadlineExceededError:
                outcome.admitted += 1
                outcome.deadline_failures += 1
                task_events.append(("task", task_id, int(cls), "deadline"))
            except (AllTiersUnavailableError, RetryExhaustedError):
                outcome.admitted += 1
                outcome.unavailable_failures += 1
                task_events.append(("task", task_id, int(cls), "unavailable"))
            else:
                outcome.admitted += 1
                outcome.completed += 1
                acked.append(task_id)
                outcome.latencies.append(
                    result.compress_seconds + result.io_seconds
                )
                task_events.append(("task", task_id, int(cls), "completed"))
            outcome.brownout_peak = max(
                outcome.brownout_peak, int(engine.qos.brownout.level)
            )
            if (
                wants_recovery
                and config.checkpoint_after
                and len(acked) == config.checkpoint_after
            ):
                engine.checkpoint()
    except SimulatedCrashError:
        # Process death mid-storm: abandon the engine, no close().
        outcome.crashed = True
    except HCompressError as exc:  # untyped escape: a contract violation
        outcome.error = f"{type(exc).__name__}: {exc}"
    if crashpoints is not None:
        outcome.fired_site = crashpoints.fired
    if engine.qos is not None:
        if engine.qos.breakers is not None:
            outcome.breaker_transitions = engine.qos.breakers.transitions
        outcome.trace = engine.qos.event_trace() + (tuple(task_events),)

    # -- after the storm: devices heal, acked data must read back ----------
    clock.advance_to(max(clock.now, fault_plan.horizon) + 1.0)
    injector.advance_to(clock.now)
    reader = engine
    if outcome.crashed:
        try:
            reader = HCompress.restore(
                recovery_dir, hierarchy, config=engine_config, seed=seed,
                clock=lambda: clock.now,
            )
        except HCompressError as exc:
            outcome.error = f"restore failed: {type(exc).__name__}: {exc}"
            return outcome
        outcome.recovered = True
        if reader.qos is not None and reader.qos.breakers is not None:
            # Conservative restore: any breaker checkpointed open/half-open
            # must come back quarantined, not silently healthy.
            outcome.breaker_open_after_restore = any(
                b.state != "closed"
                for b in reader.qos.breakers.breakers.values()
            )
        # Only writes the restored catalog still holds are checkable; the
        # crash harness proves the ack/journal contract in depth.
        acked = [t for t in acked if t in reader.manager]
    for task_id in acked:
        if task_id not in reader.manager:
            outcome.missing_acked += 1
            continue
        read = reader.decompress(task_id)
        if read.data == buffers[task_id]:
            outcome.verified_intact += 1
        else:
            outcome.mismatched += 1
    if reader is not engine:
        reader.close()
    if not outcome.crashed:
        engine.close()
    return outcome
