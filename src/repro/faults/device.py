"""FaultyDevice: a fault-injecting wrapper over any tier Device.

Sits between a :class:`~repro.tiers.tier.Tier` and its real backing store.
Every ``store``/``load`` first consults the owning
:class:`~repro.faults.injector.FaultInjector`, which may veto the operation
with a :class:`~repro.errors.TransientIOError` or hand back a bit-flipped
copy of the blob (corruption is applied on the *read* path and never
persisted, modeling transient bus/media read errors that heal on re-read —
which is exactly what the Compression Manager's checksum + read-repair
path exists to catch).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..tiers.device import Device

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .injector import FaultInjector

__all__ = ["FaultyDevice"]


class FaultyDevice(Device):
    """Injects per-operation faults in front of ``inner``."""

    def __init__(
        self, inner: Device, injector: "FaultInjector", tier_name: str
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.tier_name = tier_name

    def store(self, key: str, payload: bytes) -> None:
        self.injector.check_store(self.tier_name, key)
        self.inner.store(key, payload)

    def load(self, key: str) -> bytes:
        self.injector.check_load(self.tier_name, key)
        return self.injector.filter_load(self.tier_name, key, self.inner.load(key))

    def delete(self, key: str) -> None:
        self.inner.delete(key)

    def __contains__(self, key: str) -> bool:
        return key in self.inner

    def keys(self) -> list[str]:
        return self.inner.keys()
