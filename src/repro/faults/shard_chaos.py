"""Shard chaos harness: kill one shard mid-storm, isolate the blast.

`chaos` breaks devices, `crash` kills the whole process, `overload`
breaks the load assumption; this harness kills one *shard* of a
:class:`~repro.shard.ShardedHCompress` deployment mid-storm and checks
the failure-domain contract from docs/SHARDING.md:

* only tasks whose routing key (tenant) hashes to the killed shard ever
  observe :class:`~repro.errors.ShardUnavailableError` — every other
  tenant's traffic completes exactly as in an undisturbed run;
* the surviving shards' event streams are byte-identical to the same
  seed run with no kill (their engines never learn the failure
  happened);
* every write acked by a surviving shard reads back byte-identical
  after the storm;
* the killed shard restores from its *own* journal + checkpoint, after
  which every write it ever acked reads back byte-identical too.

Determinism discipline: the sim clock advances only to each task's
scheduled arrival (never by per-result durations), so killing shard
``k`` cannot perturb the operation sequence any surviving shard
observes — which is what makes the survivor-trace comparison exact.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..ccp import SeedData
from ..core import HCompressConfig
from ..core.config import RecoveryConfig
from ..errors import HCompressError, ShardUnavailableError
from ..shard import ShardConfig, ShardedHCompress
from ..sim.clock import SimClock
from ..tiers import ares_specs
from ..units import KiB
from ..workloads.vpic import vpic_sample
from .overload import _default_seed

__all__ = ["ShardChaosConfig", "ShardChaosOutcome", "run_shard_chaos"]


@dataclass(frozen=True)
class ShardChaosConfig:
    """Shape of one shard-kill storm.

    Attributes:
        shards: Shard count of the deployment under test.
        tasks: Writes offered, one per arrival tick.
        tenants: Distinct tenants; task ``i`` belongs to tenant
            ``i % tenants``, so every tenant's traffic recurs across the
            whole storm (tasks offered after the kill probe every
            tenant's shard).
        task_kib: Buffer size in KiB.
        interarrival: Modeled seconds between offered writes.
        kill_shard: Shard to kill, or ``None`` for the undisturbed
            baseline run the survivor traces are compared against.
        kill_owner_of: Alternative kill target: the shard that owns this
            tenant's routing key (so the kill is guaranteed to hit live
            traffic regardless of the ring layout). Mutually exclusive
            with ``kill_shard``.
        kill_after: Offered tasks before the kill fires.
        checkpoint_after: Acked writes before a deployment-wide
            checkpoint (0: bootstrap checkpoint only) — the killed
            shard's restore then replays checkpoint + journal suffix.
        restore: Restore the killed shard after the storm and verify
            its acked data.
        rng_seed: Workload payload generator seed.
        hash_seed: Ring hash seed (routing layout).
        fsync: Forwarded to RecoveryConfig (False: flush-only for CI).
    """

    shards: int = 4
    tasks: int = 64
    tenants: int = 8
    task_kib: int = 16
    interarrival: float = 0.05
    kill_shard: int | None = None
    kill_owner_of: str | None = None
    kill_after: int = 24
    checkpoint_after: int = 12
    restore: bool = True
    rng_seed: int = 11
    hash_seed: int = 0
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1 or self.tasks < 1 or self.tenants < 1:
            raise HCompressError("shards, tasks, and tenants must be >= 1")
        if self.task_kib < 1 or self.interarrival <= 0:
            raise HCompressError(
                "task_kib must be >= 1 and interarrival positive"
            )
        if self.kill_shard is not None and not (
            0 <= self.kill_shard < self.shards
        ):
            raise HCompressError("kill_shard out of range")
        if self.kill_shard is not None and self.kill_owner_of is not None:
            raise HCompressError(
                "pass kill_shard or kill_owner_of, not both"
            )
        if self.kill_after < 0 or self.checkpoint_after < 0:
            raise HCompressError(
                "kill_after and checkpoint_after must be >= 0"
            )


@dataclass
class ShardChaosOutcome:
    """What one storm did and whether the failure-domain contract held."""

    config: ShardChaosConfig
    offered: int = 0
    completed: int = 0
    unavailable: int = 0
    killed_shard: int | None = None
    affected_tenants: set = field(default_factory=set)
    expected_tenants: set = field(default_factory=set)
    restored: bool = False
    restore_replayed: int = 0
    verified_intact: int = 0
    mismatched: int = 0
    missing_acked: int = 0
    manifest_version: int = 0
    error: str | None = None
    #: Every per-task event, in arrival order:
    #: ``("task", task_id, tenant, shard_id, outcome)``.
    events: tuple = ()
    #: Modeled busy seconds per shard at storm end.
    busy_seconds: dict = field(default_factory=dict)

    def survivor_events(self, killed: int | None = None) -> tuple:
        """Events of every shard except ``killed`` (default: the one this
        run killed) — the cross-run determinism comparand."""
        if killed is None:
            killed = self.killed_shard
        return tuple(e for e in self.events if e[3] != killed)

    @property
    def holds(self) -> bool:
        """The failure-domain contract, as one predicate."""
        return (
            self.error is None
            and self.offered == self.completed + self.unavailable
            and (self.killed_shard is not None or self.unavailable == 0)
            and self.affected_tenants <= self.expected_tenants
            and self.mismatched == 0
            and self.missing_acked == 0
            and (
                not self.config.restore
                or self.killed_shard is None
                or self.restored
            )
        )

    def summary(self) -> str:
        verdict = "contract holds" if self.holds else "CONTRACT VIOLATED"
        kill = (
            f"shard {self.killed_shard} killed, "
            f"{len(self.affected_tenants)}/{len(self.expected_tenants)} "
            f"owned tenants affected, restored={self.restored} "
            f"(+{self.restore_replayed} journal records)"
            if self.killed_shard is not None
            else "undisturbed"
        )
        return (
            f"{self.offered} offered over {self.config.shards} shards: "
            f"{self.completed} completed, {self.unavailable} unavailable; "
            f"{kill}; {self.verified_intact} intact / "
            f"{self.mismatched} mismatched / {self.missing_acked} missing; "
            f"manifest v{self.manifest_version} — {verdict}"
        )


def _storm_specs(config: ShardChaosConfig):
    """Budgets that comfortably fit the storm in every shard's slice."""
    total = config.tasks * config.task_kib * KiB
    return ares_specs(
        ram_capacity=total * 2,
        nvme_capacity=total * 2,
        bb_capacity=total * 2,
        nodes=max(8, config.shards),
    )


def run_shard_chaos(
    config: ShardChaosConfig | None = None,
    root_dir: str | Path | None = None,
    seed: SeedData | None = None,
) -> ShardChaosOutcome:
    """One shard-kill storm; returns the contract report.

    Deterministic: the same ``(config, seed)`` reproduces the same
    routing, outcomes, and events, and ``survivor_events()`` compares
    equal between a kill run and the undisturbed run of the same seed.
    """
    config = config if config is not None else ShardChaosConfig()
    if root_dir is None:
        with tempfile.TemporaryDirectory(prefix="hcompress-shard-") as tmp:
            return run_shard_chaos(config, tmp, seed)
    if seed is None:
        seed = _default_seed()
    clock = SimClock()
    sharded = ShardedHCompress(
        _storm_specs(config),
        HCompressConfig(
            recovery=RecoveryConfig(fsync=config.fsync),
        ),
        ShardConfig(
            shards=config.shards,
            hash_seed=config.hash_seed,
            directory=root_dir,
        ),
        seed=seed,
        clock=lambda: clock.now,
    )
    outcome = ShardChaosOutcome(config=config)
    kill_shard = config.kill_shard
    if config.kill_owner_of is not None:
        kill_shard = sharded.ring.route(config.kill_owner_of)
    if kill_shard is not None:
        outcome.expected_tenants = {
            f"tenant-{t}"
            for t in range(config.tenants)
            if sharded.ring.route(f"tenant-{t}") == kill_shard
        }
    rng = np.random.default_rng(config.rng_seed)
    buffers: dict[str, bytes] = {}
    acked: list[tuple[str, int]] = []
    events: list[tuple] = []
    try:
        sharded.checkpoint()  # bootstrap: every shard has a snapshot
        for index in range(config.tasks):
            if kill_shard is not None and index == config.kill_after:
                sharded.kill_shard(kill_shard)
                outcome.killed_shard = kill_shard
            clock.advance_to(max(clock.now, index * config.interarrival))
            task_id = f"shard/t{index}"
            tenant = f"tenant-{index % config.tenants}"
            shard_id = sharded.shard_of(task_id, tenant)
            payload = vpic_sample(config.task_kib * KiB, rng)
            buffers[task_id] = payload
            outcome.offered += 1
            try:
                sharded.compress(payload, task_id=task_id, tenant=tenant)
            except ShardUnavailableError:
                outcome.unavailable += 1
                outcome.affected_tenants.add(tenant)
                events.append(
                    ("task", task_id, tenant, shard_id, "unavailable")
                )
            else:
                outcome.completed += 1
                acked.append((task_id, shard_id))
                events.append(
                    ("task", task_id, tenant, shard_id, "completed")
                )
            if (
                config.checkpoint_after
                and len(acked) == config.checkpoint_after
            ):
                sharded.checkpoint()
    except HCompressError as exc:  # untyped escape: a contract violation
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.events = tuple(events)
    outcome.busy_seconds = dict(sharded.busy_seconds)

    # -- after the storm: survivors' acked data must read back -------------
    for task_id, shard_id in acked:
        if shard_id == outcome.killed_shard:
            continue
        read = sharded.decompress(task_id)
        if read.data == buffers[task_id]:
            outcome.verified_intact += 1
        else:
            outcome.mismatched += 1

    # -- failover: the killed shard restores from its own WAL + checkpoint -
    if outcome.killed_shard is not None and config.restore:
        try:
            engine = sharded.restore_shard(outcome.killed_shard)
        except HCompressError as exc:
            outcome.error = f"restore failed: {type(exc).__name__}: {exc}"
        else:
            outcome.restored = True
            outcome.restore_replayed = (
                engine.recovery_report.records_replayed
            )
            for task_id, shard_id in acked:
                if shard_id != outcome.killed_shard:
                    continue
                if task_id not in engine.manager:
                    outcome.missing_acked += 1
                    continue
                read = sharded.decompress(task_id)
                if read.data == buffers[task_id]:
                    outcome.verified_intact += 1
                else:
                    outcome.mismatched += 1
    if sharded.manifest is not None:
        outcome.manifest_version = sharded.manifest.version
    sharded.close()
    return outcome
