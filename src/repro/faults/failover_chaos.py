"""Failover chaos harness: kill a replicated primary mid-storm, promote.

`shard_chaos` proves the failure-domain contract *without* replication:
a killed shard's tenants go dark until an operator restores it. This
harness runs the same storm with replication enabled and proves the
failover contract from docs/SHARDING.md:

* killing any primary mid-storm promotes its most-caught-up standby
  automatically on the very next dispatch — no operator, no restore
  call;
* **zero acked-write loss**: every write acknowledged before the kill —
  including the group-commit tail the dead primary never fsynced —
  reads back byte-identical from the promoted standby (synchronous WAL
  shipping persisted each record on the standby before the ack);
* the modeled unavailability window is bounded: DOWN -> UP in at most
  the configured promotion window plus one arrival of traffic;
* the surviving shards' event streams are byte-identical to the same
  seed run with no kill (their engines never learn the failure
  happened);
* a seeded crash at any of the four ``replication.*`` promotion sites
  leaves a state that one retried :meth:`failover` call repairs, after
  which all of the above still holds.

Determinism discipline matches `shard_chaos`: the sim clock advances
only to each task's scheduled arrival, never by per-result durations,
so the kill cannot perturb the operation sequence any surviving shard
observes.

:func:`run_failover_crash` adapts one armed ``replication.*`` crash plan
to the :class:`~repro.faults.crash.CrashOutcome` shape so
:func:`~repro.faults.crash.sweep_crash_sites` covers the promotion
sites in the same matrix as the engine sites.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..ccp import SeedData
from ..core import HCompressConfig
from ..core.config import RecoveryConfig
from ..errors import (
    FailoverInProgressError,
    HCompressError,
    ShardStateError,
    ShardUnavailableError,
    SimulatedCrashError,
)
from ..recovery import CrashPlan, Crashpoints
from ..replication import ReplicationConfig
from ..shard import ShardConfig, ShardedHCompress
from ..shard.manifest import read_manifest
from ..sim.clock import SimClock
from ..units import KiB
from ..workloads.vpic import vpic_sample
from .crash import CrashOutcome
from .overload import _default_seed
from .shard_chaos import _storm_specs

__all__ = [
    "FailoverChaosConfig",
    "FailoverChaosOutcome",
    "run_failover_chaos",
    "run_failover_crash",
]


@dataclass(frozen=True)
class FailoverChaosConfig:
    """Shape of one replicated kill-and-promote storm.

    Attributes:
        shards: Shard count of the deployment under test.
        tasks: Writes offered, one per arrival tick.
        tenants: Distinct tenants; task ``i`` belongs to tenant
            ``i % tenants`` so every tenant's traffic recurs across the
            whole storm.
        task_kib: Buffer size in KiB.
        interarrival: Modeled seconds between offered writes.
        kill_shard: Primary to kill, or ``None`` for the undisturbed
            baseline run the survivor traces are compared against.
        kill_owner_of: Alternative kill target: the shard owning this
            tenant's routing key. Mutually exclusive with ``kill_shard``.
        kill_after: Offered tasks before the kill fires (must leave
            traffic after it, or nothing would trigger the promotion).
        checkpoint_after: Acked writes before a deployment-wide
            checkpoint + ship (0: bootstrap shipping only).
        replicas: Standbys per shard.
        promotion_seconds: Modeled promotion window (the shard sheds
            retryably while it runs).
        fsync_every: Group-commit cadence of every primary journal.
            Kept > 1 deliberately: the kill then genuinely loses the
            primary's locally-buffered tail, so a zero-loss readback
            proves the *shipping* preserved it, not the local disk.
        crash_site: Arm one ``replication.*`` promotion crash site
            (``None``: no crash). The harness catches the simulated
            death and retries :meth:`failover` once, which must
            converge.
        crash_hit: Fire on the Nth visit of ``crash_site``.
        rng_seed: Workload payload generator seed.
        hash_seed: Ring hash seed (routing layout).
        fsync: Real per-frame fsync on journals and standbys (False:
            flush-only for CI).
    """

    shards: int = 4
    tasks: int = 64
    tenants: int = 8
    task_kib: int = 16
    interarrival: float = 0.05
    kill_shard: int | None = None
    kill_owner_of: str | None = None
    kill_after: int = 24
    checkpoint_after: int = 12
    replicas: int = 1
    promotion_seconds: float = 0.25
    fsync_every: int = 8
    crash_site: str | None = None
    crash_hit: int = 1
    rng_seed: int = 11
    hash_seed: int = 0
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1 or self.tasks < 1 or self.tenants < 1:
            raise HCompressError("shards, tasks, and tenants must be >= 1")
        if self.task_kib < 1 or self.interarrival <= 0:
            raise HCompressError(
                "task_kib must be >= 1 and interarrival positive"
            )
        if self.kill_shard is not None and not (
            0 <= self.kill_shard < self.shards
        ):
            raise HCompressError("kill_shard out of range")
        if self.kill_shard is not None and self.kill_owner_of is not None:
            raise HCompressError("pass kill_shard or kill_owner_of, not both")
        if not 0 <= self.kill_after < self.tasks:
            raise HCompressError(
                "kill_after must leave offered traffic after the kill"
            )
        if self.replicas < 1 or self.fsync_every < 1:
            raise HCompressError("replicas and fsync_every must be >= 1")
        if self.promotion_seconds < 0:
            raise HCompressError("promotion_seconds must be >= 0")
        if self.crash_site is not None and not self.crash_site.startswith(
            "replication."
        ):
            raise HCompressError(
                "failover harness arms replication.* sites only"
            )


@dataclass
class FailoverChaosOutcome:
    """What one storm did and whether the failover contract held."""

    config: FailoverChaosConfig
    offered: int = 0
    completed: int = 0
    #: Tasks shed retryably while their shard's promotion window ran.
    deferred: int = 0
    #: Tasks that saw ShardUnavailableError — the contract demands zero
    #: (failover must beat the routing gate on the very next dispatch).
    unavailable: int = 0
    killed_shard: int | None = None
    failovers: int = 0
    #: Journal records the promoted standby replayed at restore.
    promoted_replayed: int = 0
    #: Acked records the dead primary's own journal never made durable
    #: (its group-commit tail) — what restore-from-primary would have
    #: lost and shipping must not.
    lost_local_tail: int = 0
    crash_fired: str | None = None
    #: The retried failover() call converged after the simulated crash.
    crash_retried: bool = False
    #: A further failover() after convergence is refused (ShardStateError)
    #: and leaves the manifest version unchanged.
    failover_idempotent: bool = True
    #: On-disk manifest agrees with the router's fenced in-memory view.
    fence_consistent: bool = True
    #: Modeled seconds from the DOWN transition to the promoted UP.
    unavailability_seconds: float = 0.0
    #: Config-derived ceiling the window must stay under.
    unavailability_bound: float = 0.0
    verified_intact: int = 0
    mismatched: int = 0
    missing_acked: int = 0
    manifest_version: int = 0
    error: str | None = None
    #: Every per-task event, in arrival order:
    #: ``("task", task_id, tenant, shard_id, outcome)``.
    events: tuple = ()
    #: Modeled busy seconds per shard at storm end.
    busy_seconds: dict = field(default_factory=dict)

    def survivor_events(self, killed: int | None = None) -> tuple:
        """Events of every shard except ``killed`` (default: the one this
        run killed) — the cross-run determinism comparand."""
        if killed is None:
            killed = self.killed_shard
        return tuple(e for e in self.events if e[3] != killed)

    @property
    def holds(self) -> bool:
        """The failover contract, as one predicate (see module docstring)."""
        return (
            self.error is None
            and self.offered
            == self.completed + self.deferred + self.unavailable
            and self.unavailable == 0
            and self.mismatched == 0
            and self.missing_acked == 0
            and self.failover_idempotent
            and self.fence_consistent
            and (self.killed_shard is None or self.failovers >= 1)
            and (
                self.killed_shard is None
                or self.unavailability_seconds <= self.unavailability_bound
            )
            and (
                self.config.crash_site is None
                or (self.crash_fired is not None and self.crash_retried)
            )
        )

    def summary(self) -> str:
        verdict = "contract holds" if self.holds else "CONTRACT VIOLATED"
        kill = (
            f"shard {self.killed_shard} killed -> {self.failovers} "
            f"promotion(s), window {self.unavailability_seconds:.3f}s "
            f"(bound {self.unavailability_bound:.3f}s), "
            f"local tail lost {self.lost_local_tail}"
            if self.killed_shard is not None
            else "undisturbed"
        )
        crash = (
            f"; crashed at {self.crash_fired}, retry converged="
            f"{self.crash_retried}"
            if self.config.crash_site is not None
            else ""
        )
        return (
            f"{self.offered} offered over {self.config.shards} shards "
            f"x{self.config.replicas} replicas: {self.completed} completed, "
            f"{self.deferred} deferred, {self.unavailable} unavailable; "
            f"{kill}{crash}; {self.verified_intact} intact / "
            f"{self.mismatched} mismatched / {self.missing_acked} missing "
            f"acked; manifest v{self.manifest_version} — {verdict}"
        )


def run_failover_chaos(
    config: FailoverChaosConfig | None = None,
    root_dir: str | Path | None = None,
    seed: SeedData | None = None,
) -> FailoverChaosOutcome:
    """One replicated kill-and-promote storm; returns the contract report.

    Deterministic: the same ``(config, seed)`` reproduces the same
    routing, outcomes, and events, and ``survivor_events()`` compares
    equal between a kill run and the undisturbed run of the same seed.
    """
    config = config if config is not None else FailoverChaosConfig()
    if root_dir is None:
        with tempfile.TemporaryDirectory(prefix="hcompress-failover-") as tmp:
            return run_failover_chaos(config, tmp, seed)
    if seed is None:
        seed = _default_seed()
    clock = SimClock()
    crashpoints = (
        Crashpoints(CrashPlan(site=config.crash_site, hit=config.crash_hit))
        if config.crash_site is not None
        else None
    )
    sharded = ShardedHCompress(
        _storm_specs(config),
        HCompressConfig(
            recovery=RecoveryConfig(
                fsync=config.fsync, fsync_every=config.fsync_every
            ),
        ),
        ShardConfig(
            shards=config.shards,
            hash_seed=config.hash_seed,
            directory=root_dir,
            replication=ReplicationConfig(
                enabled=True,
                replicas=config.replicas,
                promotion_seconds=config.promotion_seconds,
            ),
        ),
        seed=seed,
        clock=lambda: clock.now,
        crashpoints=crashpoints,
    )
    outcome = FailoverChaosOutcome(config=config)
    kill_shard = config.kill_shard
    if config.kill_owner_of is not None:
        kill_shard = sharded.ring.route(config.kill_owner_of)
    # DOWN -> UP within the modeled promotion window plus the one arrival
    # it takes the next dispatch to notice, with float headroom.
    outcome.unavailability_bound = (
        config.promotion_seconds + 2 * config.interarrival + 1e-6
    )
    rng = np.random.default_rng(config.rng_seed)
    buffers: dict[str, bytes] = {}
    acked: list[tuple[str, int]] = []
    events: list[tuple] = []

    def offer(task_id: str, tenant: str, shard_id: int, payload) -> None:
        try:
            sharded.compress(payload, task_id=task_id, tenant=tenant)
        except FailoverInProgressError:
            outcome.deferred += 1
            events.append(("task", task_id, tenant, shard_id, "deferred"))
        except ShardUnavailableError:
            outcome.unavailable += 1
            events.append(("task", task_id, tenant, shard_id, "unavailable"))
        else:
            outcome.completed += 1
            acked.append((task_id, shard_id))
            events.append(("task", task_id, tenant, shard_id, "completed"))

    try:
        sharded.checkpoint()  # bootstrap: every standby holds a snapshot
        for index in range(config.tasks):
            if kill_shard is not None and index == config.kill_after:
                # Count the acked records the primary's group-commit buffer
                # still holds: its local journal dies without them.
                victim = sharded.engines[kill_shard]
                outcome.lost_local_tail = victim.journal.pending
                sharded.kill_shard(kill_shard)
                outcome.killed_shard = kill_shard
            clock.advance_to(max(clock.now, index * config.interarrival))
            task_id = f"failover/t{index}"
            tenant = f"tenant-{index % config.tenants}"
            shard_id = sharded.shard_of(task_id, tenant)
            payload = vpic_sample(config.task_kib * KiB, rng)
            buffers[task_id] = payload
            outcome.offered += 1
            try:
                offer(task_id, tenant, shard_id, payload)
            except SimulatedCrashError:
                # Process died mid-promotion at the armed site. A new
                # incarnation repairs by simply retrying the failover
                # (every stage is idempotent), then re-offers the task.
                outcome.crash_fired = crashpoints.fired
                sharded.failover(kill_shard)
                outcome.crash_retried = True
                offer(task_id, tenant, shard_id, payload)
            if (
                config.checkpoint_after
                and len(acked) == config.checkpoint_after
            ):
                sharded.checkpoint()
    except HCompressError as exc:  # untyped escape: a contract violation
        outcome.error = f"{type(exc).__name__}: {exc}"
    outcome.events = tuple(events)
    outcome.busy_seconds = dict(sharded.busy_seconds)

    # -- after the storm: run out the promotion window, then verify ---------
    if outcome.killed_shard is not None:
        record = sharded.supervisor.health[outcome.killed_shard]
        clock.advance_to(max(clock.now, record.promote_ready_at))
        engine = sharded.engines[outcome.killed_shard]
        if engine is not None:
            outcome.promoted_replayed = (
                engine.recovery_report.records_replayed
                if engine.recovery_report is not None
                else 0
            )
        outcome.failovers = sharded.replication.failovers[
            outcome.killed_shard
        ]
        # Idempotence: with nothing in flight a further failover() must be
        # refused as a typed state error and change no durable state.
        version_before = sharded.manifest.version
        try:
            sharded.failover(outcome.killed_shard)
            outcome.failover_idempotent = False
        except ShardStateError:
            outcome.failover_idempotent = (
                sharded.manifest.version == version_before
            )

    # Zero acked-write loss: every acknowledged write — whichever shard
    # acked it, killed or survivor — reads back byte-identical.
    for task_id, shard_id in acked:
        try:
            read = sharded.decompress(task_id)
        except HCompressError:
            outcome.missing_acked += 1
            continue
        if read.data == buffers[task_id]:
            outcome.verified_intact += 1
        else:
            outcome.mismatched += 1

    # Bounded unavailability: DOWN -> UP from the supervisor's own trace.
    if outcome.killed_shard is not None:
        down = [
            t
            for status, t, shard_id, _ in sharded.supervisor.trace
            if status == "DOWN" and shard_id == outcome.killed_shard
        ]
        up = [
            t
            for status, t, shard_id, _ in sharded.supervisor.trace
            if status == "UP" and shard_id == outcome.killed_shard
        ]
        if down and up:
            outcome.unavailability_seconds = up[-1] - down[0]
        else:  # never came back: fail the bound loudly
            outcome.unavailability_seconds = float("inf")

    # Fencing consistency: the durable manifest must match the fenced
    # in-memory view (same version, same shard homes).
    if sharded.manifest is not None:
        outcome.manifest_version = sharded.manifest.version
        disk = read_manifest(sharded.root, min_version=1)
        outcome.fence_consistent = (
            disk.version == sharded.manifest.version
            and disk.directories == sharded.manifest.directories
        )
    sharded.close()
    return outcome


def run_failover_crash(
    plan: CrashPlan,
    config: FailoverChaosConfig | None = None,
    seed: SeedData | None = None,
) -> CrashOutcome:
    """One armed promotion-site crash, reported as a ``CrashOutcome``.

    This is the adapter :func:`~repro.faults.crash.sweep_crash_sites`
    uses for the ``replication.*`` sites, mapping the failover contract
    onto the crash matrix's invariant fields:

    * ``recovered`` — the retried failover converged and the storm
      finished without an untyped escape;
    * ``replay_idempotent`` — a further ``failover()`` after convergence
      is refused without touching the manifest (the failover analogue of
      re-applying the journal);
    * ``double_restore_identical`` — the durable manifest matches the
      fenced in-memory layout at the end of the run;
    * ``missing_acked`` / ``mismatched`` — the zero-acked-loss readback
      over every shard, promoted one included.

    A plan whose hit count the single promotion never reaches simply
    runs the storm crash-free; the outcome then reports the same
    invariants with ``crashed=False``.
    """
    if config is None:
        # Small deployment: the sweep runs this once per (site, hit).
        config = FailoverChaosConfig(
            shards=2,
            tasks=24,
            tenants=4,
            kill_shard=0,
            kill_after=8,
            checkpoint_after=6,
            promotion_seconds=0.0,
            crash_site=plan.site,
            crash_hit=plan.hit,
        )
    outcome = run_failover_chaos(config, seed=seed)
    crash = CrashOutcome(plan=plan)
    crash.crashed = outcome.crash_fired is not None
    crash.fired_site = outcome.crash_fired
    crash.error = outcome.error
    crash.tasks_acked = outcome.completed
    crash.records_replayed = outcome.promoted_replayed
    crash.recovered = (
        outcome.error is None
        and outcome.failovers >= 1
        and (outcome.crash_fired is None or outcome.crash_retried)
    )
    crash.verified_intact = outcome.verified_intact
    crash.mismatched = outcome.mismatched
    crash.missing_acked = outcome.missing_acked
    crash.replay_idempotent = outcome.failover_idempotent
    crash.double_restore_identical = outcome.fence_consistent
    return crash
