"""Deterministic fault injection for chaos-testing the hierarchy.

`plan` declares *what* breaks and when (:class:`FaultPlan`); `injector`
executes the plan against a live :class:`~repro.tiers.StorageHierarchy`
on the simulated clock (:class:`FaultInjector`), interposing
:class:`FaultyDevice` wrappers for per-operation transient errors and
read-path corruption; `chaos` runs full workloads under injection and
reports recovery behaviour (:func:`run_chaos`).
"""

from .chaos import ChaosConfig, ChaosOutcome, default_chaos_plan, run_chaos
from .device import FaultyDevice
from .injector import FaultInjector, InjectorStats
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "ChaosConfig",
    "ChaosOutcome",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultyDevice",
    "InjectorStats",
    "default_chaos_plan",
    "run_chaos",
]
