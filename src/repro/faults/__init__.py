"""Deterministic fault injection for chaos-testing the hierarchy.

`plan` declares *what* breaks and when (:class:`FaultPlan`); `injector`
executes the plan against a live :class:`~repro.tiers.StorageHierarchy`
on the simulated clock (:class:`FaultInjector`), interposing
:class:`FaultyDevice` wrappers for per-operation transient errors and
read-path corruption; `chaos` runs full workloads under injection and
reports recovery behaviour (:func:`run_chaos`); `crash` kills the engine at
seeded crash sites and proves the journal/checkpoint recovery invariants
(:func:`run_crash_recovery`, :func:`sweep_crash_sites`); `overload` offers
writes faster than the admission queue drains while a tier flaps, and
proves the QoS overload contract (:func:`run_overload`); `shard_chaos`
kills one shard of a sharded deployment mid-storm and proves the
failure-domain isolation contract (:func:`run_shard_chaos`);
`failover_chaos` kills a *replicated* primary mid-storm and proves the
automatic-failover contract — zero acked-write loss, bounded modeled
unavailability, survivors byte-identical (:func:`run_failover_chaos`);
`latent` plants seeded *at-rest* bit-rot into already-stored blobs — the
failure mode the ``repro.scrub`` subsystem detects and self-heals
(:class:`LatentCorruptionInjector`).
"""

from .chaos import ChaosConfig, ChaosOutcome, default_chaos_plan, run_chaos
from .crash import (
    CrashConfig,
    CrashOutcome,
    run_crash_recovery,
    sweep_crash_sites,
)
from .device import FaultyDevice
from .failover_chaos import (
    FailoverChaosConfig,
    FailoverChaosOutcome,
    run_failover_chaos,
    run_failover_crash,
)
from .injector import FaultInjector, InjectorStats
from .latent import LatentCorruption, LatentCorruptionInjector
from .overload import OverloadConfig, OverloadOutcome, run_overload
from .plan import FaultEvent, FaultKind, FaultPlan
from .shard_chaos import ShardChaosConfig, ShardChaosOutcome, run_shard_chaos

__all__ = [
    "ChaosConfig",
    "ChaosOutcome",
    "CrashConfig",
    "CrashOutcome",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FailoverChaosConfig",
    "FailoverChaosOutcome",
    "FaultyDevice",
    "InjectorStats",
    "LatentCorruption",
    "LatentCorruptionInjector",
    "OverloadConfig",
    "OverloadOutcome",
    "ShardChaosConfig",
    "ShardChaosOutcome",
    "default_chaos_plan",
    "run_chaos",
    "run_crash_recovery",
    "run_failover_chaos",
    "run_failover_crash",
    "run_overload",
    "run_shard_chaos",
    "sweep_crash_sites",
]
