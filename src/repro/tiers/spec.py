"""Static tier specifications.

A :class:`TierSpec` captures everything the paper's optimizer consumes about
a storage tier: capacity, aggregate bandwidth, access latency, and hardware
lane count (the ``Concurrency(L)`` term of the problem formulation's
constraint 2). Specs are immutable; runtime state (remaining capacity,
queue depth) lives in :class:`repro.tiers.tier.Tier`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import fmt_bytes, fmt_rate

__all__ = ["TierSpec"]


@dataclass(frozen=True)
class TierSpec:
    """Performance and capacity description of one storage tier.

    Attributes:
        name: Human name, unique within a hierarchy (e.g. ``"ram"``).
        capacity: Usable bytes, or ``None`` for an effectively unbounded
            tier (the PFS in all the paper's configurations).
        bandwidth: Aggregate bytes/second across all lanes.
        latency: Per-operation access latency in seconds.
        lanes: Independent hardware channels; concurrent operations beyond
            this queue up.
        shared: True for cluster-shared tiers (burst buffers, PFS), False
            for node-local ones (RAM, NVMe).
    """

    name: str
    capacity: int | None
    bandwidth: float
    latency: float
    lanes: int = 1
    shared: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"{self.name}: capacity must be >= 0 or None")
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if self.lanes < 1:
            raise ValueError(f"{self.name}: lanes must be >= 1")

    @property
    def bounded(self) -> bool:
        """True when the tier has a finite capacity."""
        return self.capacity is not None

    @property
    def lane_bandwidth(self) -> float:
        """Bandwidth of a single lane (aggregate split evenly)."""
        return self.bandwidth / self.lanes

    def io_seconds(self, nbytes: int) -> float:
        """Uncontended time to move ``nbytes`` through one lane.

        This is the t(i, l) = latency + size/bandwidth term of the paper's
        cost model (eq. 3); queueing delay is added by the simulator.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency + nbytes / self.lane_bandwidth

    def describe(self) -> str:
        cap = "unbounded" if self.capacity is None else fmt_bytes(self.capacity)
        return (
            f"{self.name}: {cap}, {fmt_rate(self.bandwidth)} aggregate over "
            f"{self.lanes} lane(s), {self.latency * 1e6:.1f} us latency"
            f"{', shared' if self.shared else ''}"
        )
