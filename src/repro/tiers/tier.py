"""Runtime tier state: capacity ledger, load tracking, and blob placement.

A :class:`Tier` binds a static :class:`TierSpec` to a backing
:class:`Device` and keeps the mutable accounting the System Monitor samples:
remaining capacity, queue depth, and availability. Accounted sizes are
decoupled from actual payload lengths so large modeled datasets can be
represented by small sample buffers (DESIGN.md §2, representative-sample
scaling).

Availability semantics: a tier marked down (:meth:`Tier.set_available`)
rejects *every* data-path operation — :meth:`put`, :meth:`get` and
:meth:`extent` all raise :class:`TierUnavailableError` — because a real
outage takes reads down with writes. The capacity ledger (``used``,
``remaining``, :meth:`evict`, :meth:`keys`) stays accessible so monitors
and drain bookkeeping can still reason about what the tier holds while it
is dark. The resilient I/O paths (SHI failover, the tier flusher) catch
``TierUnavailableError`` and route around the outage.

Degraded-mode runtime overrides: fault injection can scale a tier's service
time (:meth:`set_slowdown`) and shrink its usable capacity below the spec
(:meth:`set_capacity_limit`) without touching the frozen
:class:`TierSpec`; both default to no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CapacityError, TierError, TierUnavailableError
from ..units import fmt_bytes
from .device import Device, MemoryDevice
from .spec import TierSpec

__all__ = ["Tier", "Extent"]


@dataclass(frozen=True, slots=True)
class Extent:
    """One placed blob: its accounted footprint and payload presence."""

    key: str
    accounted_size: int
    has_payload: bool


class Tier:
    """One level of the storage hierarchy, with live accounting.

    Args:
        spec: Static performance/capacity description.
        device: Backing blob store; defaults to a fresh
            :class:`MemoryDevice`.
    """

    def __init__(self, spec: TierSpec, device: Device | None = None) -> None:
        self.spec = spec
        self.device = device if device is not None else MemoryDevice()
        self._extents: dict[str, Extent] = {}
        self._used = 0
        self._queue_depth = 0
        self._queued_bytes = 0
        self._available = True
        self._slowdown = 1.0
        self._capacity_limit: int | None = None

    # -- capacity ledger ---------------------------------------------------

    @property
    def used(self) -> int:
        """Accounted bytes currently placed."""
        return self._used

    @property
    def effective_capacity(self) -> int | None:
        """Spec capacity, reduced by any injected shrink (``None`` =
        unbounded)."""
        if self._capacity_limit is None:
            return self.spec.capacity
        if self.spec.capacity is None:
            return self._capacity_limit
        return min(self.spec.capacity, self._capacity_limit)

    @property
    def remaining(self) -> int | None:
        """Accounted bytes still free (``None`` for unbounded tiers).

        Can go negative after a capacity shrink below the current fill;
        :meth:`fits` then rejects all placements until the tier drains.
        """
        capacity = self.effective_capacity
        if capacity is None:
            return None
        return capacity - self._used

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` of accounted data can be placed right now."""
        if not self._available:
            return False
        remaining = self.remaining
        return remaining is None or nbytes <= remaining

    # -- availability / load (System Monitor signals, §IV-E) ----------------

    @property
    def available(self) -> bool:
        return self._available

    def set_available(self, value: bool) -> None:
        """Mark the tier up/down (fault injection and SM tests)."""
        self._available = bool(value)

    @property
    def slowdown(self) -> float:
        """Service-time multiplier (1.0 = nominal; >1 = degraded)."""
        return self._slowdown

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the tier's effective bandwidth/latency."""
        if factor < 1.0:
            raise TierError(f"{self.spec.name}: slowdown must be >= 1, got {factor}")
        self._slowdown = float(factor)

    def set_capacity_limit(self, limit: int | None) -> None:
        """Shrink usable capacity to ``limit`` bytes (``None`` restores)."""
        if limit is not None and limit < 0:
            raise TierError(f"{self.spec.name}: capacity limit must be >= 0")
        self._capacity_limit = limit

    def io_seconds(self, nbytes: int) -> float:
        """Modeled uncontended I/O time, including any injected slowdown."""
        return self.spec.io_seconds(nbytes) * self._slowdown

    @property
    def queue_depth(self) -> int:
        """Number of in-flight operations (the SM's "load" signal)."""
        return self._queue_depth

    @property
    def queued_bytes(self) -> int:
        """Bytes of in-flight I/O — the backlog a newly arriving operation
        queues behind (drives the cost model's contention estimate)."""
        return self._queued_bytes

    def begin_io(self, nbytes: int = 0) -> None:
        self._queue_depth += 1
        self._queued_bytes += nbytes

    def end_io(self, nbytes: int = 0) -> None:
        """Retire one in-flight operation.

        Both load signals are validated symmetrically: an ``end_io``
        without a matching ``begin_io``, or one retiring more bytes than
        are in flight, is a caller bug and raises :class:`TierError`
        (silently clamping one signal but not the other desynchronised the
        monitor's load view).
        """
        if self._queue_depth <= 0:
            raise TierError(f"{self.spec.name}: end_io without matching begin_io")
        if nbytes > self._queued_bytes:
            raise TierError(
                f"{self.spec.name}: end_io({nbytes}) exceeds "
                f"{self._queued_bytes} queued bytes"
            )
        self._queue_depth -= 1
        self._queued_bytes -= nbytes

    # -- placement -----------------------------------------------------------

    def put(
        self, key: str, payload: bytes | None, accounted_size: int | None = None
    ) -> Extent:
        """Place a blob.

        Args:
            key: Unique blob key; re-putting an existing key is an error
                (callers must :meth:`evict` first — matching the paper's
                write-once buffer semantics).
            payload: Actual bytes, or ``None`` to account without storing.
            accounted_size: Footprint charged against capacity; defaults to
                ``len(payload)``.

        Raises:
            CapacityError: The accounted size does not fit.
            TierUnavailableError: Tier marked unavailable.
            TierError: Key already placed, or invalid arguments.
        """
        if key in self._extents:
            raise TierError(f"{self.spec.name}: key {key!r} already placed")
        if not self._available:
            raise TierUnavailableError(f"{self.spec.name}: tier is unavailable")
        if accounted_size is None:
            if payload is None:
                raise TierError("accounted_size is required when payload is None")
            accounted_size = len(payload)
        if accounted_size < 0:
            raise TierError(f"accounted_size must be >= 0, got {accounted_size}")
        if not self.fits(accounted_size):
            raise CapacityError(
                f"{self.spec.name}: {fmt_bytes(accounted_size)} does not fit "
                f"({fmt_bytes(max(self.remaining or 0, 0))} remaining)"
            )
        if payload is not None:
            self.device.store(key, payload)
        extent = Extent(key, accounted_size, payload is not None)
        self._extents[key] = extent
        self._used += accounted_size
        return extent

    def put_many(self, items: list[tuple[str, bytes | None, int | None]]) -> list[Extent]:
        """Place several blobs with one capacity-ledger debit.

        Validates every item up front — duplicate keys (against the tier
        *and* within the batch), availability, accounted sizes, and the
        batch's *total* footprint against remaining capacity — then stores
        payloads and records extents, charging ``used`` once. All-or-
        nothing: a validation failure places nothing. Outcomes match a
        sequence of :meth:`put` calls exactly (a batch whose total fits
        leaves the same ledger; one that doesn't would have failed
        sequentially at or before the piece the total check rejects).

        Args:
            items: ``(key, payload, accounted_size)`` triples with
                :meth:`put` semantics per item.
        """
        if not self._available:
            raise TierUnavailableError(f"{self.spec.name}: tier is unavailable")
        # Fast validation: when every item is clean (explicit non-negative
        # accounted sizes, no duplicate keys) the checks collapse to set and
        # sum builtins; anything unclean re-runs the exact per-item loop so
        # the first error raised matches a sequence of ``put`` calls.
        keys = [item[0] for item in items]
        seen = set(keys)
        raw_sizes = [item[2] for item in items]
        if (
            len(seen) == len(keys)
            and self._extents.keys().isdisjoint(seen)
            and None not in raw_sizes
            and (not raw_sizes or min(raw_sizes) >= 0)
        ):
            accounted_sizes = raw_sizes
            total = sum(raw_sizes)
        else:
            total = 0
            seen = set()
            accounted_sizes = []
            for key, payload, accounted_size in items:
                if key in self._extents or key in seen:
                    raise TierError(
                        f"{self.spec.name}: key {key!r} already placed"
                    )
                seen.add(key)
                if accounted_size is None:
                    if payload is None:
                        raise TierError(
                            "accounted_size is required when payload is None"
                        )
                    accounted_size = len(payload)
                if accounted_size < 0:
                    raise TierError(
                        f"accounted_size must be >= 0, got {accounted_size}"
                    )
                accounted_sizes.append(accounted_size)
                total += accounted_size
        if not self.fits(total):
            raise CapacityError(
                f"{self.spec.name}: batch of {fmt_bytes(total)} does not fit "
                f"({fmt_bytes(max(self.remaining or 0, 0))} remaining)"
            )
        if all(item[1] is None for item in items):
            # Accounting-only batch: no device stores, bulk-build extents.
            extents = [
                Extent(key, accounted_size, False)
                for key, accounted_size in zip(keys, accounted_sizes)
            ]
            self._extents.update(zip(keys, extents))
        else:
            extents = []
            for (key, payload, _), accounted_size in zip(items, accounted_sizes):
                if payload is not None:
                    self.device.store(key, payload)
                extent = Extent(key, accounted_size, payload is not None)
                self._extents[key] = extent
                extents.append(extent)
        self._used += total
        return extents

    def get(self, key: str) -> bytes:
        """Read a placed blob's payload.

        Raises:
            TierUnavailableError: Tier marked unavailable (a down tier
                cannot serve reads any more than writes).
            TierError: No extent for ``key``.
        """
        if not self._available:
            raise TierUnavailableError(f"{self.spec.name}: tier is unavailable")
        if key not in self._extents:
            raise TierError(f"{self.spec.name}: no extent for key {key!r}")
        return self.device.load(key)

    def extent(self, key: str) -> Extent:
        """Accounting record for a placed blob (unavailable tiers raise)."""
        if not self._available:
            raise TierUnavailableError(f"{self.spec.name}: tier is unavailable")
        try:
            return self._extents[key]
        except KeyError:
            raise TierError(f"{self.spec.name}: no extent for key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._extents

    def evict(self, key: str) -> int:
        """Remove a blob; returns the accounted bytes released.

        Allowed even while the tier is down: eviction is ledger cleanup,
        not a data-path read, and recovery flows need it.
        """
        try:
            extent = self._extents[key]
        except KeyError:
            raise TierError(f"{self.spec.name}: no extent for key {key!r}") from None
        if extent.has_payload:
            self.device.delete(key)
        del self._extents[key]
        self._used -= extent.accounted_size
        return extent.accounted_size

    def keys(self) -> list[str]:
        return list(self._extents)

    def clear(self) -> None:
        """Evict everything."""
        for key in self.keys():
            self.evict(key)

    def __repr__(self) -> str:
        cap = "inf" if self.spec.capacity is None else fmt_bytes(self.spec.capacity)
        flags = "" if self._available else " DOWN"
        return (
            f"<Tier {self.spec.name} used={fmt_bytes(self._used)}/{cap} "
            f"queue={self._queue_depth}{flags}>"
        )
