"""Backing devices: where a tier's bytes physically live.

The paper's Storage Hardware Interface writes real bytes to real devices;
here a device is a keyed blob store with three interchangeable backends:

* :class:`MemoryDevice` — dict-backed; default for tests and simulations.
* :class:`FileDevice` — one file per blob under a directory; lets examples
  demonstrate durable placement.
* :class:`NullDevice` — size-accounting only; for large-scale simulations
  where only the capacity ledger matters (payloads are discarded).
"""

from __future__ import annotations

import abc
import os
from pathlib import Path

from ..errors import TierError

__all__ = ["Device", "MemoryDevice", "FileDevice", "NullDevice"]


class Device(abc.ABC):
    """Keyed blob store used as a tier's backing medium."""

    @abc.abstractmethod
    def store(self, key: str, payload: bytes) -> None:
        """Write ``payload`` under ``key`` (overwrites silently)."""

    @abc.abstractmethod
    def load(self, key: str) -> bytes:
        """Read the blob at ``key``; raises :class:`TierError` if absent."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key``; raises :class:`TierError` if absent."""

    @abc.abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abc.abstractmethod
    def keys(self) -> list[str]: ...

    def clear(self) -> None:
        """Remove every blob."""
        for key in self.keys():
            self.delete(key)


class MemoryDevice(Device):
    """In-memory blob store (the default backend)."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def store(self, key: str, payload: bytes) -> None:
        self._blobs[key] = bytes(payload)

    def load(self, key: str) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise TierError(f"no blob stored under key {key!r}") from None

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise TierError(f"no blob stored under key {key!r}")
        del self._blobs[key]

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def keys(self) -> list[str]:
        return list(self._blobs)

    @property
    def stored_bytes(self) -> int:
        """Total payload bytes currently held (for tests/inspection)."""
        return sum(len(b) for b in self._blobs.values())


class FileDevice(Device):
    """One file per blob under ``root`` (keys are sanitised to filenames)."""

    def __init__(self, root: str | os.PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _filename(key: str) -> str:
        # Keys may contain '/' (task ids); flatten deterministically.
        return key.replace("/", "__") + ".blob"

    def _path(self, key: str) -> Path:
        return self._root / self._filename(key)

    def store(self, key: str, payload: bytes) -> None:
        self._path(key).write_bytes(payload)

    def load(self, key: str) -> bytes:
        path = self._path(key)
        if not path.exists():
            raise TierError(f"no blob stored under key {key!r}")
        return path.read_bytes()

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not path.exists():
            raise TierError(f"no blob stored under key {key!r}")
        path.unlink()

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> list[str]:
        return [
            p.name[: -len(".blob")].replace("__", "/")
            for p in self._root.glob("*.blob")
        ]


class NullDevice(Device):
    """Discards payloads; remembers only which keys exist.

    Use for capacity-ledger-only simulations (e.g. the 320 GB Fig. 5 run)
    where materialising every payload would be pointless.
    """

    def __init__(self) -> None:
        self._keys: set[str] = set()

    def store(self, key: str, payload: bytes) -> None:
        self._keys.add(key)

    def load(self, key: str) -> bytes:
        if key not in self._keys:
            raise TierError(f"no blob stored under key {key!r}")
        raise TierError(f"NullDevice cannot materialise blob {key!r}")

    def delete(self, key: str) -> None:
        if key not in self._keys:
            raise TierError(f"no blob stored under key {key!r}")
        self._keys.discard(key)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def keys(self) -> list[str]:
        return list(self._keys)
